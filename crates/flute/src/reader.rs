//! fec-audit: deny(panic)
//! A bounds-checked big-endian cursor over a wire buffer.
//!
//! Every datagram parser in this crate (LCT header, FEC OTI, reception
//! reports, ALC framing) reads through [`Reader`] instead of indexing the
//! byte slice directly: a short buffer yields [`FluteError::Truncated`]
//! with the exact byte counts, never a panic. This is what lets those
//! modules carry the `fec-audit: deny(panic)` tag — the only bounds logic
//! they need is `take`, and `take` is total.

use crate::FluteError;

/// A forward-only cursor over `data` that fails with
/// [`FluteError::Truncated`] instead of panicking on over-read.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Label used in `Truncated { what }` diagnostics.
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `data`; `what` names the structure being
    /// parsed in error messages.
    pub(crate) fn new(data: &'a [u8], what: &'static str) -> Reader<'a> {
        Reader { data, pos: 0, what }
    }

    /// Bytes consumed so far.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes, or fails with the total length the buffer
    /// would have needed.
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], FluteError> {
        let end = self.pos.checked_add(n).ok_or(FluteError::Truncated {
            what: self.what,
            needed: usize::MAX,
            got: self.data.len(),
        })?;
        match self.data.get(self.pos..end) {
            Some(bytes) => {
                self.pos = end;
                Ok(bytes)
            }
            None => Err(FluteError::Truncated {
                what: self.what,
                needed: end,
                got: self.data.len(),
            }),
        }
    }

    /// Takes exactly `N` bytes as an array.
    pub(crate) fn array<const N: usize>(&mut self) -> Result<[u8; N], FluteError> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        // Lengths match by construction: `take(N)` returned exactly N bytes.
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// Next byte.
    pub(crate) fn u8(&mut self) -> Result<u8, FluteError> {
        Ok(self.array::<1>()?[0])
    }

    /// Next big-endian u16.
    pub(crate) fn u16_be(&mut self) -> Result<u16, FluteError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    /// Next big-endian u32.
    pub(crate) fn u32_be(&mut self) -> Result<u32, FluteError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Next big-endian u64.
    pub(crate) fn u64_be(&mut self) -> Result<u64, FluteError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    /// Next big-endian 48-bit integer, widened to u64.
    pub(crate) fn u48_be(&mut self) -> Result<u64, FluteError> {
        let [a, b, c, d, e, f] = self.array::<6>()?;
        Ok(u64::from_be_bytes([0, 0, a, b, c, d, e, f]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_order() {
        let buf = [1, 0, 2, 0, 0, 0, 3, 0xAA, 0xBB];
        let mut r = Reader::new(&buf, "test");
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16_be().unwrap(), 2);
        assert_eq!(r.u32_be().unwrap(), 3);
        assert_eq!(r.take(2).unwrap(), &[0xAA, 0xBB]);
        assert_eq!(r.pos(), 9);
    }

    #[test]
    fn over_read_is_truncated_not_panic() {
        let mut r = Reader::new(&[1, 2], "thing");
        assert_eq!(r.u8().unwrap(), 1);
        match r.u32_be() {
            Err(FluteError::Truncated { what, needed, got }) => {
                assert_eq!(what, "thing");
                assert_eq!(needed, 5);
                assert_eq!(got, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // The failed read did not consume anything.
        assert_eq!(r.u8().unwrap(), 2);
    }

    #[test]
    fn u48_widens() {
        let mut r = Reader::new(&[0, 0, 0, 0x1E, 0xB9, 0x00], "tl");
        assert_eq!(r.u48_be().unwrap(), 0x1EB900);
    }
}
