//! FLUTE file-delivery sessions: [`FluteSender`] and [`FluteReceiver`].
//!
//! A session (one TSI) carries any number of objects (TOIs), each
//! FEC-encoded under its own code and schedule, plus the FDT on TOI 0.
//! The sender is a pure datagram factory — the caller owns pacing and the
//! actual socket (the paper's systems have no feedback, so there is
//! nothing else to own). The receiver is a state machine fed raw
//! datagrams in any order, with any losses and duplications; it starts
//! decoding an object as soon as it learns the OTI — from EXT_FTI on the
//! data packets themselves or from an FDT instance, whichever arrives
//! first — and buffers early data packets until then.

use std::collections::HashMap;

use bytes::Bytes;

use fec_core::{
    CodeSpec, CodecHandle, ExpansionRatio, Packet, Receiver as CoreReceiver, Sender as CoreSender,
};
use fec_sched::TxModel;

use fec_telemetry::Registry;

use crate::alc::AlcPacket;
use crate::fdt::{FdtInstance, FileEntry};
use crate::feedback::{ReceptionReport, ReportConfig, ReportEmitter};
use crate::fti::ObjectTransmissionInfo;
use crate::metrics::{ReceiverMetrics, StreamMetrics};
use crate::payload_id::FecPayloadId;
use crate::{FluteError, FDT_TOI};

/// How many data packets a receiver will buffer for an object whose OTI is
/// still unknown before declaring the session broken.
const MAX_PRE_OTI_BUFFER: usize = 4096;

/// Sender-side session configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Transport session identifier.
    pub tsi: u32,
    /// FDT instance identifier announced with the session's FDT.
    pub fdt_instance_id: u32,
    /// FDT `Expires` value (opaque seconds).
    pub expires: u64,
    /// Attach EXT_FTI to every data packet (28 bytes of overhead per
    /// packet, but receivers can decode without ever seeing the FDT —
    /// the robust choice on lossy channels, and the default).
    pub fti_in_data_packets: bool,
    /// Re-send the FDT every `fdt_interval` data packets (0 = only once at
    /// the start). FDT packets are not FEC-protected, so on lossy channels
    /// they must be repeated.
    pub fdt_interval: usize,
    /// Stamp every emitted datagram (FDT included) with an EXT_SEQ
    /// session transmission sequence number (4 bytes of overhead per
    /// packet). Receivers use the sequence gaps to observe the loss
    /// *process* and report it back (see [`crate::feedback`]); without it
    /// a reception report can still count per-TOI arrivals but carries no
    /// loss-run sketch. On by default.
    pub sequence_datagrams: bool,
}

impl SenderConfig {
    /// A sensible default configuration for one session.
    pub fn new(tsi: u32) -> SenderConfig {
        SenderConfig {
            tsi,
            fdt_instance_id: 0,
            expires: 0,
            fti_in_data_packets: true,
            fdt_interval: 500,
            sequence_datagrams: true,
        }
    }
}

struct SessionObject {
    toi: u32,
    content_location: String,
    codepoint: u8,
    oti: ObjectTransmissionInfo,
    sender: CoreSender,
    tx: TxModel,
}

/// The sending half of a FLUTE session: owns the encoded objects and emits
/// wire datagrams in the configured transmission schedule.
pub struct FluteSender {
    config: SenderConfig,
    objects: Vec<SessionObject>,
}

impl FluteSender {
    /// Creates an empty session.
    pub fn new(config: SenderConfig) -> FluteSender {
        FluteSender {
            config,
            objects: Vec::new(),
        }
    }

    /// Adds one object to the session, FEC-encoding it immediately.
    ///
    /// `toi` must be unique and non-zero; `tx` is the paper-style
    /// transmission model used for this object's packets.
    #[allow(clippy::too_many_arguments)] // a deliberate flat config surface
    pub fn add_object(
        &mut self,
        toi: u32,
        content_location: impl Into<String>,
        object: &[u8],
        code: impl Into<CodecHandle>,
        ratio: ExpansionRatio,
        symbol_size: usize,
        matrix_seed: u64,
        tx: TxModel,
    ) -> Result<(), FluteError> {
        if toi == FDT_TOI {
            return Err(FluteError::Session {
                reason: "TOI 0 is reserved for the FDT".into(),
            });
        }
        if self.objects.iter().any(|o| o.toi == toi) {
            return Err(FluteError::Session {
                reason: format!("duplicate TOI {toi}"),
            });
        }
        let spec = CodeSpec::for_object(code, ratio, object.len(), symbol_size)?
            .with_matrix_seed(matrix_seed);
        let oti = ObjectTransmissionInfo::from_spec(&spec, symbol_size, object.len() as u64)?;
        let codepoint = oti.fti_id();
        let sender = CoreSender::new(spec, object, symbol_size)?;
        self.objects.push(SessionObject {
            toi,
            content_location: content_location.into(),
            codepoint,
            oti,
            sender,
            tx,
        });
        Ok(())
    }

    /// The transport session identifier this sender stamps on every
    /// datagram.
    pub fn tsi(&self) -> u32 {
        self.config.tsi
    }

    /// The session's current FDT instance.
    pub fn fdt(&self) -> FdtInstance {
        let mut fdt = FdtInstance::new(self.config.fdt_instance_id, self.config.expires);
        for o in &self.objects {
            fdt = fdt.with_file(FileEntry::new(
                o.toi,
                o.content_location.clone(),
                o.oti.clone(),
            ));
        }
        fdt
    }

    /// One FDT announcement datagram.
    pub fn fdt_datagram(&self) -> Result<Vec<u8>, FluteError> {
        AlcPacket::fdt(
            self.config.tsi,
            self.config.fdt_instance_id,
            Bytes::from(self.fdt().to_xml().into_bytes()),
        )
        .to_bytes()
    }

    /// Emits the complete session as wire datagrams: FDT first, then every
    /// object's packets in its schedule (objects back to back), with FDT
    /// repeats every `fdt_interval` data packets, the `B` flag on each
    /// object's last packet and the `A` flag on the session's last packet.
    ///
    /// This is [`stream`](Self::stream) collected to completion with no
    /// plan amendments.
    pub fn datagrams(&self, schedule_seed: u64) -> Result<Vec<Vec<u8>>, FluteError> {
        let mut stream = self.stream(schedule_seed);
        let mut out = Vec::new();
        while let Some(dg) = stream.next_datagram()? {
            out.push(dg);
        }
        Ok(out)
    }

    /// Starts an incremental, plan-amendable emission of the session —
    /// the live counterpart of [`datagrams`](Self::datagrams). Pull one
    /// wire datagram at a time with
    /// [`next_datagram`](SessionStream::next_datagram) and move any
    /// in-flight object's stopping point with
    /// [`amend_plan`](SessionStream::amend_plan) whenever the feedback
    /// loop produces a fresh [`TransmissionPlan`](fec_core::TransmissionPlan).
    pub fn stream(&self, schedule_seed: u64) -> SessionStream<'_> {
        let emissions = self
            .objects
            .iter()
            .map(|o| {
                o.sender
                    .emission(o.tx, schedule_seed ^ (o.toi as u64) << 32)
            })
            .collect();
        SessionStream {
            sender: self,
            emissions,
            current: 0,
            path_seqs: vec![0],
            since_fdt: 0,
            fdt_sent: false,
            data_emitted: 0,
            metrics: None,
        }
    }

    /// Total data packets the session will emit (excluding FDT repeats).
    pub fn data_packet_count(&self) -> u64 {
        self.objects.iter().map(|o| o.sender.packet_count()).sum()
    }
}

/// The incremental sending half of a live session: a cursor over every
/// object's schedule, FDT repeats included, whose per-object stopping
/// points can be amended mid-flight (see
/// [`FluteSender::stream`]).
///
/// The `B`/`A` close flags are stamped on whatever packet is the last one
/// *under the plan in force when it is emitted*; a later extension simply
/// keeps sending (receivers treat the flags as advisory status, not as a
/// hard stop).
pub struct SessionStream<'a> {
    sender: &'a FluteSender,
    emissions: Vec<fec_core::PlannedEmission>,
    current: usize,
    /// One EXT_SEQ counter per bonded path (`path_seqs[p]` is the next
    /// sequence number stamped on path `p`), lazily grown. Each path is
    /// its own monotone sequence space — the receiver's per-path gap
    /// accounting ([`ReportEmitter::observe_on`]) depends on it. The
    /// single-path API ([`next_datagram`](Self::next_datagram)) stamps
    /// path 0.
    path_seqs: Vec<u32>,
    since_fdt: usize,
    fdt_sent: bool,
    data_emitted: u64,
    metrics: Option<StreamMetrics>,
}

impl SessionStream<'_> {
    /// Starts recording this stream's activity into `registry`
    /// (datagram/byte counters, per-TOI progress, amendment counts, and
    /// the planned-vs-full schedule gauges). A disabled registry costs
    /// one branch per datagram.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let tois: Vec<u32> = self.sender.objects.iter().map(|o| o.toi).collect();
        let metrics = StreamMetrics::register(registry, &tois);
        metrics.planned.set(self.planned_total() as f64);
        metrics.full.set(self.full_total() as f64);
        self.metrics = Some(metrics);
    }
    /// The next wire datagram, or `None` once every object's emission
    /// reached its target. Single-path shorthand for
    /// [`next_datagram_routed`](Self::next_datagram_routed) with every
    /// packet on path 0.
    pub fn next_datagram(&mut self) -> Result<Option<Vec<u8>>, FluteError> {
        Ok(self.next_datagram_routed(|_| 0)?.map(|(_, d)| d))
    }

    /// The next wire datagram for a **bonded** sender, with the carrying
    /// path chosen by `route` and returned alongside the datagram.
    ///
    /// `route` is called once per emitted datagram with `true` when the
    /// packet carries a source symbol (or session control: the FDT rides
    /// the source path) and `false` for repair symbols — the hook a
    /// Kurant-style path scheduler uses to put source packets on
    /// fast-propagation paths and repair on slower ones. The datagram is
    /// sequenced in the chosen path's own EXT_SEQ space and the packet
    /// is credited to that path's emission cursor.
    pub fn next_datagram_routed<F>(
        &mut self,
        mut route: F,
    ) -> Result<Option<(usize, Vec<u8>)>, FluteError>
    where
        F: FnMut(bool) -> usize,
    {
        if !self.fdt_sent {
            self.fdt_sent = true;
            let path = route(true);
            return self.fdt_datagram_on(path).map(|d| Some((path, d)));
        }
        loop {
            if self.current >= self.emissions.len() {
                return Ok(None);
            }
            if self.emissions[self.current].is_done() {
                self.current += 1;
                continue;
            }
            // A data packet is definitely coming: emit any due FDT repeat
            // first (this ordering also guarantees the session never
            // trails off with a lone FDT after the A-flagged packet).
            if self.sender.config.fdt_interval > 0
                && self.since_fdt >= self.sender.config.fdt_interval
            {
                self.since_fdt = 0;
                let path = route(true);
                return self.fdt_datagram_on(path).map(|d| Some((path, d)));
            }
            let object = &self.sender.objects[self.current];
            // Classify before consuming so the scheduler sees what it is
            // routing; the subsequent `next_ref_on` returns the peeked
            // packet and credits the chosen path's cursor.
            let peeked = self.emissions[self.current].peek_ref().expect("not done");
            let path = route(object.sender.layout().is_source(peeked));
            let emission = &mut self.emissions[self.current];
            // Peek just succeeded, so the consume cannot come back empty;
            // the fallback keeps this branch panic-free all the same.
            let r = emission.next_ref_on(path).unwrap_or(peeked);
            debug_assert_eq!(r, peeked, "peek/consume must agree");
            let packet = object.sender.packet(r)?;
            let mut alc = AlcPacket::data(
                self.sender.config.tsi,
                object.toi,
                object.codepoint,
                FecPayloadId::new(packet.block, packet.esi),
                packet.payload,
            );
            if self.sender.config.fti_in_data_packets {
                alc = alc.with_fti(object.oti.to_bytes());
            }
            if emission.is_done() {
                alc = alc.closing_object();
                if self.current + 1 == self.emissions.len() {
                    alc = alc.closing_session();
                }
            }
            self.data_emitted += 1;
            self.since_fdt += 1;
            let idx = self.current;
            let datagram = self.seal_on(path, alc)?;
            if let Some(m) = &self.metrics {
                m.data.inc();
                m.bytes.add(datagram.len() as u64);
                m.per_object[idx].inc();
            }
            return Ok(Some((path, datagram)));
        }
    }

    /// One FDT announcement datagram, sequenced like any other (callers
    /// needing extra FDT robustness can interleave these at will).
    pub fn fdt_datagram(&mut self) -> Result<Vec<u8>, FluteError> {
        self.fdt_datagram_on(0)
    }

    fn fdt_datagram_on(&mut self, path: usize) -> Result<Vec<u8>, FluteError> {
        let alc = AlcPacket::fdt(
            self.sender.config.tsi,
            self.sender.config.fdt_instance_id,
            Bytes::from(self.sender.fdt().to_xml().into_bytes()),
        );
        let datagram = self.seal_on(path, alc)?;
        if let Some(m) = &self.metrics {
            m.fdt.inc();
            m.bytes.add(datagram.len() as u64);
        }
        Ok(datagram)
    }

    /// Stamps `alc` with the next EXT_SEQ of `path`'s sequence space.
    /// Each bonded path is its own monotone space — stamping from a
    /// shared counter would make every inter-path interleaving look like
    /// loss or reordering to the receiver's per-path tracks.
    fn seal_on(&mut self, path: usize, mut alc: AlcPacket) -> Result<Vec<u8>, FluteError> {
        if self.sender.config.sequence_datagrams {
            if self.path_seqs.len() <= path {
                self.path_seqs.resize(path + 1, 0);
            }
            let seq = self.path_seqs[path];
            alc = alc.with_sequence(seq);
            self.path_seqs[path] = (seq + 1) % crate::feedback::SEQ_MODULUS;
        }
        alc.to_bytes()
    }

    /// Datagrams sequenced on path `path` so far (the next EXT_SEQ it
    /// will stamp, before wraparound).
    pub fn path_sequenced(&self, path: usize) -> u32 {
        self.path_seqs.get(path).copied().unwrap_or(0)
    }

    /// Moves `toi`'s stopping point to `plan` (`None` = the full
    /// schedule). Unknown TOIs are an error. An amendment that *extends*
    /// an object the cursor already passed rewinds the stream to it (the
    /// failure-backoff "the plan was too thin, keep sending" path), so an
    /// exhausted stream becomes productive again.
    pub fn amend_plan(
        &mut self,
        toi: u32,
        plan: Option<&fec_core::TransmissionPlan>,
    ) -> Result<fec_core::Amendment, FluteError> {
        let idx = self.object_index(toi)?;
        let amendment = self.emissions[idx].amend(plan);
        if matches!(amendment, fec_core::Amendment::Extended { .. }) && idx < self.current {
            self.current = idx;
        }
        if let Some(m) = &self.metrics {
            match amendment {
                fec_core::Amendment::Truncated { .. } => m.amend_truncated.inc(),
                fec_core::Amendment::Extended { .. } => m.amend_extended.inc(),
                fec_core::Amendment::Unchanged => {}
            }
            m.planned.set(self.planned_total() as f64);
        }
        Ok(amendment)
    }

    /// Queues targeted repair packets for the symbols receivers NACKed
    /// (see
    /// [`FeedbackAggregator::take_nack_requests`](crate::feedback::FeedbackAggregator::take_nack_requests)).
    /// Queued symbols jump ahead of the schedule and are deduped while
    /// waiting; entries for unknown TOIs or out-of-layout symbols are
    /// skipped (stale NACKs are normal on a lossy return channel), and a
    /// queue into an object the cursor already passed rewinds the stream
    /// to it. Returns how many packets were actually enqueued.
    pub fn queue_repair(&mut self, requests: &[crate::feedback::NackEntry]) -> u64 {
        let mut queued = 0;
        for req in requests {
            let Ok(idx) = self.object_index(req.toi) else {
                continue;
            };
            let layout = self.sender.objects[idx].sender.layout();
            let refs: Vec<fec_sched::PacketRef> = req
                .esis
                .iter()
                .map(|&esi| fec_sched::PacketRef {
                    block: req.block,
                    esi,
                })
                .filter(|r| layout.contains(*r))
                .collect();
            let added = self.emissions[idx].queue_repair(refs);
            if added > 0 && idx < self.current {
                self.current = idx;
            }
            queued += added;
        }
        queued
    }

    /// Targeted repair packets emitted so far, across all objects.
    pub fn repairs_sent(&self) -> u64 {
        self.emissions.iter().map(|e| e.repairs_sent()).sum()
    }

    /// Stops `toi`'s emission where it stands (e.g. a digest reported the
    /// object complete — nothing more is needed). Idempotent.
    pub fn stop_object(&mut self, toi: u32) -> Result<fec_core::Amendment, FluteError> {
        let idx = self.object_index(toi)?;
        let amendment = self.emissions[idx].stop();
        if let Some(m) = &self.metrics {
            if matches!(amendment, fec_core::Amendment::Truncated { .. }) {
                m.stops.inc();
            }
            m.planned.set(self.planned_total() as f64);
        }
        Ok(amendment)
    }

    fn object_index(&self, toi: u32) -> Result<usize, FluteError> {
        self.sender
            .objects
            .iter()
            .position(|o| o.toi == toi)
            .ok_or_else(|| FluteError::Session {
                reason: format!("cannot amend unknown TOI {toi}"),
            })
    }

    /// The TOI currently being emitted, if the stream is not done.
    pub fn current_toi(&self) -> Option<u32> {
        // `current` only advances when a later datagram is pulled, so skip
        // finished emissions to answer "what is in flight *now*".
        (self.current..self.emissions.len())
            .find(|&i| !self.emissions[i].is_done())
            .map(|i| self.sender.objects[i].toi)
    }

    /// Source packet count (`k`) of one object — the planner's input.
    pub fn source_count(&self, toi: u32) -> Option<u64> {
        self.sender
            .objects
            .iter()
            .find(|o| o.toi == toi)
            .map(|o| o.sender.source_count())
    }

    /// Data packets emitted so far (FDT datagrams excluded).
    pub fn data_emitted(&self) -> u64 {
        self.data_emitted
    }

    /// Sum of the current per-object targets.
    pub fn planned_total(&self) -> u64 {
        self.emissions.iter().map(|e| e.target()).sum()
    }

    /// Sum of the full per-object schedules (what a plan-free session
    /// would send).
    pub fn full_total(&self) -> u64 {
        self.emissions.iter().map(|e| e.schedule_len()).sum()
    }

    /// True once every emission reached its current target.
    pub fn is_done(&self) -> bool {
        self.emissions.iter().all(|e| e.is_done())
    }
}

/// Decoding status of one object at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectStatus {
    /// Packets seen, but no OTI yet (neither EXT_FTI nor FDT entry).
    AwaitingOti,
    /// Decoding in progress.
    Decoding,
    /// Fully decoded; the object bytes are available.
    Complete,
    /// The sender closed the object (`B` flag) before we could decode it.
    ClosedIncomplete,
}

struct ObjectState {
    oti: Option<ObjectTransmissionInfo>,
    receiver: Option<CoreReceiver>,
    /// Data packets held until the OTI is known.
    pre_oti: Vec<(FecPayloadId, Bytes)>,
    decoded: Option<Vec<u8>>,
    packets_received: u64,
    closed: bool,
    /// Distinct ESIs seen per block — only populated in NACK mode (see
    /// [`FluteReceiver::enable_nacks`]), where the per-block gaps become
    /// the digest's missing-symbol section.
    seen_esis: std::collections::BTreeMap<u32, std::collections::BTreeSet<u32>>,
}

impl ObjectState {
    fn new() -> ObjectState {
        ObjectState {
            oti: None,
            receiver: None,
            pre_oti: Vec::new(),
            decoded: None,
            packets_received: 0,
            closed: false,
            seen_esis: std::collections::BTreeMap::new(),
        }
    }

    fn status(&self) -> ObjectStatus {
        if self.decoded.is_some() {
            ObjectStatus::Complete
        } else if self.closed {
            ObjectStatus::ClosedIncomplete
        } else if self.oti.is_none() {
            ObjectStatus::AwaitingOti
        } else {
            ObjectStatus::Decoding
        }
    }

    /// Learns the OTI (idempotent; conflicting OTIs are an error).
    fn set_oti(&mut self, oti: ObjectTransmissionInfo) -> Result<(), FluteError> {
        match &self.oti {
            Some(existing) if *existing != oti => Err(FluteError::Session {
                reason: "conflicting OTI for the same TOI".into(),
            }),
            Some(_) => Ok(()),
            None => {
                let spec = oti.code_spec()?;
                let receiver = CoreReceiver::new(
                    spec,
                    oti.transfer_length as usize,
                    oti.symbol_size as usize,
                )?;
                self.oti = Some(oti);
                self.receiver = Some(receiver);
                // Drain everything buffered before the OTI arrived, as one
                // batch — the late-FDT catch-up is the single largest
                // symbol burst a receiver ever sees.
                let buffered = std::mem::take(&mut self.pre_oti);
                self.feed_batch(buffered)
            }
        }
    }

    /// Feeds a burst of data packets for this object through the decoder's
    /// batched entry point ([`CoreReceiver::push_batch`]), which defers
    /// block solves to the end of the batch instead of attempting one per
    /// symbol.
    fn feed_batch(&mut self, packets: Vec<(FecPayloadId, Bytes)>) -> Result<(), FluteError> {
        if self.decoded.is_some() || packets.is_empty() {
            return Ok(()); // late duplicates after completion are normal
        }
        let Some(receiver) = self.receiver.as_mut() else {
            if self.pre_oti.len() + packets.len() > MAX_PRE_OTI_BUFFER {
                return Err(FluteError::Session {
                    reason: format!("{MAX_PRE_OTI_BUFFER} packets buffered with no OTI in sight"),
                });
            }
            self.pre_oti.extend(packets);
            return Ok(());
        };
        let batch: Vec<Packet> = packets
            .into_iter()
            .map(|(id, payload)| Packet::new(id.sbn, id.esi, payload))
            .collect();
        let progress = receiver.push_batch(&batch)?;
        if progress.is_decoded() {
            let receiver = self.receiver.take().expect("just used it");
            self.decoded = Some(receiver.into_object()?);
        }
        Ok(())
    }
}

/// What a pushed datagram did to the session state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverEvent {
    /// A new FDT instance was accepted.
    FdtReceived,
    /// A stale or duplicate FDT was ignored.
    FdtIgnored,
    /// A data packet advanced (or duplicated into) the given TOI.
    ObjectProgress {
        /// The object the packet belonged to.
        toi: u32,
    },
    /// The given TOI just finished decoding.
    ObjectComplete {
        /// The object that completed.
        toi: u32,
    },
    /// A packet for another session (TSI mismatch) was ignored.
    ForeignSession,
    /// A malformed datagram was skipped (batched path only — the rest of
    /// the burst is unaffected; [`FluteReceiver::push_datagram`] surfaces
    /// the parse error instead).
    Rejected,
}

/// The receiving half of a FLUTE session.
pub struct FluteReceiver {
    tsi: u32,
    fdt: Option<FdtInstance>,
    objects: HashMap<u32, ObjectState>,
    session_closed: bool,
    emitter: Option<ReportEmitter>,
    nack_mode: bool,
    last_nacked: Vec<crate::feedback::NackEntry>,
    metrics: Option<ReceiverMetrics>,
    registry: Option<Registry>,
    /// Bonded path the datagrams currently being pushed arrived on; set
    /// by [`push_datagrams_on`](Self::push_datagrams_on) around the
    /// shared push path so the emitter's EXT_SEQ accounting lands on the
    /// right per-path track. 0 for the single-path API.
    observe_path: usize,
}

impl FluteReceiver {
    /// Creates a receiver joined to session `tsi`.
    pub fn new(tsi: u32) -> FluteReceiver {
        FluteReceiver {
            tsi,
            fdt: None,
            objects: HashMap::new(),
            session_closed: false,
            emitter: None,
            nack_mode: false,
            last_nacked: Vec::new(),
            metrics: None,
            registry: None,
            observe_path: 0,
        }
    }

    /// Attaches a reception-report emitter to the receive path: every
    /// accepted datagram is observed (EXT_SEQ gap detection + per-TOI
    /// counters) and digests become available through
    /// [`poll_report`](Self::poll_report) /
    /// [`flush_report`](Self::flush_report).
    pub fn enable_reports(&mut self, config: ReportConfig) {
        let mut emitter = ReportEmitter::new(self.tsi, config);
        if let Some(registry) = &self.registry {
            emitter.attach_telemetry(registry);
        }
        self.emitter = Some(emitter);
    }

    /// Starts recording this receiver's activity into `registry`:
    /// datagram outcome counters, decode completions, and — once reports
    /// are enabled — the emitter's loss-process metrics (EXT_SEQ gaps,
    /// late/duplicate arrivals, sketch truncations, loss-run histograms).
    /// Call order relative to [`enable_reports`](Self::enable_reports)
    /// does not matter.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = Some(ReceiverMetrics::register(registry));
        if let Some(emitter) = self.emitter.as_mut() {
            emitter.attach_telemetry(registry);
        }
        self.registry = Some(registry.clone());
    }

    /// Folds the loss runs of still-undecoded objects into the residual
    /// (post-FEC) loss metrics. Call once, when the session is over from
    /// this receiver's point of view; without it the residual histograms
    /// stay empty (every run is presumed repairable until the session
    /// ends). No-op when telemetry or reports are off.
    pub fn finalize_telemetry(&mut self) {
        if let Some(emitter) = self.emitter.as_mut() {
            emitter.finalize_residual();
        }
    }

    /// Switches the receiver into NACK mode: per-block reception gaps
    /// are tracked and every digest carries a missing-symbol section
    /// (see [`NackEntry`](crate::feedback::NackEntry)), so the sender
    /// can emit *targeted* repair instead of extending whole schedules.
    /// Combine with [`enable_reports`](Self::enable_reports).
    pub fn enable_nacks(&mut self) {
        self.nack_mode = true;
    }

    /// The symbols this receiver still needs, per `(toi, block)`: for
    /// each undecoded object, up to `k - seen` not-yet-received ESIs per
    /// short block (lowest first, so source symbols are preferred).
    /// Empty unless [`enable_nacks`](Self::enable_nacks) was called and
    /// something is actually missing.
    pub fn missing_symbols(&self) -> Vec<crate::feedback::NackEntry> {
        let mut out = Vec::new();
        if !self.nack_mode {
            return out;
        }
        let mut tois: Vec<u32> = self.objects.keys().copied().collect();
        tois.sort_unstable();
        for toi in tois {
            if toi == FDT_TOI {
                continue;
            }
            let Some(state) = self.objects.get(&toi) else {
                continue;
            };
            if state.decoded.is_some() {
                continue;
            }
            let Some(oti) = &state.oti else {
                continue;
            };
            let Ok(spec) = oti.code_spec() else {
                continue;
            };
            let Ok(layout) = spec.layout() else {
                continue;
            };
            for b in 0..layout.num_blocks() {
                let (k, n) = layout.block(b);
                let seen = state.seen_esis.get(&(b as u32));
                let have = seen.map_or(0, |s| s.len());
                let needed = if have >= k {
                    if !spec.code.is_large_block() {
                        // Enough distinct symbols for an MDS block: it
                        // will solve, nothing to request.
                        continue;
                    }
                    // A large-block (LDGM) object can hold >= k symbols
                    // and still be stuck — iterative decoding pays an
                    // inefficiency overhead. Keep requesting a margin of
                    // fresh symbols (lowest ESIs first, i.e. missing
                    // *source* symbols, which always make progress)
                    // until the solve goes through.
                    (k / 16).max(4)
                } else {
                    k - have
                };
                let esis: Vec<u32> = (0..n as u32)
                    .filter(|e| seen.is_none_or(|s| !s.contains(e)))
                    .take(needed)
                    .collect();
                if !esis.is_empty() {
                    out.push(crate::feedback::NackEntry {
                        toi,
                        block: b as u32,
                        esis,
                    });
                }
            }
        }
        out
    }

    /// Recomputes the missing-symbol section and hands it to the
    /// emitter: a *changed* set counts as news (the next timer flush
    /// emits it), an unchanged set just rides along with whatever digest
    /// goes out next — so an idle receiver does not re-emit identical
    /// NACKs every tick.
    fn refresh_nacks(&mut self) {
        if !self.nack_mode || self.emitter.is_none() {
            return;
        }
        let nacks = self.missing_symbols();
        let changed = nacks != self.last_nacked;
        if let Some(em) = self.emitter.as_mut() {
            if changed {
                self.last_nacked = nacks.clone();
                em.set_nacks(nacks);
            } else {
                em.carry_nacks(nacks);
            }
        }
    }

    /// A digest, if the configured batching threshold has been reached.
    /// Call after each [`push_datagrams`](Self::push_datagrams) burst and
    /// ship the bytes down the return channel.
    pub fn poll_report(&mut self) -> Option<ReceptionReport> {
        self.refresh_nacks();
        self.emitter.as_mut().and_then(ReportEmitter::poll)
    }

    /// A digest now, regardless of the threshold — the caller's timer
    /// tick, or the final FIN digest after completion. `None` if reports
    /// are disabled or nothing was ever observed.
    pub fn flush_report(&mut self) -> Option<ReceptionReport> {
        self.refresh_nacks();
        self.emitter.as_mut().and_then(ReportEmitter::flush)
    }

    /// Feeds one raw datagram (as read from the socket).
    pub fn push_datagram(&mut self, datagram: &[u8]) -> Result<ReceiverEvent, FluteError> {
        // Surface malformed datagrams as errors (the batched path skips
        // them so one corrupt datagram cannot sink a whole burst).
        AlcPacket::from_bytes(datagram)?;
        let events = self.push_datagrams(std::slice::from_ref(&datagram))?;
        Ok(events
            .into_iter()
            .next()
            .expect("one datagram yields one event"))
    }

    /// Feeds a burst of raw datagrams — everything a socket drain produced
    /// in one wakeup — returning one event per datagram in order.
    ///
    /// Consecutive data packets of the same object are funnelled through
    /// the decoder's batched entry point
    /// ([`push_batch`](fec_core::Receiver::push_batch)), which defers
    /// block solves to the end of the burst; a burst that completes an
    /// object reports [`ReceiverEvent::ObjectComplete`] on that object's
    /// last datagram of the burst. FDT packets act as batch barriers so
    /// metadata still applies in arrival order. Malformed datagrams are
    /// skipped with [`ReceiverEvent::Rejected`] (one corrupt datagram
    /// must not cost the burst); `Err` is reserved for session-fatal
    /// states such as conflicting OTIs.
    pub fn push_datagrams<D: AsRef<[u8]>>(
        &mut self,
        datagrams: &[D],
    ) -> Result<Vec<ReceiverEvent>, FluteError> {
        self.push_datagrams_on(0, datagrams)
    }

    /// Feeds a burst that arrived on bonded path `path`: identical to
    /// [`push_datagrams`](Self::push_datagrams) except the report
    /// emitter's EXT_SEQ gap accounting uses that path's own sequence
    /// track — a bonded sender stamps an independent EXT_SEQ space per
    /// path, so feeding a path's traffic through the single-path entry
    /// point would misread cross-path interleaving as loss/reordering.
    pub fn push_datagrams_on<D: AsRef<[u8]>>(
        &mut self,
        path: usize,
        datagrams: &[D],
    ) -> Result<Vec<ReceiverEvent>, FluteError> {
        self.observe_path = path;
        let mut events = Vec::with_capacity(datagrams.len());
        // Per-TOI bursts awaiting a batched feed, in first-seen order,
        // plus the event slot of each data datagram (to upgrade the right
        // entry to ObjectComplete once its burst decodes).
        let mut pending: Vec<(u32, Vec<(FecPayloadId, Bytes)>)> = Vec::new();
        let mut data_slots: Vec<(usize, u32)> = Vec::new();

        for datagram in datagrams {
            let packet = match AlcPacket::from_bytes(datagram.as_ref()) {
                Ok(p) => p,
                Err(_) => {
                    // Network garbage must not sink the burst's good
                    // datagrams: skip it and keep going.
                    events.push(ReceiverEvent::Rejected);
                    continue;
                }
            };
            if packet.header.tsi != self.tsi {
                events.push(ReceiverEvent::ForeignSession);
                continue;
            }
            if let Some(em) = self.emitter.as_mut() {
                em.observe_on(self.observe_path, packet.header.toi, packet.sequence());
            }
            if packet.header.close_session {
                self.session_closed = true;
            }
            if packet.header.toi == FDT_TOI {
                // The FDT may unlock buffered objects; keep arrival order
                // by flushing the bursts collected so far first.
                self.flush_pending(&mut pending, &mut events, &mut data_slots)?;
                match self.accept_fdt(&packet) {
                    Ok(event) => events.push(event),
                    // A garbled FDT payload (bad UTF-8, bad XML, missing
                    // EXT_FDT) is one bad datagram, not a dead session. A
                    // *conflicting* OTI for an object we are already
                    // decoding stays session-fatal.
                    Err(e @ FluteError::Session { .. }) => return Err(e),
                    Err(_) => events.push(ReceiverEvent::Rejected),
                }
                continue;
            }

            let toi = packet.header.toi;
            // EXT_FTI on the packet lets decoding start before any FDT
            // arrives. A corrupt FTI blob is per-datagram garbage: reject
            // it before touching object state, keeping the burst alive.
            let oti_known = self.objects.get(&toi).is_some_and(|s| s.oti.is_some());
            let fresh_oti = if oti_known {
                None
            } else {
                match packet.fti_blob() {
                    Some(blob) => match ObjectTransmissionInfo::from_bytes(blob) {
                        Ok(oti) => Some(oti),
                        Err(_) => {
                            events.push(ReceiverEvent::Rejected);
                            continue;
                        }
                    },
                    None => None,
                }
            };
            let state = self.objects.entry(toi).or_insert_with(ObjectState::new);
            if packet.header.close_object {
                state.closed = true;
            }
            state.packets_received += 1;
            if let Some(oti) = fresh_oti {
                // Conflicting OTIs (vs an FDT seen earlier) stay fatal.
                state.set_oti(oti)?;
            }
            let id = packet.payload_id.expect("data packets carry a payload ID");
            if self.nack_mode {
                state.seen_esis.entry(id.sbn).or_default().insert(id.esi);
            }
            match pending.iter_mut().find(|(t, _)| *t == toi) {
                Some((_, batch)) => batch.push((id, packet.payload)),
                None => pending.push((toi, vec![(id, packet.payload)])),
            }
            data_slots.push((events.len(), toi));
            events.push(ReceiverEvent::ObjectProgress { toi });
        }
        self.flush_pending(&mut pending, &mut events, &mut data_slots)?;
        if self.emitter.is_some() {
            // Completion flags are sticky in the emitter, so a scan per
            // burst is enough even if the application later takes the
            // decoded objects out.
            let complete: Vec<u32> = self
                .objects
                .iter()
                .filter(|(_, s)| s.decoded.is_some())
                .map(|(&toi, _)| toi)
                .collect();
            let session_done = self.all_complete();
            if let Some(em) = self.emitter.as_mut() {
                for toi in complete {
                    em.mark_complete(toi);
                }
                if session_done {
                    em.mark_session_complete();
                }
            }
        }
        if let Some(m) = &self.metrics {
            for event in &events {
                match event {
                    ReceiverEvent::FdtReceived => m.fdt.inc(),
                    ReceiverEvent::FdtIgnored => m.fdt_ignored.inc(),
                    ReceiverEvent::ObjectProgress { .. } => m.data.inc(),
                    ReceiverEvent::ObjectComplete { .. } => {
                        m.data.inc();
                        m.completed.inc();
                    }
                    ReceiverEvent::ForeignSession => m.foreign.inc(),
                    ReceiverEvent::Rejected => m.rejected.inc(),
                }
            }
        }
        Ok(events)
    }

    /// Feeds the collected per-object bursts down to the decoders and
    /// upgrades each newly-completed object's last event of the burst.
    fn flush_pending(
        &mut self,
        pending: &mut Vec<(u32, Vec<(FecPayloadId, Bytes)>)>,
        events: &mut [ReceiverEvent],
        data_slots: &mut Vec<(usize, u32)>,
    ) -> Result<(), FluteError> {
        for (toi, batch) in pending.drain(..) {
            let state = self.objects.get_mut(&toi).expect("pending implies state");
            let was_complete = state.decoded.is_some();
            state.feed_batch(batch)?;
            if !was_complete && state.decoded.is_some() {
                if let Some(&(slot, _)) = data_slots.iter().rev().find(|(_, t)| *t == toi) {
                    events[slot] = ReceiverEvent::ObjectComplete { toi };
                }
            }
        }
        data_slots.clear();
        Ok(())
    }

    fn accept_fdt(&mut self, packet: &AlcPacket) -> Result<ReceiverEvent, FluteError> {
        let instance_id = packet
            .fdt_instance_id()
            .ok_or_else(|| FluteError::Malformed {
                reason: "FDT packet without EXT_FDT".into(),
            })?;
        if let Some(existing) = &self.fdt {
            if existing.instance_id >= instance_id {
                return Ok(ReceiverEvent::FdtIgnored);
            }
        }
        let text = std::str::from_utf8(&packet.payload).map_err(|_| FluteError::Xml {
            reason: "FDT payload is not UTF-8".into(),
        })?;
        let fdt = FdtInstance::from_xml_with_id(text, instance_id)?;
        // Every listed file whose OTI we did not know yet can start
        // decoding; for files already decoding, this cross-checks that the
        // FDT agrees with the EXT_FTI we acted on (set_oti is idempotent
        // and rejects conflicts).
        for file in &fdt.files {
            let state = self
                .objects
                .entry(file.toi)
                .or_insert_with(ObjectState::new);
            state.set_oti(file.oti.clone())?;
        }
        self.fdt = Some(fdt);
        Ok(ReceiverEvent::FdtReceived)
    }

    /// The most recent FDT instance, if any arrived.
    pub fn fdt(&self) -> Option<&FdtInstance> {
        self.fdt.as_ref()
    }

    /// Whether the sender has signalled the end of the session (`A` flag).
    pub fn session_closed(&self) -> bool {
        self.session_closed
    }

    /// Status of one object.
    pub fn object_status(&self, toi: u32) -> Option<ObjectStatus> {
        self.objects.get(&toi).map(ObjectState::status)
    }

    /// Data packets received for one object (duplicates included).
    pub fn packets_received(&self, toi: u32) -> u64 {
        self.objects.get(&toi).map_or(0, |s| s.packets_received)
    }

    /// Borrows a decoded object's bytes.
    pub fn object(&self, toi: u32) -> Option<&[u8]> {
        self.objects.get(&toi).and_then(|s| s.decoded.as_deref())
    }

    /// Removes and returns a decoded object.
    pub fn take_object(&mut self, toi: u32) -> Option<Vec<u8>> {
        self.objects.get_mut(&toi).and_then(|s| s.decoded.take())
    }

    /// True once every file listed in the FDT is decoded. False while no
    /// FDT has been received (we cannot know the session's contents).
    pub fn all_complete(&self) -> bool {
        match &self.fdt {
            None => false,
            Some(fdt) => fdt.files.iter().all(|f| {
                self.objects
                    .get(&f.toi)
                    .is_some_and(|s| s.decoded.is_some())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session_with_object(data: &[u8], tx: TxModel) -> FluteSender {
        let mut sender = FluteSender::new(SenderConfig::new(7));
        sender
            .add_object(
                1,
                "file:///demo.bin",
                data,
                fec_codec::builtin::ldgm_staircase(),
                ExpansionRatio::R2_5,
                16,
                99,
                tx,
            )
            .unwrap();
        sender
    }

    fn object_bytes(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn lossless_delivery_roundtrip() {
        let data = object_bytes(1000);
        let sender = session_with_object(&data, TxModel::Random);
        let mut receiver = FluteReceiver::new(7);
        let mut completed = false;
        for dg in sender.datagrams(5).unwrap() {
            if let ReceiverEvent::ObjectComplete { toi } = receiver.push_datagram(&dg).unwrap() {
                assert_eq!(toi, 1);
                completed = true;
            }
        }
        assert!(completed);
        assert!(receiver.all_complete());
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
        assert_eq!(receiver.take_object(1).unwrap(), data);
        assert!(receiver.session_closed());
        // FDT metadata arrived too.
        assert_eq!(
            receiver.fdt().unwrap().file(1).unwrap().content_location,
            "file:///demo.bin"
        );
    }

    /// The full NACK loop on one stream: drop known symbols, let the
    /// receiver's digest name them, aggregate, queue targeted repair,
    /// and verify exactly those symbols close the object byte-exactly.
    #[test]
    fn nack_loop_repairs_exactly_the_missing_symbols() {
        use crate::feedback::{AggregatorConfig, FeedbackAggregator};
        use fec_adapt::ControllerConfig;
        use std::net::SocketAddr;

        let data = object_bytes(50 * 8);
        let mut sender = FluteSender::new(SenderConfig::new(7));
        sender
            .add_object(
                1,
                "file:///nack.bin",
                &data,
                fec_codec::builtin::rse(),
                ExpansionRatio::R2_5,
                8,
                99,
                TxModel::SourceSeqParitySeq,
            )
            .unwrap();
        let mut stream = sender.stream(5);
        let mut receiver = FluteReceiver::new(7);
        receiver.enable_reports(ReportConfig::default());
        receiver.enable_nacks();

        // Deliver the FDT and the k source packets, dropping three ESIs.
        let dropped = [3u32, 17, 29];
        let mut delivered = 0;
        while delivered < 50 {
            let dg = stream.next_datagram().unwrap().unwrap();
            let packet = AlcPacket::from_bytes(&dg).unwrap();
            if packet.header.toi == FDT_TOI {
                receiver.push_datagram(&dg).unwrap();
                continue;
            }
            delivered += 1;
            let esi = packet.payload_id.unwrap().esi;
            if dropped.contains(&esi) {
                continue;
            }
            receiver.push_datagram(&dg).unwrap();
        }
        assert_eq!(receiver.object_status(1), Some(ObjectStatus::Decoding));
        let missing = receiver.missing_symbols();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].toi, 1);
        assert_eq!(missing[0].esis, dropped.to_vec());

        // The digest carries the NACKs to the sender's aggregator…
        let digest = receiver.flush_report().expect("losses are news");
        assert_eq!(digest.nacks, missing);
        let mut agg =
            FeedbackAggregator::new(7, AggregatorConfig::default(), ControllerConfig::default());
        let src: SocketAddr = "10.0.0.1:4000".parse().unwrap();
        agg.ingest(src, &digest);
        let requests = agg.take_nack_requests();
        assert_eq!(requests, missing);

        // …which repairs exactly those symbols instead of the remaining
        // 75-packet parity schedule.
        stream.stop_object(1).unwrap();
        assert_eq!(stream.queue_repair(&requests), 3);
        let mut repairs = Vec::new();
        while let Some(dg) = stream.next_datagram().unwrap() {
            repairs.push(dg);
        }
        assert_eq!(repairs.len(), 3, "targeted repair, not the schedule");
        for dg in &repairs {
            receiver.push_datagram(dg).unwrap();
        }
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
        assert!(receiver.missing_symbols().is_empty());
        // A fresh NACK for a completed object is ignored sender-side…
        let stale = requests.clone();
        agg.ingest(src, &{
            let mut d = digest.clone();
            d.report_seq += 1;
            for e in d.entries.iter_mut().filter(|e| e.toi == 1) {
                e.complete = true;
            }
            d
        });
        assert!(agg.is_complete(1));
        // …and queueing unknown TOIs/ESIs is harmless.
        let bogus = crate::feedback::NackEntry {
            toi: 9,
            block: 0,
            esis: vec![1],
        };
        assert_eq!(stream.queue_repair(&[bogus]), 0);
        assert_eq!(stream.repairs_sent(), 3);
        drop(stale);
    }

    #[test]
    fn decodes_without_fdt_via_ext_fti() {
        let data = object_bytes(500);
        let sender = session_with_object(&data, TxModel::Random);
        let mut receiver = FluteReceiver::new(7);
        for dg in sender.datagrams(5).unwrap() {
            // Drop every FDT packet: EXT_FTI alone must carry the day.
            let packet = AlcPacket::from_bytes(&dg).unwrap();
            if packet.header.toi == FDT_TOI {
                continue;
            }
            receiver.push_datagram(&dg).unwrap();
        }
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
        // But without an FDT the receiver cannot declare the session done.
        assert!(!receiver.all_complete());
    }

    #[test]
    fn decodes_from_fdt_when_data_has_no_fti() {
        let data = object_bytes(500);
        let mut config = SenderConfig::new(7);
        config.fti_in_data_packets = false;
        let mut sender = FluteSender::new(config);
        sender
            .add_object(
                1,
                "x",
                &data,
                fec_codec::builtin::rse(),
                ExpansionRatio::R1_5,
                16,
                0,
                TxModel::Interleaved,
            )
            .unwrap();
        let mut receiver = FluteReceiver::new(7);
        for dg in sender.datagrams(1).unwrap() {
            receiver.push_datagram(&dg).unwrap();
        }
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
    }

    #[test]
    fn buffers_data_until_late_fdt() {
        let data = object_bytes(300);
        let mut config = SenderConfig::new(7);
        config.fti_in_data_packets = false;
        config.fdt_interval = 0;
        let mut sender = FluteSender::new(config);
        sender
            .add_object(
                1,
                "x",
                &data,
                fec_codec::builtin::ldgm_triangle(),
                ExpansionRatio::R2_5,
                8,
                1,
                TxModel::Random,
            )
            .unwrap();
        let datagrams = sender.datagrams(3).unwrap();
        let mut receiver = FluteReceiver::new(7);
        // Deliver the data first (skipping the leading FDT and the final
        // B-flagged packet), then the FDT last.
        for dg in &datagrams[1..datagrams.len() - 1] {
            receiver.push_datagram(dg).unwrap();
        }
        assert_eq!(receiver.object_status(1), Some(ObjectStatus::AwaitingOti));
        receiver.push_datagram(&datagrams[0]).unwrap();
        assert_eq!(receiver.object_status(1), Some(ObjectStatus::Complete));
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
    }

    #[test]
    fn multi_object_session() {
        let a = object_bytes(400);
        let b = object_bytes(777);
        let mut sender = FluteSender::new(SenderConfig::new(3));
        sender
            .add_object(
                1,
                "a",
                &a,
                fec_codec::builtin::ldgm_staircase(),
                ExpansionRatio::R2_5,
                16,
                5,
                TxModel::Random,
            )
            .unwrap();
        sender
            .add_object(
                2,
                "b",
                &b,
                fec_codec::builtin::rse(),
                ExpansionRatio::R1_5,
                32,
                0,
                TxModel::Interleaved,
            )
            .unwrap();
        let mut receiver = FluteReceiver::new(3);
        for dg in sender.datagrams(8).unwrap() {
            receiver.push_datagram(&dg).unwrap();
        }
        assert!(receiver.all_complete());
        assert_eq!(receiver.object(1).unwrap(), &a[..]);
        assert_eq!(receiver.object(2).unwrap(), &b[..]);
    }

    #[test]
    fn survives_loss_reorder_and_duplication() {
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};

        let data = object_bytes(1200);
        let sender = session_with_object(&data, TxModel::Random);
        let mut datagrams = sender.datagrams(11).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        // Lose 20%, duplicate 10%, shuffle everything.
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        for dg in datagrams.drain(..) {
            if rng.gen_bool(0.2) {
                continue;
            }
            if rng.gen_bool(0.1) {
                delivered.push(dg.clone());
            }
            delivered.push(dg);
        }
        delivered.shuffle(&mut rng);
        let mut receiver = FluteReceiver::new(7);
        for dg in &delivered {
            receiver.push_datagram(dg).unwrap();
        }
        assert_eq!(
            receiver.object(1).unwrap(),
            &data[..],
            "ratio 2.5 absorbs 20% loss"
        );
    }

    #[test]
    fn batched_push_matches_per_datagram_push() {
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};

        let data = object_bytes(1200);
        let sender = session_with_object(&data, TxModel::Random);
        let mut datagrams = sender.datagrams(11).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        // Same 20% loss / 10% duplication / shuffle as the scalar test.
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        for dg in datagrams.drain(..) {
            if rng.gen_bool(0.2) {
                continue;
            }
            if rng.gen_bool(0.1) {
                delivered.push(dg.clone());
            }
            delivered.push(dg);
        }
        delivered.shuffle(&mut rng);

        let mut scalar_rx = FluteReceiver::new(7);
        for dg in &delivered {
            scalar_rx.push_datagram(dg).unwrap();
        }
        // Feed the same stream in random burst sizes (as a socket drain
        // would produce them).
        let mut batched_rx = FluteReceiver::new(7);
        let mut events = Vec::new();
        let mut rest: &[Vec<u8>] = &delivered;
        while !rest.is_empty() {
            let n = rng.gen_range(1..=rest.len().min(64));
            let (burst, tail) = rest.split_at(n);
            events.extend(batched_rx.push_datagrams(burst).unwrap());
            rest = tail;
        }
        assert_eq!(events.len(), delivered.len(), "one event per datagram");
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::ObjectComplete { .. }))
                .count(),
            1
        );
        assert_eq!(batched_rx.object(1).unwrap(), &data[..]);
        assert_eq!(batched_rx.object(1), scalar_rx.object(1));
        assert_eq!(
            batched_rx.packets_received(1),
            scalar_rx.packets_received(1)
        );
    }

    #[test]
    fn corrupt_datagram_does_not_sink_the_burst() {
        let data = object_bytes(600);
        let sender = session_with_object(&data, TxModel::Random);
        let mut burst = sender.datagrams(4).unwrap();
        // Inject garbage mid-burst (and truncate one real datagram into
        // garbage too).
        burst.insert(burst.len() / 2, vec![0xFF; 7]);
        burst.insert(burst.len() / 3, b"not an alc packet".to_vec());
        let mut receiver = FluteReceiver::new(7);
        let events = receiver.push_datagrams(&burst).unwrap();
        assert_eq!(events.len(), burst.len());
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::Rejected))
                .count(),
            2
        );
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
        // The scalar path keeps its error contract for the same bytes.
        assert!(receiver.push_datagram(&[0xFF; 7]).is_err());
    }

    #[test]
    fn corrupt_fti_blob_rejects_one_datagram_not_the_burst() {
        let data = object_bytes(600);
        let sender = session_with_object(&data, TxModel::Random);
        let mut burst = sender.datagrams(4).unwrap();
        // Forge a data packet whose EXT_FTI blob is garbage: the ALC
        // framing parses (codepoint borrowed from a real data packet),
        // the OTI inside does not.
        let template = AlcPacket::from_bytes(&burst[1]).unwrap();
        let poison = AlcPacket::data(
            7,
            1,
            template.header.codepoint,
            FecPayloadId { sbn: 0, esi: 9999 },
            Bytes::from(vec![0u8; 16]),
        )
        .with_fti(vec![0xFF; 3])
        .to_bytes()
        .unwrap();
        // Before the FDT, so the receiver must judge the FTI blob itself.
        burst.insert(0, poison);
        let mut receiver = FluteReceiver::new(7);
        let events = receiver.push_datagrams(&burst).unwrap();
        assert_eq!(events.len(), burst.len());
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::Rejected))
                .count(),
            1
        );
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
    }

    #[test]
    fn garbled_fdt_payload_rejects_one_datagram_not_the_burst() {
        let data = object_bytes(600);
        let sender = session_with_object(&data, TxModel::Random);
        let mut burst = sender.datagrams(4).unwrap();
        // Valid ALC framing, EXT_FDT present, but the payload is not XML.
        let bad_fdt = AlcPacket::fdt(7, 99, Bytes::from(b"\xFF\xFEnot xml".to_vec()))
            .to_bytes()
            .unwrap();
        burst.insert(1, bad_fdt);
        // And one FDT-TOI packet with no EXT_FDT at all.
        let no_ext = AlcPacket {
            header: crate::LctHeader::new(7, FDT_TOI, 0),
            payload_id: None,
            payload: Bytes::from(b"<FDT/>".to_vec()),
        }
        .to_bytes()
        .unwrap();
        burst.insert(3, no_ext);
        let mut receiver = FluteReceiver::new(7);
        let events = receiver.push_datagrams(&burst).unwrap();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::Rejected))
                .count(),
            2
        );
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
    }

    #[test]
    fn whole_session_in_one_burst() {
        let a = object_bytes(400);
        let b = object_bytes(777);
        let mut sender = FluteSender::new(SenderConfig::new(3));
        sender
            .add_object(
                1,
                "a",
                &a,
                fec_codec::builtin::ldgm_staircase(),
                ExpansionRatio::R2_5,
                16,
                5,
                TxModel::Random,
            )
            .unwrap();
        sender
            .add_object(
                2,
                "b",
                &b,
                fec_codec::builtin::rse(),
                ExpansionRatio::R1_5,
                32,
                0,
                TxModel::Interleaved,
            )
            .unwrap();
        let mut receiver = FluteReceiver::new(3);
        let events = receiver
            .push_datagrams(&sender.datagrams(8).unwrap())
            .unwrap();
        assert!(receiver.all_complete());
        assert_eq!(receiver.object(1).unwrap(), &a[..]);
        assert_eq!(receiver.object(2).unwrap(), &b[..]);
        // Both objects completed exactly once each, in this single burst.
        let completed: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::ObjectComplete { toi } => Some(*toi),
                _ => None,
            })
            .collect();
        assert_eq!(completed.len(), 2);
        assert!(completed.contains(&1) && completed.contains(&2));
    }

    #[test]
    fn batched_push_buffers_until_late_fdt() {
        let data = object_bytes(300);
        let mut config = SenderConfig::new(7);
        config.fti_in_data_packets = false;
        config.fdt_interval = 0;
        let mut sender = FluteSender::new(config);
        sender
            .add_object(
                1,
                "x",
                &data,
                fec_codec::builtin::ldgm_triangle(),
                ExpansionRatio::R2_5,
                8,
                1,
                TxModel::Random,
            )
            .unwrap();
        let datagrams = sender.datagrams(3).unwrap();
        let mut receiver = FluteReceiver::new(7);
        // One burst: all data first (no OTI anywhere), then the FDT last —
        // the FDT barrier must flush the buffered burst and complete the
        // object within the same call.
        let mut reordered: Vec<Vec<u8>> = datagrams[1..].to_vec();
        reordered.push(datagrams[0].clone());
        let events = receiver.push_datagrams(&reordered).unwrap();
        assert_eq!(receiver.object_status(1), Some(ObjectStatus::Complete));
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
        assert_eq!(events.len(), reordered.len());
    }

    #[test]
    fn stream_without_amendments_equals_datagrams() {
        let data = object_bytes(900);
        let mut sender = FluteSender::new(SenderConfig::new(7));
        sender
            .add_object(
                1,
                "a",
                &data,
                fec_codec::builtin::ldgm_staircase(),
                ExpansionRatio::R2_5,
                16,
                5,
                TxModel::Random,
            )
            .unwrap();
        sender
            .add_object(
                2,
                "b",
                &object_bytes(333),
                fec_codec::builtin::rse(),
                ExpansionRatio::R1_5,
                16,
                0,
                TxModel::Interleaved,
            )
            .unwrap();
        let batch = sender.datagrams(9).unwrap();
        let mut stream = sender.stream(9);
        let mut streamed = Vec::new();
        while let Some(dg) = stream.next_datagram().unwrap() {
            streamed.push(dg);
        }
        assert_eq!(batch, streamed);
        assert!(stream.is_done());
        assert_eq!(stream.data_emitted(), sender.data_packet_count());
        // Every datagram carries a distinct, consecutive EXT_SEQ.
        for (i, dg) in batch.iter().enumerate() {
            assert_eq!(
                AlcPacket::from_bytes(dg).unwrap().sequence(),
                Some(i as u32)
            );
        }
    }

    #[test]
    fn stream_amendment_truncates_mid_flight() {
        use fec_core::{Amendment, TransmissionPlan};

        let data = object_bytes(2000); // k = 125 at 16B symbols, n = 312
        let sender = session_with_object(&data, TxModel::Random);
        let mut stream = sender.stream(4);
        let full = stream.full_total();
        let k = stream.source_count(1).unwrap() as usize;

        // Emit a first chunk, then a plan arrives from the feedback loop.
        let mut receiver = FluteReceiver::new(7);
        for _ in 0..80 {
            let dg = stream.next_datagram().unwrap().unwrap();
            receiver.push_datagram(&dg).unwrap();
        }
        let plan = TransmissionPlan::new(k, full, 1.15, fec_channel::GilbertParams::perfect(), 4);
        assert!(matches!(
            stream.amend_plan(1, Some(&plan)).unwrap(),
            Amendment::Truncated { .. }
        ));
        assert!(stream.amend_plan(99, None).is_err(), "unknown TOI");

        let mut emitted = 80u64;
        while let Some(dg) = stream.next_datagram().unwrap() {
            emitted += 1;
            receiver.push_datagram(&dg).unwrap();
        }
        assert_eq!(stream.data_emitted(), stream.planned_total());
        assert!(emitted < full, "truncated: {emitted} of {full}");
        // A lossless channel decodes from the planned prefix.
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
        assert!(
            receiver.session_closed(),
            "A flag rode the planned last packet"
        );
    }

    #[test]
    fn exhausted_stream_revives_on_extension() {
        use fec_core::{Amendment, TransmissionPlan};

        let data = object_bytes(2000);
        let sender = session_with_object(&data, TxModel::Random);
        let mut stream = sender.stream(4);
        let full = stream.full_total();
        let k = stream.source_count(1).unwrap() as usize;
        // Truncate hard, run the stream dry…
        let thin = TransmissionPlan::new(k, full, 1.0, fec_channel::GilbertParams::perfect(), 0);
        stream.amend_plan(1, Some(&thin)).unwrap();
        let mut first_leg = 0u64;
        while stream.next_datagram().unwrap().is_some() {
            first_leg += 1;
        }
        assert!(stream.is_done());
        // …then the backoff path reverts to the full schedule: the cursor
        // must rewind and emission must resume (this is the "plan was too
        // thin, keep sending" recovery — it must not dead-end).
        assert!(matches!(
            stream.amend_plan(1, None).unwrap(),
            Amendment::Extended { .. }
        ));
        assert!(!stream.is_done());
        let mut second_leg = 0u64;
        let mut receiver = FluteReceiver::new(7);
        while let Some(dg) = stream.next_datagram().unwrap() {
            second_leg += 1;
            receiver.push_datagram(&dg).unwrap();
        }
        assert!(second_leg > 0, "extension revived the stream");
        assert_eq!(stream.data_emitted(), full);
        let _ = first_leg;
        // A decoded object stops mid-plan, idempotently.
        let mut stream2 = sender.stream(4);
        for _ in 0..10 {
            stream2.next_datagram().unwrap().unwrap();
        }
        assert!(matches!(
            stream2.stop_object(1).unwrap(),
            Amendment::Truncated { .. }
        ));
        assert!(matches!(
            stream2.stop_object(1).unwrap(),
            Amendment::Unchanged
        ));
        assert!(stream2.next_datagram().unwrap().is_none());
        assert!(stream2.stop_object(99).is_err(), "unknown TOI");
    }

    #[test]
    fn receiver_reports_feed_the_sender_loop() {
        use crate::feedback::{FeedbackLoop, ReportConfig, ReportOutcome};
        use fec_adapt::ControllerConfig;
        use fec_channel::{GilbertChannel, GilbertParams, LinkEmulator, LossModel};

        let data = object_bytes(4000);
        let sender = session_with_object(&data, TxModel::Random);
        let mut stream = sender.stream(11);
        let mut receiver = FluteReceiver::new(7);
        receiver.enable_reports(ReportConfig {
            report_every: 64,
            ..ReportConfig::default()
        });
        let mut feedback = FeedbackLoop::new(
            7,
            ControllerConfig {
                min_observations: 100,
                ..ControllerConfig::default()
            },
        );
        // ~5% bursty loss on the forward channel, clean return channel.
        let model: Box<dyn LossModel> = Box::new(GilbertChannel::new(
            GilbertParams::new(0.02, 0.38).unwrap(),
            3,
        ));
        let mut link = LinkEmulator::new(model, 17);
        let mut digests = 0u64;
        while let Some(dg) = stream.next_datagram().unwrap() {
            for delivered in link.transmit(&dg) {
                receiver.push_datagram(&delivered).unwrap();
            }
            if let Some(report) = receiver.poll_report() {
                digests += 1;
                let outcome = feedback
                    .ingest_datagram(&report.to_bytes().unwrap())
                    .unwrap();
                assert!(matches!(outcome, ReportOutcome::Applied { .. }));
            }
        }
        let report = receiver.flush_report().expect("observations exist");
        feedback.ingest(&report);
        assert!(digests > 3, "batching produced {digests} digests");
        assert_eq!(receiver.object(1).unwrap(), &data[..]);
        assert!(feedback.is_complete(1));
        assert!(feedback.session_complete());
        // The estimator saw the channel: its loss estimate is near 5%.
        let est = feedback.controller().estimator().estimate().unwrap();
        let p_global = est.p_global();
        assert!(
            (0.01..0.12).contains(&p_global),
            "estimated global loss {p_global}"
        );
        // And the counters crossed the wire: losses were reported.
        let entry = report.entries.iter().find(|e| e.toi == 1).unwrap();
        assert!(entry.lost > 0 && entry.received > 0);
        assert!(entry.complete);
    }

    #[test]
    fn foreign_tsi_ignored() {
        let sender = session_with_object(&object_bytes(100), TxModel::Random);
        let mut receiver = FluteReceiver::new(999); // different session
        for dg in sender.datagrams(1).unwrap() {
            assert_eq!(
                receiver.push_datagram(&dg).unwrap(),
                ReceiverEvent::ForeignSession
            );
        }
        assert!(receiver.object(1).is_none());
    }

    #[test]
    fn stale_fdt_instances_ignored() {
        let sender = session_with_object(&object_bytes(100), TxModel::Random);
        let fdt_dg = sender.fdt_datagram().unwrap();
        let mut receiver = FluteReceiver::new(7);
        assert_eq!(
            receiver.push_datagram(&fdt_dg).unwrap(),
            ReceiverEvent::FdtReceived
        );
        assert_eq!(
            receiver.push_datagram(&fdt_dg).unwrap(),
            ReceiverEvent::FdtIgnored
        );
    }

    #[test]
    fn closed_incomplete_object_reports_status() {
        let data = object_bytes(800);
        let sender = session_with_object(&data, TxModel::Random);
        let datagrams = sender.datagrams(2).unwrap();
        let mut receiver = FluteReceiver::new(7);
        // Deliver only the very last datagram (B flag), nothing else.
        receiver.push_datagram(datagrams.last().unwrap()).unwrap();
        assert_eq!(
            receiver.object_status(1),
            Some(ObjectStatus::ClosedIncomplete)
        );
        assert!(receiver.session_closed());
    }

    #[test]
    fn sender_validation() {
        let mut sender = FluteSender::new(SenderConfig::new(1));
        assert!(sender
            .add_object(
                0,
                "x",
                b"data",
                fec_codec::builtin::ldgm_staircase(),
                ExpansionRatio::R2_5,
                4,
                1,
                TxModel::Random
            )
            .is_err());
        sender
            .add_object(
                5,
                "x",
                &object_bytes(64),
                fec_codec::builtin::ldgm_staircase(),
                ExpansionRatio::R2_5,
                4,
                1,
                TxModel::Random,
            )
            .unwrap();
        assert!(
            sender
                .add_object(
                    5,
                    "y",
                    &object_bytes(64),
                    fec_codec::builtin::ldgm_staircase(),
                    ExpansionRatio::R2_5,
                    4,
                    1,
                    TxModel::Random
                )
                .is_err(),
            "duplicate TOI"
        );
    }

    #[test]
    fn conflicting_oti_is_an_error() {
        let data = object_bytes(256);
        let sender = session_with_object(&data, TxModel::Random);
        let datagrams = sender.datagrams(1).unwrap();
        // Datagram 0 is the FDT; datagram 1 is data with EXT_FTI.
        let mut receiver = FluteReceiver::new(7);
        receiver.push_datagram(&datagrams[1]).unwrap();
        // Forge an FDT advertising a different symbol size for TOI 1.
        let mut fdt = sender.fdt();
        fdt.instance_id += 1;
        fdt.files[0].oti.symbol_size *= 2;
        let forged = AlcPacket::fdt(7, fdt.instance_id, Bytes::from(fdt.to_xml().into_bytes()));
        assert!(receiver.push_datagram(&forged.to_bytes().unwrap()).is_err());
    }

    #[test]
    fn fdt_interval_repeats_fdt() {
        let data = object_bytes(2000);
        let mut config = SenderConfig::new(7);
        config.fdt_interval = 10;
        let mut sender = FluteSender::new(config);
        sender
            .add_object(
                1,
                "x",
                &data,
                fec_codec::builtin::ldgm_staircase(),
                ExpansionRatio::R2_5,
                8,
                1,
                TxModel::Random,
            )
            .unwrap();
        let fdt_count = sender
            .datagrams(1)
            .unwrap()
            .iter()
            .filter(|dg| AlcPacket::from_bytes(dg).unwrap().header.toi == FDT_TOI)
            .count();
        // 250 source symbols -> 625 packets -> 1 leading + ~62 repeats.
        assert!(fdt_count > 50, "only {fdt_count} FDT datagrams");
    }
}
