//! Property tests for the fan-out feedback path.
//!
//! Two guarantees the million-receiver loop depends on:
//!
//! 1. **EXT_SEQ wraparound is invisible.** The 24-bit sequence space
//!    wraps every ~16M packets; a receiver whose stream crosses the wrap
//!    must sketch exactly the losses that occurred, and the aggregator
//!    must fold exactly those observations — no phantom 16M-packet gap,
//!    no lost accounting.
//! 2. **Impaired digest delivery cannot corrupt the aggregate.** The
//!    return channel drops, duplicates, and reorders digests per
//!    receiver. Whatever arrives, the aggregator's estimator state must
//!    equal a clean single-stream replay of exactly the worst receiver's
//!    accepted digest subset — population bookkeeping is O(1) per digest
//!    and only the worst receiver's sketch reaches the estimator.

use std::net::SocketAddr;

use fec_adapt::{AdaptiveController, ControllerConfig};
use fec_flute::feedback::{
    AggregateOutcome, AggregatorConfig, FeedbackAggregator, LossRun, ReceptionReport, ReportConfig,
    ReportEmitter, ReportEntry, SEQ_MODULUS,
};

use proptest::prelude::*;

fn addr(n: u16) -> SocketAddr {
    SocketAddr::from(([10, 1, (n >> 8) as u8, n as u8], 4000))
}

fn aggregator() -> FeedbackAggregator {
    FeedbackAggregator::new(7, AggregatorConfig::default(), ControllerConfig::default())
}

/// A digest from the designated worst receiver: cumulative loss grows
/// strictly with every report, so it stays the population's worst.
fn worst_digest(seq: u32, loss_burst: u32, calm_run: u32) -> ReceptionReport {
    ReceptionReport {
        tsi: 7,
        report_seq: seq,
        highest_seq: Some(seq * 128 % SEQ_MODULUS),
        session_complete: false,
        truncated: false,
        entries: vec![ReportEntry {
            toi: 1,
            received: seq * 100,
            lost: seq * loss_burst,
            complete: false,
        }],
        runs: vec![
            LossRun {
                lost: false,
                len: calm_run,
            },
            LossRun {
                lost: true,
                len: loss_burst,
            },
            LossRun {
                lost: false,
                len: calm_run,
            },
        ],
        nacks: vec![],
    }
}

/// A loss-free digest from a healthy receiver.
fn clean_digest(seq: u32, calm_run: u32) -> ReceptionReport {
    ReceptionReport {
        tsi: 7,
        report_seq: seq,
        highest_seq: Some(seq * 128 % SEQ_MODULUS),
        session_complete: false,
        truncated: false,
        entries: vec![ReportEntry {
            toi: 1,
            received: seq * 100,
            lost: 0,
            complete: false,
        }],
        runs: vec![LossRun {
            lost: false,
            len: calm_run,
        }],
        nacks: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A receiver whose packet stream crosses the 24-bit EXT_SEQ wrap
    /// sketches exactly the interior losses, and the aggregator folds
    /// exactly those observations.
    #[test]
    fn ext_seq_wraparound_cannot_corrupt_loss_accounting(
        start_offset in 0u32..600,
        mut drop_mask in proptest::collection::vec(any::<bool>(), 1200),
        report_every in 16usize..200,
    ) {
        // Start close enough to the top that the stream always wraps.
        let n = drop_mask.len();
        let start = SEQ_MODULUS - 600 - start_offset;
        // Anchor both ends: losses before the first or after the last
        // delivered packet are unknowable from sequence gaps, so pin the
        // ground truth to interior drops only.
        drop_mask[0] = false;
        drop_mask[n - 1] = false;

        let mut em = ReportEmitter::new(7, ReportConfig {
            report_every,
            max_runs: 4096,
            ..ReportConfig::default()
        });
        let mut agg = aggregator();
        let src = addr(1);
        let ingest = |agg: &mut FeedbackAggregator, d: ReceptionReport| {
            // Through the wire, like the live path.
            let out = agg
                .ingest_datagram(src, &d.to_bytes().unwrap())
                .expect("wire roundtrip");
            prop_assert!(
                matches!(out, AggregateOutcome::Folded { .. }),
                "a population of one is always its own worst: {out:?}"
            );
        };
        let mut dropped = 0u64;
        let mut delivered = 0u64;
        for (i, &lost) in drop_mask.iter().enumerate() {
            if lost {
                dropped += 1;
                continue;
            }
            delivered += 1;
            em.observe(1, Some((start + i as u32) % SEQ_MODULUS));
            if let Some(d) = em.poll() {
                ingest(&mut agg, d);
            }
        }
        if let Some(d) = em.flush() {
            ingest(&mut agg, d);
        }

        let s = agg.stats();
        prop_assert_eq!(s.ingested, s.folded + s.accepted + s.deduped + s.foreign);
        prop_assert_eq!(s.deduped, 0, "an in-order emitter never dedups");
        // Every packet fate was folded exactly once: a wrap is invisible
        // (a phantom gap would add ~16M observations; a missed gap would
        // lose `dropped`).
        prop_assert_eq!(s.observations, delivered + dropped);
        // The tracked cumulative loss fraction matches ground truth.
        let expect = dropped as f64 / (delivered + dropped) as f64;
        let got = agg.summary().worst_loss;
        prop_assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    /// However the return channel mangles per-receiver digest streams
    /// (drop / duplicate / reorder), the aggregator's estimator equals a
    /// clean replay of exactly the worst receiver's accepted digests.
    #[test]
    fn impaired_population_equals_worst_receiver_replay(
        clean_receivers in 1usize..5,
        count in 4u32..14,
        loss_burst in 1u32..8,
        calm_run in 30u32..150,
        copies in proptest::collection::vec(0u8..3, 14 * 5),
        shuffle_keys in proptest::collection::vec(any::<u64>(), 96),
    ) {
        let worst_src = addr(1);
        let worst: Vec<ReceptionReport> = (1..=count)
            .map(|seq| worst_digest(seq, loss_burst, calm_run))
            .collect();

        // Pool every digest after the worst receiver's first (which
        // seeds the comparison), impair, and shuffle deterministically.
        let mut pool: Vec<(u64, u16, ReceptionReport)> = Vec::new();
        let mut key_idx = 0usize;
        let push = |pool: &mut Vec<(u64, u16, ReceptionReport)>,
                        key_idx: &mut usize,
                        rx: u16,
                        d: &ReceptionReport| {
            let copies_here = copies[*key_idx % copies.len()];
            for _ in 0..copies_here {
                let key = shuffle_keys[*key_idx % shuffle_keys.len()];
                *key_idx += 1;
                pool.push((key, rx, d.clone()));
            }
            *key_idx += 1;
        };
        for d in worst.iter().skip(1) {
            push(&mut pool, &mut key_idx, 1, d);
        }
        for rx in 0..clean_receivers as u16 {
            for seq in 1..=count {
                push(&mut pool, &mut key_idx, rx + 2, &clean_digest(seq, calm_run));
            }
        }
        pool.sort_by_key(|(k, _, _)| *k);

        let mut agg = aggregator();
        prop_assert!(matches!(
            agg.ingest(worst_src, &worst[0]),
            AggregateOutcome::Folded { .. }
        ));
        // Worst's accepted subset: the strictly increasing report_seq
        // subsequence of its delivered digests, starting from digest 1.
        let mut accepted: Vec<u32> = vec![1];
        for (_, rx, d) in &pool {
            let out = agg.ingest(addr(*rx), d);
            if *rx == 1 {
                if d.report_seq > *accepted.last().unwrap_or(&0) {
                    accepted.push(d.report_seq);
                    prop_assert!(
                        matches!(out, AggregateOutcome::Folded { .. }),
                        "a fresh digest from the incumbent worst folds"
                    );
                } else {
                    prop_assert_eq!(out, AggregateOutcome::Deduped);
                }
            } else {
                // Loss-free receivers never beat a lossy incumbent.
                prop_assert!(
                    !matches!(out, AggregateOutcome::Folded { .. }),
                    "clean receiver must not fold: {out:?}"
                );
            }
        }
        prop_assert_eq!(agg.worst_receiver(), Some(worst_src));
        prop_assert_eq!(agg.stats().folded, accepted.len() as u64);
        prop_assert_eq!(
            agg.receiver_count(),
            1 + pool
                .iter()
                .map(|(_, rx, _)| rx)
                .filter(|&&rx| rx != 1)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );

        // The ground-truth replay: exactly the accepted worst digests,
        // in order, through a fresh single-stream controller.
        let mut replay = AdaptiveController::new(ControllerConfig::default());
        for seq in &accepted {
            replay.observe_runs(worst[(*seq - 1) as usize].run_pairs());
        }
        prop_assert_eq!(
            agg.controller().estimator().counts(),
            replay.estimator().counts()
        );
        prop_assert_eq!(
            agg.controller().estimator().window_len(),
            replay.estimator().window_len()
        );

        let s = agg.stats();
        prop_assert_eq!(s.ingested, s.folded + s.accepted + s.deduped + s.foreign);
    }
}
