//! Property tests for the feedback channel under impairment.
//!
//! The reception-report return channel is plain UDP, so digests can be
//! **dropped, duplicated, and reordered** arbitrarily. These properties
//! pin the two guarantees the live loop depends on:
//!
//! 1. the estimator state after any impaired delivery equals the state
//!    after the in-order delivery of exactly the digest subset the loop
//!    accepted (no double counting, no out-of-order corruption), and
//! 2. re-planning never stalls: as long as *any* digest stream keeps
//!    arriving, the controller keeps producing estimates and plans.
//!
//! The digest wire format itself is fuzzed for parse robustness too.

use fec_adapt::{ControllerConfig, Reconsideration};
use fec_flute::feedback::{
    FeedbackLoop, LossRun, NackEntry, ReceptionReport, ReportEntry, ReportOutcome,
};
use proptest::prelude::*;

/// A plausible digest stream: `count` digests with ~1–20% loss sketches.
fn digest_stream(count: u32, loss_burst: u32, calm_run: u32) -> Vec<ReceptionReport> {
    (1..=count)
        .map(|seq| ReceptionReport {
            tsi: 7,
            report_seq: seq,
            highest_seq: Some(seq * 128 % (1 << 24)),
            session_complete: false,
            truncated: false,
            entries: vec![ReportEntry {
                toi: 1,
                received: seq * 100,
                lost: seq * loss_burst,
                complete: false,
            }],
            runs: vec![
                LossRun {
                    lost: false,
                    len: calm_run,
                },
                LossRun {
                    lost: true,
                    len: loss_burst,
                },
                LossRun {
                    lost: false,
                    len: calm_run,
                },
            ],
            nacks: vec![],
        })
        .collect()
}

/// Applies an impairment script to a digest stream: per original digest, a
/// delivery count (0 = dropped, >1 = duplicated) and a shuffle key.
fn impair(
    digests: &[ReceptionReport],
    copies: &[u8],
    shuffle_keys: &[u64],
) -> Vec<ReceptionReport> {
    let mut delivered: Vec<(u64, ReceptionReport)> = Vec::new();
    let mut key_idx = 0usize;
    for (d, &n) in digests.iter().zip(copies) {
        for _ in 0..n {
            let key = shuffle_keys[key_idx % shuffle_keys.len()];
            key_idx += 1;
            delivered.push((key, d.clone()));
        }
    }
    delivered.sort_by_key(|(k, _)| *k);
    delivered.into_iter().map(|(_, d)| d).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Impaired delivery leaves the estimator in the same state as the
    /// in-order delivery of the accepted subset, and never panics.
    #[test]
    fn impairment_cannot_corrupt_estimator_state(
        copies in proptest::collection::vec(0u8..4, 12),
        shuffle_keys in proptest::collection::vec(any::<u64>(), 48),
        loss_burst in 1u32..8,
        calm_run in 20u32..120,
    ) {
        let digests = digest_stream(12, loss_burst, calm_run);
        let delivered = impair(&digests, &copies, &shuffle_keys);

        let mut impaired = FeedbackLoop::new(7, ControllerConfig::default());
        let mut accepted_seqs = Vec::new();
        for d in &delivered {
            // Through the wire: serialization must never drop fidelity.
            let outcome = impaired.ingest_datagram(&d.to_bytes().unwrap()).unwrap();
            if matches!(outcome, ReportOutcome::Applied { .. }) {
                accepted_seqs.push(d.report_seq);
            }
        }

        // The accepted subset is strictly increasing by construction…
        prop_assert!(accepted_seqs.windows(2).all(|w| w[0] < w[1]));
        // …and a clean loop fed exactly that subset in order agrees on
        // every piece of estimator state.
        let mut clean = FeedbackLoop::new(7, ControllerConfig::default());
        for seq in &accepted_seqs {
            let d = &digests[(*seq - 1) as usize];
            prop_assert!(matches!(clean.ingest(d), ReportOutcome::Applied { .. }));
        }
        prop_assert_eq!(
            impaired.controller().estimator().counts(),
            clean.controller().estimator().counts()
        );
        prop_assert_eq!(
            impaired.controller().estimator().window_len(),
            clean.controller().estimator().window_len()
        );
        prop_assert_eq!(impaired.stats().observations, clean.stats().observations);
        // Duplicates were all rejected: applied count never exceeds the
        // number of distinct digests.
        prop_assert!(impaired.stats().applied <= digests.len() as u64);
    }

    /// However many digests the channel eats, the loop keeps planning as
    /// soon as enough observations got through — and a freshly arriving
    /// digest after a blackout revives it immediately.
    #[test]
    fn replanning_never_stalls(
        copies in proptest::collection::vec(0u8..3, 20),
        shuffle_keys in proptest::collection::vec(any::<u64>(), 60),
    ) {
        let digests = digest_stream(20, 2, 120); // ~1.6% loss, 244 obs each
        let delivered = impair(&digests, &copies, &shuffle_keys);
        let config = ControllerConfig {
            min_observations: 200,
            confirm_after: 1,
            ..ControllerConfig::default()
        };
        let mut fb = FeedbackLoop::new(7, config);
        for d in &delivered {
            fb.ingest(d);
        }
        // Blackout recovery: one final in-order digest always lands.
        let mut last = digests.last().unwrap().clone();
        last.report_seq = 1000;
        prop_assert!(matches!(fb.ingest(&last), ReportOutcome::Applied { .. }));

        let replan = fb.replan(10_000);
        prop_assert_ne!(replan.reconsideration, Reconsideration::NoEstimate);
        prop_assert!(
            replan.plan.is_some(),
            "light channel with {} observations must plan",
            fb.stats().observations
        );
    }

    /// Parsing arbitrary bytes never panics, and every structurally valid
    /// digest roundtrips bit-exactly.
    #[test]
    fn wire_fuzz_and_roundtrip(
        junk in proptest::collection::vec(any::<u8>(), 0..200),
        tsi in any::<u32>(),
        report_seq in any::<u32>(),
        highest_some in any::<bool>(),
        highest_val in 0u32..(1 << 24),
        fin in any::<bool>(),
        truncated in any::<bool>(),
        entries in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()),
            0..6
        ),
        runs in proptest::collection::vec(
            (any::<bool>(), 1u32..(1 << 31)),
            0..10
        ),
        nacks in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), proptest::collection::vec(any::<u32>(), 1..8)),
            0..4
        ),
    ) {
        let _ = ReceptionReport::from_bytes(&junk); // must not panic
        let report = ReceptionReport {
            tsi,
            report_seq,
            highest_seq: highest_some.then_some(highest_val),
            session_complete: fin,
            truncated,
            entries: entries
                .into_iter()
                .map(|(toi, received, lost, complete)| ReportEntry {
                    toi,
                    received,
                    lost,
                    complete,
                })
                .collect(),
            runs: runs
                .into_iter()
                .map(|(lost, len)| LossRun { lost, len })
                .collect(),
            nacks: nacks
                .into_iter()
                .map(|(toi, block, esis)| NackEntry { toi, block, esis })
                .collect(),
        };
        let wire = report.to_bytes().unwrap();
        prop_assert_eq!(ReceptionReport::from_bytes(&wire).unwrap(), report);
    }
}
