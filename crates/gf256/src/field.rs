//! The GF(2^8) field element type.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{EXP, INV, LOG, MUL};

/// An element of GF(2^8) over the primitive polynomial `0x11D`.
///
/// The wrapped byte is the polynomial representation, so conversions to and
/// from wire bytes are free. Addition and subtraction are both XOR;
/// multiplication and division go through compile-time tables.
///
/// ```
/// use fec_gf256::Gf256;
/// let a = Gf256(0x57);
/// let b = Gf256(0x13);
/// assert_eq!(a + b, Gf256(0x57 ^ 0x13));
/// assert_eq!((a * b) / b, a);
/// assert_eq!(a - a, Gf256::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The field generator `alpha = 2`.
    pub const ALPHA: Gf256 = Gf256(2);

    /// Returns `alpha^i` (exponent taken modulo 255).
    #[inline]
    pub fn alpha_pow(i: usize) -> Gf256 {
        Gf256(EXP[i % 255])
    }

    /// Returns the discrete logarithm base `alpha`, or `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG[self.0 as usize] as u8)
        }
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero (division by zero is a caller bug, as in integer
    /// arithmetic).
    #[inline]
    pub fn inv(self) -> Gf256 {
        assert!(self.0 != 0, "inverse of zero in GF(2^8)");
        Gf256(INV[self.0 as usize])
    }

    /// Raises `self` to the power `e` (with the convention `0^0 = 1`).
    pub fn pow(self, mut e: u32) -> Gf256 {
        if e == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        // log-domain: (alpha^l)^e = alpha^(l*e mod 255)
        let l = LOG[self.0 as usize] as u64;
        e %= 255; // x^255 = 1 for non-zero x
        if e == 0 {
            return Gf256::ONE;
        }
        Gf256(EXP[((l * e as u64) % 255) as usize])
    }

    /// True if this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(v: Gf256) -> Self {
        v.0
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // XOR/log-table arithmetic IS the field operation
impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // XOR/log-table arithmetic IS the field operation
impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(MUL[self.0 as usize][rhs.0 as usize])
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // XOR/log-table arithmetic IS the field operation
impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        self * rhs.inv()
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn any_gf() -> impl Strategy<Value = Gf256> {
        any::<u8>().prop_map(Gf256)
    }

    fn nonzero_gf() -> impl Strategy<Value = Gf256> {
        (1u8..=255).prop_map(Gf256)
    }

    proptest! {
        #[test]
        fn addition_is_commutative_and_associative(a in any_gf(), b in any_gf(), c in any_gf()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn multiplication_is_commutative_and_associative(a in any_gf(), b in any_gf(), c in any_gf()) {
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributivity(a in any_gf(), b in any_gf(), c in any_gf()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn additive_identity_and_inverse(a in any_gf()) {
            prop_assert_eq!(a + Gf256::ZERO, a);
            prop_assert_eq!(a + a, Gf256::ZERO); // char 2: every element is its own negation
            prop_assert_eq!(-a, a);
        }

        #[test]
        fn multiplicative_identity_and_inverse(a in nonzero_gf()) {
            prop_assert_eq!(a * Gf256::ONE, a);
            prop_assert_eq!(a * a.inv(), Gf256::ONE);
            prop_assert_eq!(a / a, Gf256::ONE);
        }

        #[test]
        fn division_is_inverse_of_multiplication(a in any_gf(), b in nonzero_gf()) {
            prop_assert_eq!((a * b) / b, a);
            prop_assert_eq!((a / b) * b, a);
        }

        #[test]
        fn pow_matches_repeated_multiplication(a in any_gf(), e in 0u32..600) {
            let mut acc = Gf256::ONE;
            for _ in 0..e {
                acc *= a;
            }
            prop_assert_eq!(a.pow(e), acc);
        }

        #[test]
        fn sub_is_add(a in any_gf(), b in any_gf()) {
            prop_assert_eq!(a - b, a + b);
        }
    }

    #[test]
    fn fermat_little_theorem() {
        for x in 1..=255u8 {
            assert_eq!(Gf256(x).pow(255), Gf256::ONE);
        }
    }

    #[test]
    fn alpha_pow_wraps() {
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(256), Gf256::ALPHA);
        assert_eq!(Gf256::alpha_pow(1), Gf256::ALPHA);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inverse_of_zero_panics() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn sum_and_product_folds() {
        let xs = [Gf256(1), Gf256(2), Gf256(3)];
        assert_eq!(xs.iter().copied().sum::<Gf256>(), Gf256(1 ^ 2 ^ 3));
        assert_eq!(
            xs.iter().copied().product::<Gf256>(),
            Gf256(1) * Gf256(2) * Gf256(3)
        );
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Gf256(0xAB)), "ab");
        assert_eq!(format!("{:?}", Gf256(0x0F)), "Gf256(0x0f)");
    }

    #[test]
    fn log_of_zero_is_none() {
        assert_eq!(Gf256::ZERO.log(), None);
        assert_eq!(Gf256::ONE.log(), Some(0));
        assert_eq!(Gf256::ALPHA.log(), Some(1));
    }
}
