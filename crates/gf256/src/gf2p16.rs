//! GF(2^16): the extension field the paper decides *against* (§2.2).
//!
//! The paper keeps Reed-Solomon on GF(2^8) — capping blocks at `n ≤ 255`
//! packets and paying the coupon-collector penalty — because GF(2^16)
//! arithmetic has "a huge encoding/decoding time". This module exists to
//! put numbers on that sentence: `fec-rse`'s [`Rse16Codec`] builds a
//! single-block MDS code over this field (no blocking, no coupon
//! collector), and the `ablation_gf216` bench measures both sides of the
//! trade.
//!
//! [`Rse16Codec`]: ../../fec_rse/struct.Rse16Codec.html
//!
//! Unlike [`crate::Gf256`], whose 64 KiB multiplication table is baked in
//! at compile time, GF(2^16) would need 8 GiB for the same trick — exactly
//! the cost asymmetry the paper is talking about. Multiplication here goes
//! through runtime-initialised log/exp tables (384 KiB, built once behind a
//! `OnceLock`), so every product pays two lookups, an add, and a branch.
//!
//! The primitive polynomial is `x^16 + x^12 + x^3 + x + 1` (`0x1100B`),
//! the standard choice (CCSDS, DVB).

use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Sub, SubAssign};
use std::sync::OnceLock;

/// Number of elements in the field (2^16).
pub const FIELD16_SIZE: usize = 1 << 16;

/// Multiplicative order: every non-zero element satisfies `x^65535 = 1`.
/// This bounds the block length of a GF(2^16) Reed-Solomon code.
pub const MUL16_ORDER: usize = FIELD16_SIZE - 1;

const POLY: u32 = 0x1100B;

struct Tables {
    /// `exp[i] = alpha^i` for `i` in `0..2 * 65535` (doubled so a log sum
    /// never needs a modulo).
    exp: Vec<u16>,
    /// `log[x]` for `x != 0`; `log[0]` is a poisoned 0 never read.
    log: Vec<u16>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * MUL16_ORDER];
        let mut log = vec![0u16; FIELD16_SIZE];
        let mut x: u32 = 1;
        for i in 0..MUL16_ORDER {
            exp[i] = x as u16;
            exp[i + MUL16_ORDER] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x1_0000 != 0 {
                x ^= POLY;
            }
        }
        debug_assert_eq!(x, 1, "alpha must have order 65535 (primitive poly)");
        Tables { exp, log }
    })
}

/// An element of GF(2^16) over `0x1100B`.
///
/// ```
/// use fec_gf256::Gf2p16;
/// let a = Gf2p16(0x1234);
/// let b = Gf2p16(0x0057);
/// assert_eq!((a * b) / b, a);
/// assert_eq!(a + a, Gf2p16::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
#[repr(transparent)] // the kernel layer reinterprets symbol slices as bytes
pub struct Gf2p16(pub u16);

impl Gf2p16 {
    /// The additive identity.
    pub const ZERO: Gf2p16 = Gf2p16(0);
    /// The multiplicative identity.
    pub const ONE: Gf2p16 = Gf2p16(1);
    /// The field generator `alpha = 2`.
    pub const ALPHA: Gf2p16 = Gf2p16(2);

    /// Returns `alpha^i` (exponent taken modulo 65535).
    #[inline]
    pub fn alpha_pow(i: usize) -> Gf2p16 {
        Gf2p16(tables().exp[i % MUL16_ORDER])
    }

    /// Discrete log base `alpha`, or `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u16> {
        if self.0 == 0 {
            None
        } else {
            Some(tables().log[self.0 as usize])
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero (an inversion of zero is always a caller bug).
    #[inline]
    pub fn inv(self) -> Gf2p16 {
        let l = self.log().expect("inverse of zero");
        Gf2p16(tables().exp[MUL16_ORDER - l as usize])
    }

    /// Exponentiation by squaring-free table walk.
    pub fn pow(self, e: u32) -> Gf2p16 {
        if self.0 == 0 {
            return if e == 0 { Gf2p16::ONE } else { Gf2p16::ZERO };
        }
        let l = tables().log[self.0 as usize] as u64;
        Gf2p16(tables().exp[((l * e as u64) % MUL16_ORDER as u64) as usize])
    }

    /// True for the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // XOR IS field addition in GF(2^16)
impl Add for Gf2p16 {
    type Output = Gf2p16;
    #[inline]
    fn add(self, rhs: Gf2p16) -> Gf2p16 {
        Gf2p16(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // XOR IS field addition in GF(2^16)
impl Sub for Gf2p16 {
    type Output = Gf2p16;
    #[inline]
    fn sub(self, rhs: Gf2p16) -> Gf2p16 {
        Gf2p16(self.0 ^ rhs.0)
    }
}

impl Mul for Gf2p16 {
    type Output = Gf2p16;
    #[inline]
    fn mul(self, rhs: Gf2p16) -> Gf2p16 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf2p16::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf2p16(t.exp[idx])
    }
}

impl Div for Gf2p16 {
    type Output = Gf2p16;
    #[inline]
    fn div(self, rhs: Gf2p16) -> Gf2p16 {
        let rl = rhs.log().expect("division by zero") as usize;
        if self.0 == 0 {
            return Gf2p16::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + MUL16_ORDER - rl;
        Gf2p16(t.exp[idx])
    }
}

impl AddAssign for Gf2p16 {
    fn add_assign(&mut self, rhs: Gf2p16) {
        *self = *self + rhs;
    }
}
impl SubAssign for Gf2p16 {
    fn sub_assign(&mut self, rhs: Gf2p16) {
        *self = *self - rhs;
    }
}
impl MulAssign for Gf2p16 {
    fn mul_assign(&mut self, rhs: Gf2p16) {
        *self = *self * rhs;
    }
}
impl DivAssign for Gf2p16 {
    fn div_assign(&mut self, rhs: Gf2p16) {
        *self = *self / rhs;
    }
}

impl fmt::Debug for Gf2p16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2p16(0x{:04X})", self.0)
    }
}

impl fmt::Display for Gf2p16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04X}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Symbol kernels: symbols are &[u16] (the codec converts wire bytes).
// ---------------------------------------------------------------------------

/// `dst[i] ^= c * src[i]` over GF(2^16) symbols, dispatched through the
/// active [`crate::kernels`] backend (the `c = 1` fast path rides the wide
/// byte-XOR kernels; general coefficients stay log/exp-table-bound on every
/// backend — GF(2^16) lacks a compile-time product table, which is exactly
/// the cost asymmetry this module exists to measure).
pub fn addmul_slice16(dst: &mut [Gf2p16], src: &[Gf2p16], c: Gf2p16) {
    crate::kernels::active().addmul_slice16(dst, src, c);
}

/// The scalar general-coefficient kernel every backend's `addmul16` vtable
/// entry points at. The caller guarantees equal lengths and `c ∉ {0, 1}`.
pub(crate) fn addmul16_scalar(dst: &mut [Gf2p16], src: &[Gf2p16], c: Gf2p16) {
    debug_assert!(!c.is_zero() && c != Gf2p16::ONE);
    // Hoist the log of c; each element still pays a log + exp lookup —
    // this is the slowness the paper cites, measured in `speed_codecs`.
    let t = tables();
    let cl = t.log[c.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if s.0 != 0 {
            d.0 ^= t.exp[cl + t.log[s.0 as usize] as usize];
        }
    }
}

/// `out = Σ coeffs[j] * symbols[j]` over GF(2^16).
pub fn dot_product16(out: &mut [Gf2p16], coeffs: &[Gf2p16], symbols: &[&[Gf2p16]]) {
    assert_eq!(coeffs.len(), symbols.len(), "one coefficient per symbol");
    out.fill(Gf2p16::ZERO);
    for (&c, &sym) in coeffs.iter().zip(symbols) {
        addmul_slice16(out, sym, c);
    }
}

// ---------------------------------------------------------------------------
// Dense matrix over GF(2^16) (the small subset Rse16Codec needs).
// ---------------------------------------------------------------------------

/// A dense row-major matrix over GF(2^16) with the operations a systematic
/// Vandermonde RSE codec needs: construction, row selection, multiplication
/// and Gauss-Jordan inversion.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix16 {
    rows: usize,
    cols: usize,
    data: Vec<Gf2p16>,
}

impl Matrix16 {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix16 {
        Matrix16 {
            rows,
            cols,
            data: vec![Gf2p16::ZERO; rows * cols],
        }
    }

    /// The `rows × cols` Vandermonde matrix `V[i][j] = (alpha^i)^j`.
    ///
    /// # Panics
    /// Panics if `rows > 65535` (evaluation points stop being distinct).
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix16 {
        assert!(rows <= MUL16_ORDER, "at most 65535 distinct points");
        let mut m = Matrix16::zero(rows, cols);
        for i in 0..rows {
            let x = Gf2p16::alpha_pow(i);
            let mut acc = Gf2p16::ONE;
            for j in 0..cols {
                m.data[i * cols + j] = acc;
                acc *= x;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i`.
    pub fn row(&self, i: usize) -> &[Gf2p16] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> Gf2p16 {
        self.data[i * self.cols + j]
    }

    /// Sets an element.
    pub fn set(&mut self, i: usize, j: usize, v: Gf2p16) {
        self.data[i * self.cols + j] = v;
    }

    /// A new matrix from the given rows of this one.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix16 {
        let mut m = Matrix16::zero(rows.len(), self.cols);
        for (ri, &r) in rows.iter().enumerate() {
            m.data[ri * self.cols..(ri + 1) * self.cols].copy_from_slice(self.row(r));
        }
        m
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch (caller bug, not data).
    pub fn mul(&self, rhs: &Matrix16) -> Matrix16 {
        assert_eq!(self.cols, rhs.rows, "shape mismatch");
        let mut out = Matrix16::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.get(i, j) + a * rhs.get(l, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Gauss-Jordan inverse, or `None` if singular. Cubic — the cost the
    /// paper warns about, since a GF(2^16) decode inverts a `k × k` block.
    pub fn inverted(&self) -> Option<Matrix16> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix16::zero(n, n);
        for i in 0..n {
            inv.set(i, i, Gf2p16::ONE);
        }
        for col in 0..n {
            let pivot = (col..n).find(|&r| !a.get(r, col).is_zero())?;
            if pivot != col {
                for j in 0..n {
                    let (x, y) = (a.get(pivot, j), a.get(col, j));
                    a.set(pivot, j, y);
                    a.set(col, j, x);
                    let (x, y) = (inv.get(pivot, j), inv.get(col, j));
                    inv.set(pivot, j, y);
                    inv.set(col, j, x);
                }
            }
            let p_inv = a.get(col, col).inv();
            for j in 0..n {
                a.set(col, j, a.get(col, j) * p_inv);
                inv.set(col, j, inv.get(col, j) * p_inv);
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                for j in 0..n {
                    let v = a.get(r, j) + factor * a.get(col, j);
                    a.set(r, j, v);
                    let v = inv.get(r, j) + factor * inv.get(col, j);
                    inv.set(r, j, v);
                }
            }
        }
        Some(inv)
    }
}

impl fmt::Debug for Matrix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix16({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_generation_is_consistent() {
        let t = tables();
        // alpha is primitive: the exp table visits every non-zero element.
        assert_eq!(t.exp[0], 1);
        assert_eq!(t.exp[MUL16_ORDER - 1], Gf2p16::ALPHA.inv().0);
        // log/exp are inverse bijections.
        for x in 1u32..=20 {
            let e = Gf2p16(x as u16);
            assert_eq!(Gf2p16::alpha_pow(e.log().unwrap() as usize), e);
        }
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Gf2p16(0x1234);
        let b = Gf2p16(0xABCD);
        let c = Gf2p16(0x00FF);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a * Gf2p16::ONE, a);
        assert_eq!(a + Gf2p16::ZERO, a);
        assert_eq!(a * a.inv(), Gf2p16::ONE);
        assert_eq!(a - a, Gf2p16::ZERO);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Gf2p16(0x0BAD);
        let mut acc = Gf2p16::ONE;
        for e in 0..20u32 {
            assert_eq!(a.pow(e), acc, "exponent {e}");
            acc *= a;
        }
        assert_eq!(a.pow(MUL16_ORDER as u32), Gf2p16::ONE, "Fermat");
        assert_eq!(Gf2p16::ZERO.pow(0), Gf2p16::ONE);
        assert_eq!(Gf2p16::ZERO.pow(5), Gf2p16::ZERO);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_inverse_panics() {
        let _ = Gf2p16::ZERO.inv();
    }

    #[test]
    fn addmul_kernel_matches_scalar_ops() {
        let src: Vec<Gf2p16> = (0..32u16).map(|i| Gf2p16(i * 2049 + 1)).collect();
        let mut dst: Vec<Gf2p16> = (0..32u16).map(|i| Gf2p16(i * 777)).collect();
        let expect: Vec<Gf2p16> = dst
            .iter()
            .zip(&src)
            .map(|(&d, &s)| d + s * Gf2p16(0x1357))
            .collect();
        addmul_slice16(&mut dst, &src, Gf2p16(0x1357));
        assert_eq!(dst, expect);
        // c = 0 and c = 1 fast paths.
        let snapshot = dst.clone();
        addmul_slice16(&mut dst, &src, Gf2p16::ZERO);
        assert_eq!(dst, snapshot);
        let expect: Vec<Gf2p16> = dst.iter().zip(&src).map(|(&d, &s)| d + s).collect();
        addmul_slice16(&mut dst, &src, Gf2p16::ONE);
        assert_eq!(dst, expect);
    }

    #[test]
    fn vandermonde_shape_and_values() {
        let v = Matrix16::vandermonde(5, 3);
        for i in 0..5 {
            assert_eq!(v.get(i, 0), Gf2p16::ONE);
            assert_eq!(v.get(i, 1), Gf2p16::alpha_pow(i));
            assert_eq!(v.get(i, 2), Gf2p16::alpha_pow(i) * Gf2p16::alpha_pow(i));
        }
    }

    #[test]
    fn inversion_roundtrip() {
        let v = Matrix16::vandermonde(6, 6);
        let inv = v.inverted().expect("Vandermonde is invertible");
        let prod = v.mul(&inv);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    prod.get(i, j),
                    if i == j { Gf2p16::ONE } else { Gf2p16::ZERO }
                );
            }
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut m = Matrix16::zero(3, 3);
        // Two identical rows.
        for j in 0..3 {
            m.set(0, j, Gf2p16(j as u16 + 1));
            m.set(1, j, Gf2p16(j as u16 + 1));
            m.set(2, j, Gf2p16(j as u16 + 7));
        }
        assert!(m.inverted().is_none());
        assert!(Matrix16::zero(2, 3).inverted().is_none(), "non-square");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Field axioms on arbitrary elements.
        #[test]
        fn axioms_arbitrary(a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
            let (a, b, c) = (Gf2p16(a), Gf2p16(b), Gf2p16(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            if !a.is_zero() {
                prop_assert_eq!(a * a.inv(), Gf2p16::ONE);
                prop_assert_eq!((a * b) / a, b);
            }
        }

        /// Any square Vandermonde sub-matrix on distinct points inverts.
        #[test]
        fn vandermonde_subsets_invert(
            mut rows in proptest::collection::hash_set(0usize..64, 2..8),
        ) {
            let picked: Vec<usize> = {
                let mut v: Vec<usize> = rows.drain().collect();
                v.sort_unstable();
                v
            };
            let v = Matrix16::vandermonde(64, picked.len());
            let sub = v.select_rows(&picked);
            prop_assert!(sub.inverted().is_some());
        }
    }
}
