//! Hot slice kernels: the operations that touch actual packet payloads.
//!
//! Erasure coding spends essentially all of its byte-moving time in two
//! primitives: `dst ^= src` (the only one LDGM ever needs) and
//! `dst ^= c * src` (the Reed-Solomon generator/decoder inner loop). Both are
//! implemented here on raw byte slices, with the XOR path widened to `u64`
//! lanes (safe code only; `chunks_exact` keeps the compiler happy and lets it
//! auto-vectorise further).

use crate::tables::MUL;

/// `dst[i] ^= src[i]` for all `i`.
///
/// This is GF(2^8) (and GF(2)) addition over whole packets — the only payload
/// operation LDGM encoding and decoding performs.
///
/// # Panics
/// Panics if the slices have different lengths (mixed packet sizes are a
/// framing bug upstream).
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "xor_slice: length mismatch ({} vs {})",
        dst.len(),
        src.len()
    );
    const LANE: usize = 8;
    let n = dst.len() / LANE * LANE;
    let (dst_main, dst_tail) = dst.split_at_mut(n);
    let (src_main, src_tail) = src.split_at(n);
    for (d, s) in dst_main
        .chunks_exact_mut(LANE)
        .zip(src_main.chunks_exact(LANE))
    {
        let mut x = u64::from_ne_bytes(d.try_into().expect("exact chunk"));
        x ^= u64::from_ne_bytes(s.try_into().expect("exact chunk"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= s;
    }
}

/// `dst[i] = c * dst[i]` for all `i` (in-place scaling).
pub fn mul_slice(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let row = &MUL[c as usize];
            for d in dst {
                *d = row[*d as usize];
            }
        }
    }
}

/// `dst[i] ^= c * src[i]` for all `i` — the Reed-Solomon workhorse.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn addmul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(
        dst.len(),
        src.len(),
        "addmul_slice: length mismatch ({} vs {})",
        dst.len(),
        src.len()
    );
    match c {
        0 => {}
        1 => xor_slice(dst, src),
        _ => {
            let row = &MUL[c as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= row[*s as usize];
            }
        }
    }
}

/// Dot product of a coefficient row with a set of symbol slices:
/// `out = sum_i coeffs[i] * symbols[i]`.
///
/// `out` is cleared first. Empty input leaves `out` all-zero.
///
/// # Panics
/// Panics if `coeffs` and `symbols` have different lengths, or if any symbol
/// length differs from `out`.
pub fn dot_product(out: &mut [u8], coeffs: &[u8], symbols: &[&[u8]]) {
    assert_eq!(
        coeffs.len(),
        symbols.len(),
        "dot_product: {} coefficients for {} symbols",
        coeffs.len(),
        symbols.len()
    );
    out.fill(0);
    for (&c, s) in coeffs.iter().zip(symbols) {
        addmul_slice(out, s, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;
    use proptest::prelude::*;

    #[test]
    fn xor_slice_basic() {
        let mut a = vec![0xFFu8; 20];
        let b: Vec<u8> = (0..20).collect();
        xor_slice(&mut a, &b);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x, 0xFF ^ i as u8);
        }
    }

    #[test]
    fn xor_slice_empty() {
        let mut a: Vec<u8> = vec![];
        xor_slice(&mut a, &[]);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_slice_length_mismatch_panics() {
        let mut a = [0u8; 3];
        xor_slice(&mut a, &[0u8; 4]);
    }

    #[test]
    fn mul_slice_special_cases() {
        let mut a = vec![1u8, 2, 3, 0xFF];
        mul_slice(&mut a, 1);
        assert_eq!(a, vec![1, 2, 3, 0xFF]);
        mul_slice(&mut a, 0);
        assert_eq!(a, vec![0, 0, 0, 0]);
    }

    #[test]
    fn addmul_with_zero_is_noop() {
        let mut a = vec![5u8; 9];
        addmul_slice(&mut a, &[7u8; 9], 0);
        assert_eq!(a, vec![5u8; 9]);
    }

    proptest! {
        /// The widened XOR path must agree with the scalar definition for all
        /// lengths, including ragged tails.
        #[test]
        fn xor_slice_matches_scalar(mut dst in proptest::collection::vec(any::<u8>(), 0..70),
                                    seed in any::<u64>()) {
            let src: Vec<u8> = (0..dst.len())
                .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
                .collect();
            let expect: Vec<u8> = dst.iter().zip(&src).map(|(a, b)| a ^ b).collect();
            xor_slice(&mut dst, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn addmul_matches_field_arithmetic(mut dst in proptest::collection::vec(any::<u8>(), 0..70),
                                           c in any::<u8>(),
                                           seed in any::<u64>()) {
            let src: Vec<u8> = (0..dst.len())
                .map(|i| (seed.wrapping_mul(i as u64 + 3) >> 7) as u8)
                .collect();
            let expect: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| (Gf256(d) + Gf256(c) * Gf256(s)).0)
                .collect();
            addmul_slice(&mut dst, &src, c);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn mul_slice_matches_field_arithmetic(mut dst in proptest::collection::vec(any::<u8>(), 0..70),
                                              c in any::<u8>()) {
            let expect: Vec<u8> = dst.iter().map(|&d| (Gf256(c) * Gf256(d)).0).collect();
            mul_slice(&mut dst, c);
            prop_assert_eq!(dst, expect);
        }

        /// addmul twice with the same coefficient cancels (characteristic 2).
        #[test]
        fn addmul_is_involutive(orig in proptest::collection::vec(any::<u8>(), 1..70),
                                c in any::<u8>(),
                                seed in any::<u64>()) {
            let src: Vec<u8> = (0..orig.len())
                .map(|i| (seed.wrapping_mul(i as u64 + 11) >> 5) as u8)
                .collect();
            let mut dst = orig.clone();
            addmul_slice(&mut dst, &src, c);
            addmul_slice(&mut dst, &src, c);
            prop_assert_eq!(dst, orig);
        }
    }

    #[test]
    fn dot_product_is_linear_combination() {
        let s1 = [1u8, 0, 0];
        let s2 = [0u8, 1, 0];
        let s3 = [0u8, 0, 1];
        let mut out = [0u8; 3];
        dot_product(&mut out, &[3, 5, 7], &[&s1, &s2, &s3]);
        assert_eq!(out, [3, 5, 7]);
    }

    #[test]
    fn dot_product_empty_clears_out() {
        let mut out = [9u8; 4];
        dot_product(&mut out, &[], &[]);
        assert_eq!(out, [0u8; 4]);
    }
}
