//! Hot slice kernels: the operations that touch actual packet payloads.
//!
//! Erasure coding spends essentially all of its byte-moving time in two
//! primitives: `dst ^= src` (the only one LDGM ever needs) and
//! `dst ^= c * src` (the Reed-Solomon generator/decoder inner loop). Both
//! are implemented here on raw byte slices, behind a runtime-selected
//! backend:
//!
//! * [`scalar`](self) — the byte-at-a-time reference every other backend
//!   is differentially tested against (`tests/kernel_props.rs`);
//! * `portable` — safe Rust widened to `u64` lanes, available everywhere;
//! * `sse2` / `ssse3` / `avx2` (x86_64) and `neon` (aarch64) —
//!   `std::arch` SIMD, detected once at first use. The GF(2⁸) multiply
//!   kernels use the split-nibble table form (`tables::MUL_NIBBLES`):
//!   one 16-byte shuffle per nibble replaces one table lookup per byte.
//!
//! The active backend is chosen once (best detected wins) and can be
//! overridden with the `FEC_FORCE_KERNEL` environment variable
//! (`scalar`, `portable`, `sse2`, `ssse3`, `avx2`, `neon`) — forcing a
//! backend the host cannot run panics rather than executing illegal
//! instructions. Backend choice can never change decode results: every
//! backend computes byte-identical output, which the differential
//! property tests and the workspace's cross-backend sweep test pin down.
//!
//! Beyond the single-source forms, the fused multi-source kernels
//! [`xor_acc_many`] and [`addmul_acc_many`] apply a whole coefficient row
//! in one pass over the destination, which is what the LDGM encoder and
//! the RSE generator/decoder inner loops actually need: the destination
//! stays in registers instead of being re-streamed once per source.

use std::sync::OnceLock;

use crate::gf2p16::Gf2p16;
use crate::tables::MUL;

mod portable;
mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

/// One kernel backend: a vtable of the payload operations.
///
/// All functions assume the length checks already happened in the public
/// wrappers, and the multiply entries assume the trivial coefficients
/// (`c = 0`, `c = 1`) were peeled off — backends only see the general
/// case. Obtain instances from [`active`] or [`backends`].
pub struct Kernels {
    name: &'static str,
    /// `dst[i] ^= src[i]`.
    xor: fn(dst: &mut [u8], src: &[u8]),
    /// `dst[i] = c * dst[i]`, `c >= 2`.
    mul: fn(dst: &mut [u8], c: u8),
    /// `dst[i] ^= c * src[i]`, `c >= 2`.
    addmul: fn(dst: &mut [u8], src: &[u8], c: u8),
    /// `dst[i] ^= c * src[i]` over GF(2^16), `c` not 0 or 1.
    addmul16: fn(dst: &mut [Gf2p16], src: &[Gf2p16], c: Gf2p16),
    /// `dst[i] ^= srcs[0][i] ^ srcs[1][i] ^ …` in one pass.
    xor_many: fn(dst: &mut [u8], srcs: &[&[u8]]),
    /// `dst[i] ^= Σ_j coeffs[j] * srcs[j][i]` in one pass.
    addmul_many: fn(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]),
}

impl Kernels {
    /// The backend's name (the token `FEC_FORCE_KERNEL` accepts).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `dst[i] ^= src[i]` for all `i`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths (mixed packet sizes are
    /// a framing bug upstream).
    pub fn xor_slice(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(
            dst.len(),
            src.len(),
            "xor_slice: length mismatch ({} vs {})",
            dst.len(),
            src.len()
        );
        (self.xor)(dst, src);
    }

    /// `dst[i] = c * dst[i]` for all `i` (in-place scaling).
    pub fn mul_slice(&self, dst: &mut [u8], c: u8) {
        match c {
            0 => dst.fill(0),
            1 => {}
            _ => (self.mul)(dst, c),
        }
    }

    /// `dst[i] ^= c * src[i]` for all `i` — the Reed-Solomon workhorse.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn addmul_slice(&self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(
            dst.len(),
            src.len(),
            "addmul_slice: length mismatch ({} vs {})",
            dst.len(),
            src.len()
        );
        match c {
            0 => {}
            1 => (self.xor)(dst, src),
            _ => (self.addmul)(dst, src, c),
        }
    }

    /// `dst[i] ^= c * src[i]` over GF(2^16) symbols.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn addmul_slice16(&self, dst: &mut [Gf2p16], src: &[Gf2p16], c: Gf2p16) {
        assert_eq!(dst.len(), src.len(), "symbol length mismatch");
        if c.is_zero() {
            return;
        }
        if c == Gf2p16::ONE {
            // GF(2^16) addition is a plain XOR of the element bytes, so the
            // wide byte kernels apply unchanged.
            (self.xor)(gf16_bytes_mut(dst), gf16_bytes(src));
            return;
        }
        (self.addmul16)(dst, src, c);
    }

    /// `dst[i] ^= srcs[0][i] ^ srcs[1][i] ^ …` — a whole XOR equation row
    /// applied in one pass over `dst`.
    ///
    /// # Panics
    /// Panics if any source length differs from `dst`.
    pub fn xor_acc_many(&self, dst: &mut [u8], srcs: &[&[u8]]) {
        for s in srcs {
            assert_eq!(
                dst.len(),
                s.len(),
                "xor_acc_many: length mismatch ({} vs {})",
                dst.len(),
                s.len()
            );
        }
        match srcs {
            [] => {}
            [one] => (self.xor)(dst, one),
            _ => (self.xor_many)(dst, srcs),
        }
    }

    /// `dst[i] ^= Σ_j coeffs[j] * srcs[j][i]` — a coefficient row of a
    /// generator/decoding matrix applied in one pass over `dst`.
    ///
    /// # Panics
    /// Panics if `coeffs` and `srcs` have different lengths, or if any
    /// source length differs from `dst`.
    pub fn addmul_acc_many(&self, dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
        assert_eq!(
            coeffs.len(),
            srcs.len(),
            "addmul_acc_many: {} coefficients for {} sources",
            coeffs.len(),
            srcs.len()
        );
        for s in srcs {
            assert_eq!(
                dst.len(),
                s.len(),
                "addmul_acc_many: length mismatch ({} vs {})",
                dst.len(),
                s.len()
            );
        }
        match srcs {
            [] => {}
            [one] => self.addmul_slice(dst, one, coeffs[0]),
            _ => (self.addmul_many)(dst, srcs, coeffs),
        }
    }
}

impl core::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Kernels({})", self.name)
    }
}

/// Reinterprets GF(2^16) symbols as raw bytes (for the XOR fast path).
#[allow(unsafe_code)]
fn gf16_bytes_mut(s: &mut [Gf2p16]) -> &mut [u8] {
    let len = core::mem::size_of_val(s);
    // SAFETY: `Gf2p16` is `#[repr(transparent)]` over `u16`, so the slice
    // is exactly `len` initialised bytes with no padding; `u8` has weaker
    // alignment, and the unique borrow transfers to the returned slice.
    unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), len) }
}

/// Shared-borrow variant of [`gf16_bytes_mut`].
#[allow(unsafe_code)]
fn gf16_bytes(s: &[Gf2p16]) -> &[u8] {
    let len = core::mem::size_of_val(s);
    // SAFETY: as in `gf16_bytes_mut`, minus the uniqueness requirement.
    unsafe { core::slice::from_raw_parts(s.as_ptr().cast::<u8>(), len) }
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    xor: scalar::xor,
    mul: scalar::mul,
    addmul: scalar::addmul,
    addmul16: crate::gf2p16::addmul16_scalar,
    xor_many: scalar::xor_many,
    addmul_many: scalar::addmul_many,
};

static PORTABLE: Kernels = Kernels {
    name: "portable",
    xor: portable::xor,
    mul: portable::mul,
    addmul: portable::addmul,
    addmul16: crate::gf2p16::addmul16_scalar,
    xor_many: portable::xor_many,
    addmul_many: portable::addmul_many,
};

/// Every backend this binary can run on this host, worst to best
/// (`scalar` first, the preferred native backend last). Differential
/// tests and the kernel ablation bench iterate this list.
pub fn backends() -> &'static [&'static Kernels] {
    static AVAILABLE: OnceLock<Vec<&'static Kernels>> = OnceLock::new();
    AVAILABLE.get_or_init(|| {
        #[allow(unused_mut)] // mutated only on SIMD-capable architectures
        let mut list: Vec<&'static Kernels> = vec![&SCALAR, &PORTABLE];
        #[cfg(target_arch = "x86_64")]
        x86::append_detected(&mut list);
        #[cfg(target_arch = "aarch64")]
        neon::append_detected(&mut list);
        list
    })
}

/// The backend all payload arithmetic dispatches through: the best
/// detected one, unless `FEC_FORCE_KERNEL` overrides it. Selected once
/// per process.
///
/// # Panics
/// Panics (on first use) if `FEC_FORCE_KERNEL` names a backend this
/// build/host cannot run.
pub fn active() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let available = backends();
        match std::env::var("FEC_FORCE_KERNEL") {
            Ok(name) => {
                let want = name.trim().to_ascii_lowercase();
                *available
                    .iter()
                    .find(|k| k.name == want)
                    .unwrap_or_else(|| {
                        let names: Vec<&str> = available.iter().map(|k| k.name).collect();
                        panic!(
                            "FEC_FORCE_KERNEL={name:?} is not available on this host \
                             (compiled + supported: {names:?})"
                        )
                    })
            }
            Err(_) => available.last().expect("scalar always present"),
        }
    })
}

/// Name of the backend [`active`] resolved to (for reports and benches).
pub fn active_name() -> &'static str {
    active().name()
}

// ---------------------------------------------------------------------------
// The module-level convenience API the rest of the workspace calls.
// ---------------------------------------------------------------------------

/// `dst[i] ^= src[i]` for all `i`, through the active backend.
///
/// This is GF(2^8) (and GF(2)) addition over whole packets — the only
/// payload operation LDGM encoding and decoding performs.
///
/// # Panics
/// Panics if the slices have different lengths (mixed packet sizes are a
/// framing bug upstream).
#[inline]
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    active().xor_slice(dst, src);
}

/// `dst[i] = c * dst[i]` for all `i` (in-place scaling).
#[inline]
pub fn mul_slice(dst: &mut [u8], c: u8) {
    active().mul_slice(dst, c);
}

/// `dst[i] ^= c * src[i]` for all `i` — the Reed-Solomon workhorse.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn addmul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    active().addmul_slice(dst, src, c);
}

/// `dst[i] ^= srcs[0][i] ^ srcs[1][i] ^ …` in one fused pass (the LDGM
/// equation-row operation).
///
/// # Panics
/// Panics if any source length differs from `dst`.
#[inline]
pub fn xor_acc_many(dst: &mut [u8], srcs: &[&[u8]]) {
    active().xor_acc_many(dst, srcs);
}

/// `dst[i] ^= Σ_j coeffs[j] * srcs[j][i]` in one fused pass (the RSE
/// generator/decoding-row operation).
///
/// # Panics
/// Panics if `coeffs` and `srcs` have different lengths, or if any source
/// length differs from `dst`.
#[inline]
pub fn addmul_acc_many(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    active().addmul_acc_many(dst, srcs, coeffs);
}

/// Dot product of a coefficient row with a set of symbol slices:
/// `out = sum_i coeffs[i] * symbols[i]`.
///
/// `out` is cleared first. Empty input leaves `out` all-zero.
///
/// # Panics
/// Panics if `coeffs` and `symbols` have different lengths, or if any symbol
/// length differs from `out`.
pub fn dot_product(out: &mut [u8], coeffs: &[u8], symbols: &[&[u8]]) {
    assert_eq!(
        coeffs.len(),
        symbols.len(),
        "dot_product: {} coefficients for {} symbols",
        coeffs.len(),
        symbols.len()
    );
    out.fill(0);
    active().addmul_acc_many(out, symbols, coeffs);
}

/// Shared tail/reference helper: `dst ^= c * src` one byte at a time via
/// the full multiplication table. Backends use it for sub-register tails.
#[inline]
fn addmul_tail(dst: &mut [u8], src: &[u8], c: u8) {
    let row = &MUL[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;
    use proptest::prelude::*;

    #[test]
    fn backend_roster_is_sane() {
        let list = backends();
        assert!(!list.is_empty());
        assert_eq!(list[0].name(), "scalar");
        assert!(list.iter().any(|k| k.name() == "portable"));
        let mut names: Vec<&str> = list.iter().map(|k| k.name()).collect();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "backend names must be unique");
        // The active backend is always one of the roster (possibly forced).
        assert!(list.iter().any(|k| k.name() == active_name()));
    }

    #[test]
    fn xor_slice_basic() {
        let mut a = vec![0xFFu8; 20];
        let b: Vec<u8> = (0..20).collect();
        xor_slice(&mut a, &b);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x, 0xFF ^ i as u8);
        }
    }

    #[test]
    fn xor_slice_empty() {
        let mut a: Vec<u8> = vec![];
        xor_slice(&mut a, &[]);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_slice_length_mismatch_panics() {
        let mut a = [0u8; 3];
        xor_slice(&mut a, &[0u8; 4]);
    }

    #[test]
    fn mul_slice_special_cases() {
        let mut a = vec![1u8, 2, 3, 0xFF];
        mul_slice(&mut a, 1);
        assert_eq!(a, vec![1, 2, 3, 0xFF]);
        mul_slice(&mut a, 0);
        assert_eq!(a, vec![0, 0, 0, 0]);
    }

    #[test]
    fn addmul_with_zero_is_noop() {
        let mut a = vec![5u8; 9];
        addmul_slice(&mut a, &[7u8; 9], 0);
        assert_eq!(a, vec![5u8; 9]);
    }

    #[test]
    fn xor_acc_many_folds_all_sources() {
        let s1 = [1u8, 2, 4, 8, 16];
        let s2 = [3u8, 3, 3, 3, 3];
        let s3 = [0u8, 1, 0, 1, 0];
        let mut dst = [0xA0u8, 0, 0, 0, 0x0A];
        let expect: Vec<u8> = dst
            .iter()
            .zip(&s1)
            .zip(&s2)
            .zip(&s3)
            .map(|(((d, a), b), c)| d ^ a ^ b ^ c)
            .collect();
        xor_acc_many(&mut dst, &[&s1, &s2, &s3]);
        assert_eq!(dst.to_vec(), expect);
        // Zero sources: identity.
        xor_acc_many(&mut dst, &[]);
        assert_eq!(dst.to_vec(), expect);
    }

    proptest! {
        /// The widened XOR path must agree with the scalar definition for all
        /// lengths, including ragged tails.
        #[test]
        fn xor_slice_matches_scalar(mut dst in proptest::collection::vec(any::<u8>(), 0..70),
                                    seed in any::<u64>()) {
            let src: Vec<u8> = (0..dst.len())
                .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
                .collect();
            let expect: Vec<u8> = dst.iter().zip(&src).map(|(a, b)| a ^ b).collect();
            xor_slice(&mut dst, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn addmul_matches_field_arithmetic(mut dst in proptest::collection::vec(any::<u8>(), 0..70),
                                           c in any::<u8>(),
                                           seed in any::<u64>()) {
            let src: Vec<u8> = (0..dst.len())
                .map(|i| (seed.wrapping_mul(i as u64 + 3) >> 7) as u8)
                .collect();
            let expect: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| (Gf256(d) + Gf256(c) * Gf256(s)).0)
                .collect();
            addmul_slice(&mut dst, &src, c);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn mul_slice_matches_field_arithmetic(mut dst in proptest::collection::vec(any::<u8>(), 0..70),
                                              c in any::<u8>()) {
            let expect: Vec<u8> = dst.iter().map(|&d| (Gf256(c) * Gf256(d)).0).collect();
            mul_slice(&mut dst, c);
            prop_assert_eq!(dst, expect);
        }

        /// addmul twice with the same coefficient cancels (characteristic 2).
        #[test]
        fn addmul_is_involutive(orig in proptest::collection::vec(any::<u8>(), 1..70),
                                c in any::<u8>(),
                                seed in any::<u64>()) {
            let src: Vec<u8> = (0..orig.len())
                .map(|i| (seed.wrapping_mul(i as u64 + 11) >> 5) as u8)
                .collect();
            let mut dst = orig.clone();
            addmul_slice(&mut dst, &src, c);
            addmul_slice(&mut dst, &src, c);
            prop_assert_eq!(dst, orig);
        }

        /// The fused row operation equals the sequence of single addmuls, on
        /// every backend.
        #[test]
        fn addmul_acc_many_matches_sequential(len in 0usize..70,
                                              coeffs in proptest::collection::vec(any::<u8>(), 0..6),
                                              seed in any::<u64>()) {
            let srcs: Vec<Vec<u8>> = (0..coeffs.len())
                .map(|j| (0..len)
                    .map(|i| (seed.wrapping_mul((j * 97 + i) as u64 + 5) >> 9) as u8)
                    .collect())
                .collect();
            let refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
            let init: Vec<u8> = (0..len).map(|i| (seed >> (i % 23)) as u8).collect();
            let mut expect = init.clone();
            for (s, &c) in refs.iter().zip(&coeffs) {
                addmul_tail(&mut expect, s, c);
            }
            for backend in backends() {
                let mut got = init.clone();
                backend.addmul_acc_many(&mut got, &refs, &coeffs);
                prop_assert_eq!(&got, &expect, "backend {}", backend.name());
            }
        }
    }

    #[test]
    fn dot_product_is_linear_combination() {
        let s1 = [1u8, 0, 0];
        let s2 = [0u8, 1, 0];
        let s3 = [0u8, 0, 1];
        let mut out = [0u8; 3];
        dot_product(&mut out, &[3, 5, 7], &[&s1, &s2, &s3]);
        assert_eq!(out, [3, 5, 7]);
    }

    #[test]
    fn dot_product_empty_clears_out() {
        let mut out = [9u8; 4];
        dot_product(&mut out, &[], &[]);
        assert_eq!(out, [0u8; 4]);
    }
}
