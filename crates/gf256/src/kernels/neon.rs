//! aarch64 NEON backend: 16-byte XOR lanes and `vqtbl1q` split-nibble
//! GF(2⁸) multiplies (the `MUL_NIBBLES` halves are exactly one table
//! lookup register each).
//!
//! NEON is part of the aarch64 baseline, but registration still goes
//! through `is_aarch64_feature_detected!` so the roster-containment
//! safety argument reads identically to the x86 module.

#![allow(unsafe_code)]

use std::arch::aarch64::*;
use std::arch::is_aarch64_feature_detected;

use super::Kernels;
use crate::tables::MUL_NIBBLES;

static NEON: Kernels = Kernels {
    name: "neon",
    xor: xor_neon,
    mul: mul_neon,
    addmul: addmul_neon,
    addmul16: crate::gf2p16::addmul16_scalar,
    xor_many: xor_many_neon,
    addmul_many: addmul_many_neon,
};

/// Appends the NEON backend when the host supports it.
pub(super) fn append_detected(list: &mut Vec<&'static Kernels>) {
    if is_aarch64_feature_detected!("neon") {
        list.push(&NEON);
    }
}

fn xor_neon(dst: &mut [u8], src: &[u8]) {
    // SAFETY: this backend is only reachable through the roster, which
    // `append_detected` populates after `is_aarch64_feature_detected!`
    // confirmed NEON support.
    unsafe { xor_neon_impl(dst, src) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `neon`; `dst` and
/// `src` must have equal lengths (the `Kernels` wrappers assert this).
#[target_feature(enable = "neon")]
unsafe fn xor_neon_impl(dst: &mut [u8], src: &[u8]) {
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0;
    while i < n {
        // SAFETY: `i + 16 <= n <= len` for both slices; NEON loads and
        // stores are unaligned-tolerant.
        unsafe {
            let a = vld1q_u8(d.add(i));
            let b = vld1q_u8(s.add(i));
            vst1q_u8(d.add(i), veorq_u8(a, b));
        }
        i += 16;
    }
    for (db, sb) in dst[n..].iter_mut().zip(&src[n..]) {
        *db ^= sb;
    }
}

fn xor_many_neon(dst: &mut [u8], srcs: &[&[u8]]) {
    // SAFETY: roster containment, as in `xor_neon`.
    unsafe { xor_many_neon_impl(dst, srcs) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `neon`; every
/// source must have `dst`'s length (asserted by `Kernels::xor_acc_many`).
#[target_feature(enable = "neon")]
unsafe fn xor_many_neon_impl(dst: &mut [u8], srcs: &[&[u8]]) {
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    let mut i = 0;
    while i < n {
        // SAFETY: `i + 16 <= n`; every source has `dst`'s length
        // (asserted by the `Kernels::xor_acc_many` wrapper).
        unsafe {
            let mut acc = vld1q_u8(d.add(i));
            for s in srcs {
                acc = veorq_u8(acc, vld1q_u8(s.as_ptr().add(i)));
            }
            vst1q_u8(d.add(i), acc);
        }
        i += 16;
    }
    for (j, db) in dst[n..].iter_mut().enumerate() {
        for s in srcs {
            *db ^= s[n + j];
        }
    }
}

/// Multiplies one 16-byte vector by a constant via two table lookups.
///
/// # Safety
/// Caller must be compiled with (and the CPU support) `neon`.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn mul16b(x: uint8x16_t, lo: uint8x16_t, hi: uint8x16_t) -> uint8x16_t {
    // Pure register arithmetic: these intrinsics are safe inside a
    // `#[target_feature(enable = "neon")]` function. `vshrq_n_u8`
    // zero-extends, so no nibble mask is needed on the high half.
    let pl = vqtbl1q_u8(lo, vandq_u8(x, vdupq_n_u8(0x0F)));
    let ph = vqtbl1q_u8(hi, vshrq_n_u8(x, 4));
    veorq_u8(pl, ph)
}

fn addmul_neon(dst: &mut [u8], src: &[u8], c: u8) {
    // SAFETY: roster containment, as in `xor_neon`.
    unsafe { addmul_neon_impl(dst, src, c) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `neon`; `dst` and
/// `src` must have equal lengths (the `Kernels` wrappers assert this).
#[target_feature(enable = "neon")]
unsafe fn addmul_neon_impl(dst: &mut [u8], src: &[u8], c: u8) {
    let tab = MUL_NIBBLES[c as usize].as_ptr();
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    // SAFETY: the nibble table row is 32 bytes (two 16-byte halves);
    // slice bounds as in `xor_neon_impl`.
    unsafe {
        let lo = vld1q_u8(tab);
        let hi = vld1q_u8(tab.add(16));
        let mut i = 0;
        while i < n {
            let x = vld1q_u8(s.add(i));
            let p = mul16b(x, lo, hi);
            vst1q_u8(d.add(i), veorq_u8(vld1q_u8(d.add(i)), p));
            i += 16;
        }
    }
    super::addmul_tail(&mut dst[n..], &src[n..], c);
}

fn mul_neon(dst: &mut [u8], c: u8) {
    // SAFETY: roster containment, as in `xor_neon`.
    unsafe { mul_neon_impl(dst, c) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `neon`.
#[target_feature(enable = "neon")]
unsafe fn mul_neon_impl(dst: &mut [u8], c: u8) {
    let tab = MUL_NIBBLES[c as usize].as_ptr();
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    // SAFETY: as in `addmul_neon_impl`.
    unsafe {
        let lo = vld1q_u8(tab);
        let hi = vld1q_u8(tab.add(16));
        let mut i = 0;
        while i < n {
            let x = vld1q_u8(d.add(i));
            vst1q_u8(d.add(i), mul16b(x, lo, hi));
            i += 16;
        }
    }
    let row = &crate::tables::MUL[c as usize];
    for b in &mut dst[n..] {
        *b = row[*b as usize];
    }
}

fn addmul_many_neon(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    // SAFETY: roster containment, as in `xor_neon`.
    unsafe { addmul_many_neon_impl(dst, srcs, coeffs) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `neon`; every
/// source must have `dst`'s length and `coeffs` must have `srcs`'s
/// length (asserted by `Kernels::addmul_acc_many`).
#[target_feature(enable = "neon")]
unsafe fn addmul_many_neon_impl(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    let n = dst.len() / 64 * 64;
    let d = dst.as_mut_ptr();
    // SAFETY: 64-byte blocks stay inside `n`; sources share `dst`'s
    // length (wrapper assertion).
    unsafe {
        let mut i = 0;
        while i < n {
            let mut a0 = vld1q_u8(d.add(i));
            let mut a1 = vld1q_u8(d.add(i + 16));
            let mut a2 = vld1q_u8(d.add(i + 32));
            let mut a3 = vld1q_u8(d.add(i + 48));
            for (s, &c) in srcs.iter().zip(coeffs) {
                if c == 0 {
                    continue;
                }
                let p = s.as_ptr().add(i);
                let x0 = vld1q_u8(p);
                let x1 = vld1q_u8(p.add(16));
                let x2 = vld1q_u8(p.add(32));
                let x3 = vld1q_u8(p.add(48));
                if c == 1 {
                    a0 = veorq_u8(a0, x0);
                    a1 = veorq_u8(a1, x1);
                    a2 = veorq_u8(a2, x2);
                    a3 = veorq_u8(a3, x3);
                } else {
                    let tab = MUL_NIBBLES[c as usize].as_ptr();
                    let lo = vld1q_u8(tab);
                    let hi = vld1q_u8(tab.add(16));
                    a0 = veorq_u8(a0, mul16b(x0, lo, hi));
                    a1 = veorq_u8(a1, mul16b(x1, lo, hi));
                    a2 = veorq_u8(a2, mul16b(x2, lo, hi));
                    a3 = veorq_u8(a3, mul16b(x3, lo, hi));
                }
            }
            vst1q_u8(d.add(i), a0);
            vst1q_u8(d.add(i + 16), a1);
            vst1q_u8(d.add(i + 32), a2);
            vst1q_u8(d.add(i + 48), a3);
            i += 64;
        }
        for (s, &c) in srcs.iter().zip(coeffs) {
            match c {
                0 => {}
                _ => addmul_neon_impl(&mut dst[n..], &s[n..], c),
            }
        }
    }
}
