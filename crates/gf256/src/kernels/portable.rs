//! The safe `u64`-lane backend: available on every architecture.
//!
//! XOR is widened to eight bytes per operation (`chunks_exact` keeps the
//! bounds checks out of the loop and lets the compiler auto-vectorise
//! further on targets where the dedicated SIMD backends are absent). The
//! multiply kernels stay table-driven — a byte-indexed gather cannot be
//! widened without shuffles — but unroll the lookups and, in the fused
//! variants, keep the destination chunk in a local buffer so it is
//! loaded and stored once per row instead of once per source.

use crate::tables::MUL;

const LANE: usize = 8;

#[inline]
fn lane_split(len: usize) -> usize {
    len / LANE * LANE
}

pub(super) fn xor(dst: &mut [u8], src: &[u8]) {
    let n = lane_split(dst.len());
    let (dst_main, dst_tail) = dst.split_at_mut(n);
    let (src_main, src_tail) = src.split_at(n);
    for (d, s) in dst_main
        .chunks_exact_mut(LANE)
        .zip(src_main.chunks_exact(LANE))
    {
        let mut x = u64::from_ne_bytes(d.try_into().expect("exact chunk"));
        x ^= u64::from_ne_bytes(s.try_into().expect("exact chunk"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= s;
    }
}

pub(super) fn mul(dst: &mut [u8], c: u8) {
    let row = &MUL[c as usize];
    let n = lane_split(dst.len());
    let (main, tail) = dst.split_at_mut(n);
    for d in main.chunks_exact_mut(LANE) {
        for b in d {
            *b = row[*b as usize];
        }
    }
    for b in tail {
        *b = row[*b as usize];
    }
}

pub(super) fn addmul(dst: &mut [u8], src: &[u8], c: u8) {
    let row = &MUL[c as usize];
    let n = lane_split(dst.len());
    let (dst_main, dst_tail) = dst.split_at_mut(n);
    let (src_main, src_tail) = src.split_at(n);
    for (d, s) in dst_main
        .chunks_exact_mut(LANE)
        .zip(src_main.chunks_exact(LANE))
    {
        for (b, x) in d.iter_mut().zip(s) {
            *b ^= row[*x as usize];
        }
    }
    super::addmul_tail(dst_tail, src_tail, c);
}

pub(super) fn xor_many(dst: &mut [u8], srcs: &[&[u8]]) {
    // As with `addmul_many`: without wide registers the fused inner loop
    // costs more in bounds-checked indexing than it saves in `dst`
    // traffic, so each source takes one widened pass.
    for s in srcs {
        xor(dst, s);
    }
}

pub(super) fn addmul_many(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    // Without byte shuffles there is nothing to amortise across sources —
    // the table gathers dominate and a per-chunk accumulator only gets in
    // the optimizer's way — so the portable fused form is the plain
    // source loop over the widened single-source kernels.
    for (s, &c) in srcs.iter().zip(coeffs) {
        match c {
            0 => {}
            1 => xor(dst, s),
            _ => addmul(dst, s, c),
        }
    }
}
