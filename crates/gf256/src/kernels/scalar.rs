//! The byte-at-a-time reference backend.
//!
//! This is the ground truth every other backend is differentially tested
//! against, and the baseline the kernel ablation bench reports speedups
//! over. The XOR loop routes each source byte through
//! [`core::hint::black_box`] so the compiler cannot auto-vectorise it
//! back into SIMD — without the barrier, LLVM turns the "scalar" loop
//! into AVX2 code and the reference stops measuring what a per-byte
//! implementation costs. Multiply kernels need no barrier: their
//! byte-indexed table gathers do not auto-vectorise.

use crate::tables::MUL;

pub(super) fn xor(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= core::hint::black_box(*s);
    }
}

pub(super) fn mul(dst: &mut [u8], c: u8) {
    let row = &MUL[c as usize];
    for d in dst {
        *d = row[*d as usize];
    }
}

pub(super) fn addmul(dst: &mut [u8], src: &[u8], c: u8) {
    super::addmul_tail(dst, src, c);
}

pub(super) fn xor_many(dst: &mut [u8], srcs: &[&[u8]]) {
    for src in srcs {
        xor(dst, src);
    }
}

pub(super) fn addmul_many(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    for (src, &c) in srcs.iter().zip(coeffs) {
        match c {
            0 => {}
            1 => xor(dst, src),
            _ => addmul(dst, src, c),
        }
    }
}
