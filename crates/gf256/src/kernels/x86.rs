//! x86_64 `std::arch` backends: SSE2, SSSE3 and AVX2.
//!
//! * `sse2` — 16-byte XOR lanes only (SSE2 has no byte shuffle, so its
//!   multiply kernels fall back to the portable table loops). Baseline on
//!   every x86_64 CPU; kept as a distinct backend so the shuffle kernels
//!   can be ablated against pure wide-XOR.
//! * `ssse3` — adds `pshufb` split-nibble GF(2⁸) multiplies: each 16-byte
//!   register is multiplied by a constant with two shuffles into the
//!   [`MUL_NIBBLES`] tables instead of sixteen table lookups.
//! * `avx2` — the same shapes on 32-byte registers.
//!
//! Backends are appended to the roster only after
//! `is_x86_feature_detected!` confirms the host supports them, and the
//! `Kernels` statics never leave this module except through that roster —
//! that containment is what every `SAFETY` comment below leans on.

#![allow(unsafe_code)]

use std::arch::x86_64::*;

use super::{portable, Kernels};
use crate::tables::MUL_NIBBLES;

static SSE2: Kernels = Kernels {
    name: "sse2",
    xor: xor_128,
    mul: portable::mul,
    addmul: portable::addmul,
    addmul16: crate::gf2p16::addmul16_scalar,
    xor_many: xor_many_128,
    addmul_many: portable::addmul_many,
};

static SSSE3: Kernels = Kernels {
    name: "ssse3",
    xor: xor_128,
    mul: mul_ssse3,
    addmul: addmul_ssse3,
    addmul16: crate::gf2p16::addmul16_scalar,
    xor_many: xor_many_128,
    addmul_many: addmul_many_ssse3,
};

static AVX2: Kernels = Kernels {
    name: "avx2",
    xor: xor_avx2,
    mul: mul_avx2,
    addmul: addmul_avx2,
    addmul16: crate::gf2p16::addmul16_scalar,
    xor_many: xor_many_avx2,
    addmul_many: addmul_many_avx2,
};

/// Appends every backend this CPU supports, worst to best.
pub(super) fn append_detected(list: &mut Vec<&'static Kernels>) {
    // SSE2 is part of the x86_64 baseline, but go through the detector
    // anyway so all three registrations read (and are audited) the same.
    if is_x86_feature_detected!("sse2") {
        list.push(&SSE2);
    }
    if is_x86_feature_detected!("ssse3") {
        list.push(&SSSE3);
    }
    if is_x86_feature_detected!("avx2") {
        list.push(&AVX2);
    }
}

// ---------------------------------------------------------------------------
// 128-bit lanes (SSE2 XOR, SSSE3 multiplies).
// ---------------------------------------------------------------------------

fn xor_128(dst: &mut [u8], src: &[u8]) {
    // SAFETY: this backend is only reachable through the roster, which
    // `append_detected` populates after `is_x86_feature_detected!("sse2")`
    // confirmed the instructions exist on this CPU.
    unsafe { xor_128_impl(dst, src) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `sse2`; `dst` and
/// `src` must have equal lengths (the `Kernels` wrappers assert this).
#[target_feature(enable = "sse2")]
unsafe fn xor_128_impl(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0;
    while i < n {
        // SAFETY: `i + 16 <= n <= len` for both slices, and `loadu`/`storeu`
        // carry no alignment requirement.
        unsafe {
            let a = _mm_loadu_si128(d.add(i).cast::<__m128i>());
            let b = _mm_loadu_si128(s.add(i).cast::<__m128i>());
            _mm_storeu_si128(d.add(i).cast::<__m128i>(), _mm_xor_si128(a, b));
        }
        i += 16;
    }
    for (db, sb) in dst[n..].iter_mut().zip(&src[n..]) {
        *db ^= sb;
    }
}

fn xor_many_128(dst: &mut [u8], srcs: &[&[u8]]) {
    // SAFETY: roster containment, as in `xor_128`.
    unsafe { xor_many_128_impl(dst, srcs) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `sse2`; every
/// source must have `dst`'s length (asserted by `Kernels::xor_acc_many`).
#[target_feature(enable = "sse2")]
unsafe fn xor_many_128_impl(dst: &mut [u8], srcs: &[&[u8]]) {
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    let mut i = 0;
    while i < n {
        // SAFETY: `i + 16 <= n` and every source has `dst`'s length
        // (asserted by the `Kernels::xor_acc_many` wrapper).
        unsafe {
            let mut acc = _mm_loadu_si128(d.add(i).cast::<__m128i>());
            for s in srcs {
                let v = _mm_loadu_si128(s.as_ptr().add(i).cast::<__m128i>());
                acc = _mm_xor_si128(acc, v);
            }
            _mm_storeu_si128(d.add(i).cast::<__m128i>(), acc);
        }
        i += 16;
    }
    for (j, db) in dst[n..].iter_mut().enumerate() {
        for s in srcs {
            *db ^= s[n + j];
        }
    }
}

/// Multiplies one 16-byte register by a constant via two nibble shuffles.
///
/// # Safety
/// Caller must be compiled with (and the CPU support) `ssse3`.
#[inline]
#[target_feature(enable = "ssse3")]
unsafe fn mul16b(x: __m128i, lo: __m128i, hi: __m128i, mask: __m128i) -> __m128i {
    // Pure register arithmetic: these intrinsics are safe inside a
    // `#[target_feature(enable = "ssse3")]` function.
    let pl = _mm_shuffle_epi8(lo, _mm_and_si128(x, mask));
    let ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    _mm_xor_si128(pl, ph)
}

fn addmul_ssse3(dst: &mut [u8], src: &[u8], c: u8) {
    // SAFETY: roster containment — registered only after
    // `is_x86_feature_detected!("ssse3")` succeeded.
    unsafe { addmul_ssse3_impl(dst, src, c) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `ssse3`; `dst` and
/// `src` must have equal lengths (the `Kernels` wrappers assert this).
#[target_feature(enable = "ssse3")]
unsafe fn addmul_ssse3_impl(dst: &mut [u8], src: &[u8], c: u8) {
    let tab = MUL_NIBBLES[c as usize].as_ptr();
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    // SAFETY: the nibble table is 32 bytes; slice bounds as in `xor_128`.
    unsafe {
        let lo = _mm_loadu_si128(tab.cast::<__m128i>());
        let hi = _mm_loadu_si128(tab.add(16).cast::<__m128i>());
        let mask = _mm_set1_epi8(0x0F);
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_si128(s.add(i).cast::<__m128i>());
            let p = mul16b(x, lo, hi, mask);
            let dv = _mm_loadu_si128(d.add(i).cast::<__m128i>());
            _mm_storeu_si128(d.add(i).cast::<__m128i>(), _mm_xor_si128(dv, p));
            i += 16;
        }
    }
    super::addmul_tail(&mut dst[n..], &src[n..], c);
}

fn mul_ssse3(dst: &mut [u8], c: u8) {
    // SAFETY: roster containment, as in `addmul_ssse3`.
    unsafe { mul_ssse3_impl(dst, c) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `ssse3`.
#[target_feature(enable = "ssse3")]
unsafe fn mul_ssse3_impl(dst: &mut [u8], c: u8) {
    let tab = MUL_NIBBLES[c as usize].as_ptr();
    let n = dst.len() / 16 * 16;
    let d = dst.as_mut_ptr();
    // SAFETY: as in `addmul_ssse3_impl`.
    unsafe {
        let lo = _mm_loadu_si128(tab.cast::<__m128i>());
        let hi = _mm_loadu_si128(tab.add(16).cast::<__m128i>());
        let mask = _mm_set1_epi8(0x0F);
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_si128(d.add(i).cast::<__m128i>());
            _mm_storeu_si128(d.add(i).cast::<__m128i>(), mul16b(x, lo, hi, mask));
            i += 16;
        }
    }
    let row = &crate::tables::MUL[c as usize];
    for b in &mut dst[n..] {
        *b = row[*b as usize];
    }
}

fn addmul_many_ssse3(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    // SAFETY: roster containment, as in `addmul_ssse3`.
    unsafe { addmul_many_ssse3_impl(dst, srcs, coeffs) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `ssse3`; every
/// source must have `dst`'s length and `coeffs` must have `srcs`'s
/// length (asserted by `Kernels::addmul_acc_many`).
#[target_feature(enable = "ssse3")]
unsafe fn addmul_many_ssse3_impl(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    let n = dst.len() / 64 * 64;
    let d = dst.as_mut_ptr();
    // SAFETY: 64-byte blocks stay inside `n`; every source has `dst`'s
    // length (asserted by the `Kernels::addmul_acc_many` wrapper).
    unsafe {
        let mask = _mm_set1_epi8(0x0F);
        let mut i = 0;
        while i < n {
            // The whole block is held in registers while every source's
            // contribution folds in — dst traffic once per row, and the
            // per-coefficient table loads amortise over 4 shuffles.
            let mut a0 = _mm_loadu_si128(d.add(i).cast::<__m128i>());
            let mut a1 = _mm_loadu_si128(d.add(i + 16).cast::<__m128i>());
            let mut a2 = _mm_loadu_si128(d.add(i + 32).cast::<__m128i>());
            let mut a3 = _mm_loadu_si128(d.add(i + 48).cast::<__m128i>());
            for (s, &c) in srcs.iter().zip(coeffs) {
                if c == 0 {
                    continue;
                }
                let p = s.as_ptr().add(i);
                let x0 = _mm_loadu_si128(p.cast::<__m128i>());
                let x1 = _mm_loadu_si128(p.add(16).cast::<__m128i>());
                let x2 = _mm_loadu_si128(p.add(32).cast::<__m128i>());
                let x3 = _mm_loadu_si128(p.add(48).cast::<__m128i>());
                if c == 1 {
                    a0 = _mm_xor_si128(a0, x0);
                    a1 = _mm_xor_si128(a1, x1);
                    a2 = _mm_xor_si128(a2, x2);
                    a3 = _mm_xor_si128(a3, x3);
                } else {
                    let tab = MUL_NIBBLES[c as usize].as_ptr();
                    let lo = _mm_loadu_si128(tab.cast::<__m128i>());
                    let hi = _mm_loadu_si128(tab.add(16).cast::<__m128i>());
                    a0 = _mm_xor_si128(a0, mul16b(x0, lo, hi, mask));
                    a1 = _mm_xor_si128(a1, mul16b(x1, lo, hi, mask));
                    a2 = _mm_xor_si128(a2, mul16b(x2, lo, hi, mask));
                    a3 = _mm_xor_si128(a3, mul16b(x3, lo, hi, mask));
                }
            }
            _mm_storeu_si128(d.add(i).cast::<__m128i>(), a0);
            _mm_storeu_si128(d.add(i + 16).cast::<__m128i>(), a1);
            _mm_storeu_si128(d.add(i + 32).cast::<__m128i>(), a2);
            _mm_storeu_si128(d.add(i + 48).cast::<__m128i>(), a3);
            i += 64;
        }
        for (s, &c) in srcs.iter().zip(coeffs) {
            match c {
                0 => {}
                _ => addmul_ssse3_impl(&mut dst[n..], &s[n..], c),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 256-bit lanes (AVX2).
// ---------------------------------------------------------------------------

fn xor_avx2(dst: &mut [u8], src: &[u8]) {
    // SAFETY: roster containment — registered only after
    // `is_x86_feature_detected!("avx2")` succeeded.
    unsafe { xor_avx2_impl(dst, src) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `avx2`; `dst` and
/// `src` must have equal lengths (the `Kernels` wrappers assert this).
#[target_feature(enable = "avx2")]
unsafe fn xor_avx2_impl(dst: &mut [u8], src: &[u8]) {
    let n = dst.len() / 32 * 32;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0;
    while i < n {
        // SAFETY: `i + 32 <= n <= len` for both slices; unaligned ops.
        unsafe {
            let a = _mm256_loadu_si256(d.add(i).cast::<__m256i>());
            let b = _mm256_loadu_si256(s.add(i).cast::<__m256i>());
            _mm256_storeu_si256(d.add(i).cast::<__m256i>(), _mm256_xor_si256(a, b));
        }
        i += 32;
    }
    for (db, sb) in dst[n..].iter_mut().zip(&src[n..]) {
        *db ^= sb;
    }
}

fn xor_many_avx2(dst: &mut [u8], srcs: &[&[u8]]) {
    // SAFETY: roster containment, as in `xor_avx2`.
    unsafe { xor_many_avx2_impl(dst, srcs) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `avx2`; every
/// source must have `dst`'s length (asserted by `Kernels::xor_acc_many`).
#[target_feature(enable = "avx2")]
unsafe fn xor_many_avx2_impl(dst: &mut [u8], srcs: &[&[u8]]) {
    let n = dst.len() / 32 * 32;
    let d = dst.as_mut_ptr();
    let mut i = 0;
    while i < n {
        // SAFETY: `i + 32 <= n`; sources share `dst`'s length (wrapper).
        unsafe {
            let mut acc = _mm256_loadu_si256(d.add(i).cast::<__m256i>());
            for s in srcs {
                let v = _mm256_loadu_si256(s.as_ptr().add(i).cast::<__m256i>());
                acc = _mm256_xor_si256(acc, v);
            }
            _mm256_storeu_si256(d.add(i).cast::<__m256i>(), acc);
        }
        i += 32;
    }
    for (j, db) in dst[n..].iter_mut().enumerate() {
        for s in srcs {
            *db ^= s[n + j];
        }
    }
}

/// Multiplies one 32-byte register by a constant via two nibble shuffles
/// (`vpshufb` shuffles within each 128-bit lane; the tables are broadcast
/// to both lanes, so the per-lane semantics are exactly what we want).
///
/// # Safety
/// Caller must be compiled with (and the CPU support) `avx2`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul32b(x: __m256i, lo: __m256i, hi: __m256i, mask: __m256i) -> __m256i {
    // Pure register arithmetic: these intrinsics are safe inside a
    // `#[target_feature(enable = "avx2")]` function.
    let pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(x, mask));
    let ph = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(x, 4), mask));
    _mm256_xor_si256(pl, ph)
}

/// Loads the 32-byte nibble table for `c`, broadcast to both lanes.
///
/// # Safety
/// Caller must be compiled with (and the CPU support) `avx2`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tables32(c: u8) -> (__m256i, __m256i) {
    let tab = MUL_NIBBLES[c as usize].as_ptr();
    // SAFETY: the nibble table row is 32 bytes: two 16-byte halves.
    unsafe {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(tab.cast::<__m128i>()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(tab.add(16).cast::<__m128i>()));
        (lo, hi)
    }
}

fn addmul_avx2(dst: &mut [u8], src: &[u8], c: u8) {
    // SAFETY: roster containment, as in `xor_avx2`.
    unsafe { addmul_avx2_impl(dst, src, c) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `avx2`; `dst` and
/// `src` must have equal lengths (the `Kernels` wrappers assert this).
#[target_feature(enable = "avx2")]
unsafe fn addmul_avx2_impl(dst: &mut [u8], src: &[u8], c: u8) {
    let n = dst.len() / 32 * 32;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    // SAFETY: bounds as in `xor_avx2_impl`.
    unsafe {
        let (lo, hi) = tables32(c);
        let mask = _mm256_set1_epi8(0x0F);
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(s.add(i).cast::<__m256i>());
            let p = mul32b(x, lo, hi, mask);
            let dv = _mm256_loadu_si256(d.add(i).cast::<__m256i>());
            _mm256_storeu_si256(d.add(i).cast::<__m256i>(), _mm256_xor_si256(dv, p));
            i += 32;
        }
    }
    super::addmul_tail(&mut dst[n..], &src[n..], c);
}

fn mul_avx2(dst: &mut [u8], c: u8) {
    // SAFETY: roster containment, as in `xor_avx2`.
    unsafe { mul_avx2_impl(dst, c) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `avx2`.
#[target_feature(enable = "avx2")]
unsafe fn mul_avx2_impl(dst: &mut [u8], c: u8) {
    let n = dst.len() / 32 * 32;
    let d = dst.as_mut_ptr();
    // SAFETY: bounds as in `xor_avx2_impl`.
    unsafe {
        let (lo, hi) = tables32(c);
        let mask = _mm256_set1_epi8(0x0F);
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(d.add(i).cast::<__m256i>());
            _mm256_storeu_si256(d.add(i).cast::<__m256i>(), mul32b(x, lo, hi, mask));
            i += 32;
        }
    }
    let row = &crate::tables::MUL[c as usize];
    for b in &mut dst[n..] {
        *b = row[*b as usize];
    }
}

fn addmul_many_avx2(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    // SAFETY: roster containment, as in `xor_avx2`.
    unsafe { addmul_many_avx2_impl(dst, srcs, coeffs) }
}

/// # Safety
/// Caller must be compiled with (and the CPU support) `avx2`; every
/// source must have `dst`'s length and `coeffs` must have `srcs`'s
/// length (asserted by `Kernels::addmul_acc_many`).
#[target_feature(enable = "avx2")]
unsafe fn addmul_many_avx2_impl(dst: &mut [u8], srcs: &[&[u8]], coeffs: &[u8]) {
    let n = dst.len() / 64 * 64;
    let d = dst.as_mut_ptr();
    // SAFETY: 64-byte blocks stay inside `n`; sources share `dst`'s length
    // (wrapper assertion).
    unsafe {
        let mask = _mm256_set1_epi8(0x0F);
        let mut i = 0;
        while i < n {
            let mut a0 = _mm256_loadu_si256(d.add(i).cast::<__m256i>());
            let mut a1 = _mm256_loadu_si256(d.add(i + 32).cast::<__m256i>());
            for (s, &c) in srcs.iter().zip(coeffs) {
                if c == 0 {
                    continue;
                }
                let p = s.as_ptr().add(i);
                let x0 = _mm256_loadu_si256(p.cast::<__m256i>());
                let x1 = _mm256_loadu_si256(p.add(32).cast::<__m256i>());
                if c == 1 {
                    a0 = _mm256_xor_si256(a0, x0);
                    a1 = _mm256_xor_si256(a1, x1);
                } else {
                    let (lo, hi) = tables32(c);
                    a0 = _mm256_xor_si256(a0, mul32b(x0, lo, hi, mask));
                    a1 = _mm256_xor_si256(a1, mul32b(x1, lo, hi, mask));
                }
            }
            _mm256_storeu_si256(d.add(i).cast::<__m256i>(), a0);
            _mm256_storeu_si256(d.add(i + 32).cast::<__m256i>(), a1);
            i += 64;
        }
        for (s, &c) in srcs.iter().zip(coeffs) {
            match c {
                0 => {}
                _ => addmul_avx2_impl(&mut dst[n..], &s[n..], c),
            }
        }
    }
}
