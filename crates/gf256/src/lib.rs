//! GF(2^8) arithmetic and dense linear algebra for packet-level erasure codes.
//!
//! This crate is the lowest substrate of the `fec-broadcast` workspace. It
//! provides everything the Reed-Solomon erasure codec (crate `fec-rse`) needs:
//!
//! * [`Gf256`] — a field element with full operator support, built on
//!   compile-time exp/log tables over the primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`, the polynomial used by Rizzo's
//!   classic `fec` codec and by CCSDS Reed-Solomon),
//! * [`kernels`] — the hot slice kernels (`xor_slice`, `addmul_slice`, the
//!   fused `xor_acc_many` / `addmul_acc_many`, …) that move actual packet
//!   payloads. They dispatch through a runtime-selected backend: a safe
//!   `u64`-lane portable implementation everywhere, plus `std::arch`
//!   SSE2/SSSE3/AVX2 (x86_64) and NEON (aarch64) backends using
//!   split-nibble shuffle multiplies, detected once at first use and
//!   overridable via `FEC_FORCE_KERNEL`,
//! * [`Matrix`] — a dense matrix over GF(2^8) with Gauss-Jordan inversion and
//!   Vandermonde constructors, used to build systematic generator matrices
//!   and to solve the decoding systems,
//! * [`poly`] — polynomial evaluation/interpolation, kept as an independent
//!   mathematical oracle for property tests,
//! * [`gf2p16`] — the GF(2^16) extension field plus its own kernels and
//!   matrix, used by the `ablation_gf216` bench to quantify the paper's
//!   §2.2 decision to stay on GF(2^8) (its tables are runtime-initialised;
//!   a compile-time multiplication table would need 8 GiB).
//!
//! Design notes (see DESIGN.md at the workspace root): no macro/type
//! tricks; the GF(2^8) tables are `const fn`-generated so the common path
//! has zero runtime initialisation and no dependencies. `unsafe` is denied
//! crate-wide and allowed only inside the SIMD kernel backends (and the
//! one slice-reinterpret helper they share), where every block carries a
//! `SAFETY` comment and every backend is differentially tested against
//! the scalar reference (`tests/kernel_props.rs`).

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod field;
pub mod gf2p16;
pub mod kernels;
mod matrix;
pub mod poly;
mod tables;

pub use field::Gf256;
pub use gf2p16::{Gf2p16, Matrix16};
pub use matrix::{Matrix, MatrixError};

/// Number of elements in the field (2^8).
pub const FIELD_SIZE: usize = 256;

/// Multiplicative order of the field: every non-zero element satisfies
/// `x^255 = 1`. This also bounds the number of *distinct* evaluation points
/// of the form `alpha^i`, and therefore the maximum Reed-Solomon block
/// length `n` supported by `fec-rse`.
pub const MUL_ORDER: usize = 255;
