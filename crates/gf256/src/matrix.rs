//! Dense matrices over GF(2^8) with Gauss-Jordan inversion.
//!
//! Sizes here are small — Reed-Solomon over GF(2^8) caps blocks at `n <= 255`
//! — so a dense row-major `Vec<u8>` with cubic-time inversion is the right
//! tool (this mirrors Rizzo's classic `fec.c`).

use core::fmt;

use crate::Gf256;

/// Errors from matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix is singular and cannot be inverted. Carries the column at
    /// which no pivot could be found.
    Singular {
        /// Column index where elimination failed.
        column: usize,
    },
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Singular { column } => {
                write!(f, "singular matrix: no pivot in column {column}")
            }
            MatrixError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, Gf256::ONE);
        }
        m
    }

    /// Creates a matrix from a row-major byte vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<u8>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "row-major data length");
        Matrix { rows, cols, data }
    }

    /// The Vandermonde matrix `V[i][j] = (alpha^i)^j` with `rows` distinct
    /// evaluation points. Any `cols` rows of it are linearly independent,
    /// which is what makes Reed-Solomon MDS.
    ///
    /// # Panics
    /// Panics if `rows > 255`: the points `alpha^i` repeat after 255, so a
    /// larger Vandermonde matrix over GF(2^8) cannot have distinct rows.
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        assert!(
            rows <= crate::MUL_ORDER,
            "GF(2^8) Vandermonde limited to 255 distinct rows, got {rows}"
        );
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = Gf256::alpha_pow(i);
            let mut acc = Gf256::ONE;
            for j in 0..cols {
                m.set(i, j, acc);
                acc *= x;
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        Gf256(self.data[r * self.cols + c])
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Gf256) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v.0;
    }

    /// Borrow a row as raw bytes (coefficients).
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts the sub-matrix made of the given rows (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: rows.len(),
            cols: self.cols,
            data,
        }
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.get(i, j) + a * rhs.get(l, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Gf256]) -> Vec<Gf256> {
        assert_eq!(v.len(), self.cols, "mul_vec shape");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j) * v[j]).sum::<Gf256>())
            .collect()
    }

    /// Inverts a square matrix with Gauss-Jordan elimination.
    ///
    /// Pivoting over a finite field only needs a *non-zero* pivot (there is
    /// no numeric conditioning), so plain partial pivoting by first non-zero
    /// entry is exact.
    pub fn inverted(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (self.cols, self.rows),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a non-zero pivot at or below the diagonal.
            let pivot = (col..n)
                .find(|&r| !a.get(r, col).is_zero())
                .ok_or(MatrixError::Singular { column: col })?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let p = a.get(col, col).inv();
            a.scale_row(col, p);
            inv.scale_row(col, p);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.get(r, col);
                if f.is_zero() {
                    continue;
                }
                a.addmul_row(r, col, f);
                inv.addmul_row(r, col, f);
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let (lo, hi) = (r1.min(r2), r1.max(r2));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn scale_row(&mut self, r: usize, f: Gf256) {
        crate::kernels::mul_slice(&mut self.data[r * self.cols..(r + 1) * self.cols], f.0);
    }

    /// `row[dst] += f * row[src]`.
    fn addmul_row(&mut self, dst: usize, src: usize, f: Gf256) {
        debug_assert_ne!(dst, src);
        let cols = self.cols;
        let (s, d) = if src < dst {
            let (head, tail) = self.data.split_at_mut(dst * cols);
            (&head[src * cols..(src + 1) * cols], &mut tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(src * cols);
            (&tail[..cols], &mut head[dst * cols..(dst + 1) * cols])
        };
        crate::kernels::addmul_slice(d, s, f.0);
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(16) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(32) {
                write!(f, "{:02x} ", self.get(r, c).0)?;
            }
            writeln!(f, "{}", if self.cols > 32 { "…" } else { "" })?;
        }
        if self.rows > 16 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..n * n).map(|_| rng.gen()).collect();
        Matrix::from_rows(n, n, data)
    }

    #[test]
    fn identity_is_self_inverse() {
        let i = Matrix::identity(8);
        assert_eq!(i.inverted().unwrap(), i);
    }

    #[test]
    fn zero_matrix_is_singular() {
        let z = Matrix::zero(4, 4);
        assert_eq!(z.inverted(), Err(MatrixError::Singular { column: 0 }));
    }

    #[test]
    fn non_square_inversion_rejected() {
        let m = Matrix::zero(3, 4);
        assert!(matches!(
            m.inverted(),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn mul_shape_mismatch_rejected() {
        let a = Matrix::zero(3, 4);
        let b = Matrix::zero(5, 3);
        assert!(matches!(a.mul(&b), Err(MatrixError::ShapeMismatch { .. })));
    }

    #[test]
    fn vandermonde_rows_are_geometric() {
        let v = Matrix::vandermonde(5, 3);
        for i in 0..5 {
            let x = Gf256::alpha_pow(i);
            assert_eq!(v.get(i, 0), Gf256::ONE);
            assert_eq!(v.get(i, 1), x);
            assert_eq!(v.get(i, 2), x * x);
        }
    }

    #[test]
    #[should_panic(expected = "255 distinct rows")]
    fn vandermonde_row_limit_enforced() {
        let _ = Matrix::vandermonde(256, 4);
    }

    /// Any square sub-matrix of a Vandermonde matrix (distinct points) is
    /// invertible — the algebraic heart of Reed-Solomon's MDS property.
    #[test]
    fn vandermonde_submatrices_invertible() {
        let v = Matrix::vandermonde(20, 7);
        // a few deterministic row subsets
        for rows in [
            vec![0, 1, 2, 3, 4, 5, 6],
            vec![13, 2, 19, 7, 5, 11, 3],
            vec![19, 18, 17, 16, 15, 14, 13],
        ] {
            let sub = v.select_rows(&rows);
            let inv = sub.inverted().expect("Vandermonde minor singular");
            assert_eq!(sub.mul(&inv).unwrap(), Matrix::identity(7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random matrices that invert successfully satisfy A * A^-1 = I, and
        /// inversion round-trips.
        #[test]
        fn inversion_roundtrip(n in 1usize..24, seed in any::<u64>()) {
            let a = random_matrix(n, seed);
            if let Ok(inv) = a.inverted() {
                prop_assert_eq!(a.mul(&inv).unwrap(), Matrix::identity(n));
                prop_assert_eq!(inv.mul(&a).unwrap(), Matrix::identity(n));
                prop_assert_eq!(inv.inverted().unwrap(), a);
            }
        }

        /// Solving A x = b via the inverse reproduces x.
        #[test]
        fn solve_via_inverse(n in 1usize..16, seed in any::<u64>()) {
            let a = random_matrix(n, seed);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xDEAD);
            let x: Vec<Gf256> = (0..n).map(|_| Gf256(rng.gen())).collect();
            if let Ok(inv) = a.inverted() {
                let b = a.mul_vec(&x);
                let x2 = inv.mul_vec(&b);
                prop_assert_eq!(x, x2);
            }
        }

        #[test]
        fn identity_is_multiplicative_neutral(n in 1usize..12, seed in any::<u64>()) {
            let a = random_matrix(n, seed);
            let i = Matrix::identity(n);
            prop_assert_eq!(a.mul(&i).unwrap(), a.clone());
            prop_assert_eq!(i.mul(&a).unwrap(), a);
        }
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_rows(3, 2, vec![1, 2, 3, 4, 5, 6]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5, 6]);
        assert_eq!(s.row(1), &[1, 2]);
    }
}
