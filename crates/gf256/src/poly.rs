//! Polynomial evaluation and Lagrange interpolation over GF(2^8).
//!
//! Reed-Solomon encoding is "evaluate the degree-(k-1) polynomial through the
//! source symbols at n points"; decoding is interpolation. The production
//! codec in `fec-rse` uses the matrix formulation for speed, but this module
//! provides the same mathematics in its textbook form so property tests can
//! cross-check the two independent implementations against each other.

use crate::Gf256;

/// Evaluates the polynomial `coeffs[0] + coeffs[1] x + …` at `x` (Horner).
pub fn eval(coeffs: &[Gf256], x: Gf256) -> Gf256 {
    coeffs.iter().rev().fold(Gf256::ZERO, |acc, &c| acc * x + c)
}

/// Lagrange-interpolates the unique polynomial of degree `< points.len()`
/// through `(x_i, y_i)` pairs and evaluates it at `x`.
///
/// # Panics
/// Panics if two interpolation points share the same `x` (caller bug: the
/// evaluation points of an erasure code are distinct by construction).
pub fn interpolate_at(points: &[(Gf256, Gf256)], x: Gf256) -> Gf256 {
    let mut acc = Gf256::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut num = Gf256::ONE;
        let mut den = Gf256::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(xi != xj, "duplicate interpolation point {xi:?}");
            num *= x - xj;
            den *= xi - xj;
        }
        acc += yi * num / den;
    }
    acc
}

/// Recovers the coefficient vector of the unique polynomial of degree
/// `< points.len()` through the given points, by solving the Vandermonde
/// system with interpolation at basis points.
///
/// This is O(n^3)-ish and only meant for tests and small inputs.
pub fn interpolate_coeffs(points: &[(Gf256, Gf256)]) -> Vec<Gf256> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Build Newton-style incremental product polynomial.
    // poly holds coefficients of the interpolating polynomial; basis holds
    // the running product (x - x_0)(x - x_1)…
    let mut poly = vec![Gf256::ZERO; n];
    let mut basis = vec![Gf256::ZERO; n + 1];
    basis[0] = Gf256::ONE; // constant polynomial 1

    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Evaluate current poly at xi; compute the correction factor.
        let cur = eval(&poly[..i.max(1)], xi);
        let b = eval(&basis[..=i], xi);
        let factor = (yi - cur) / b;
        // poly += factor * basis
        for j in 0..=i {
            poly[j] += factor * basis[j];
        }
        // basis *= (x - xi)
        for j in (0..=i).rev() {
            let v = basis[j];
            basis[j + 1] += v;
            basis[j] = v * xi; // (x - xi) == (x + xi) in char 2
        }
    }
    poly
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_constant_and_linear() {
        assert_eq!(eval(&[Gf256(7)], Gf256(99)), Gf256(7));
        // p(x) = 3 + 2x at x = alpha
        let p = [Gf256(3), Gf256(2)];
        let x = Gf256::ALPHA;
        assert_eq!(eval(&p, x), Gf256(3) + Gf256(2) * x);
    }

    #[test]
    fn eval_empty_polynomial_is_zero() {
        assert_eq!(eval(&[], Gf256(42)), Gf256::ZERO);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Interpolating through evaluations of a random polynomial recovers
        /// its values everywhere (tested at fresh points).
        #[test]
        fn interpolation_reproduces_polynomial(
            coeffs in proptest::collection::vec(any::<u8>().prop_map(Gf256), 1..12),
            probe in any::<u8>().prop_map(Gf256),
        ) {
            let k = coeffs.len();
            let points: Vec<(Gf256, Gf256)> = (0..k)
                .map(|i| {
                    let x = Gf256::alpha_pow(i);
                    (x, eval(&coeffs, x))
                })
                .collect();
            prop_assert_eq!(interpolate_at(&points, probe), eval(&coeffs, probe));
        }

        /// Coefficient recovery is exact.
        #[test]
        fn coefficient_recovery(
            coeffs in proptest::collection::vec(any::<u8>().prop_map(Gf256), 1..10),
        ) {
            let k = coeffs.len();
            let points: Vec<(Gf256, Gf256)> = (0..k)
                .map(|i| {
                    let x = Gf256::alpha_pow(i);
                    (x, eval(&coeffs, x))
                })
                .collect();
            let rec = interpolate_coeffs(&points);
            prop_assert_eq!(rec, coeffs);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate interpolation point")]
    fn duplicate_points_panic() {
        let pts = [(Gf256(1), Gf256(2)), (Gf256(1), Gf256(3))];
        let _ = interpolate_at(&pts, Gf256(0));
    }
}
