//! Differential property tests: every compiled kernel backend must agree
//! byte-for-byte with the scalar reference.
//!
//! The scalar backend is the ground truth (its loops mirror the field
//! definition, which the crate's own unit tests check against [`Gf256`]
//! arithmetic); the portable and SIMD backends must reproduce it exactly
//! on:
//!
//! * random contents at unaligned lengths, including non-multiples of the
//!   8/16/32/64-byte lane and block widths every backend uses internally,
//! * buffers that are directly adjacent in one allocation (`split_at_mut`
//!   neighbours), so an out-of-bounds lane read/write in one buffer would
//!   corrupt the other and fail the comparison,
//! * the `c = 0` / `c = 1` addmul fast paths and all-zero data.

use fec_gf256::kernels::{self, Kernels};
use fec_gf256::{Gf256, Gf2p16};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Lengths that straddle every lane/block boundary the backends use
/// (u64 lanes, 16/32-byte registers, 64-byte fused blocks), plus the
/// paper-scale symbol sizes.
const EDGE_LENGTHS: &[usize] = &[
    0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 47, 63, 64, 65, 95, 127, 128, 129, 255, 511,
    1023, 1024, 2048, 4095, 4096,
];

fn non_scalar_backends() -> Vec<&'static Kernels> {
    let all = kernels::backends();
    assert_eq!(all[0].name(), "scalar");
    all[1..].to_vec()
}

fn fill(rng: &mut SmallRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

/// `dst ^= c * src` straight from the field definition.
fn reference_addmul(dst: &mut [u8], src: &[u8], c: u8) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (Gf256(*d) + Gf256(c) * Gf256(*s)).0;
    }
}

#[test]
fn every_backend_matches_reference_on_edge_lengths() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    for &len in EDGE_LENGTHS {
        let src = fill(&mut rng, len);
        let init = fill(&mut rng, len);
        for &c in &[0u8, 1, 2, 3, 0x1D, 0x8E, 0xFF] {
            let mut expect = init.clone();
            reference_addmul(&mut expect, &src, c);
            for backend in kernels::backends() {
                let mut got = init.clone();
                backend.addmul_slice(&mut got, &src, c);
                assert_eq!(got, expect, "addmul {} len {len} c {c}", backend.name());

                let mut got = init.clone();
                backend.mul_slice(&mut got, c);
                let expect_mul: Vec<u8> = init.iter().map(|&d| (Gf256(c) * Gf256(d)).0).collect();
                assert_eq!(got, expect_mul, "mul {} len {len} c {c}", backend.name());
            }
        }
        let expect_xor: Vec<u8> = init.iter().zip(&src).map(|(a, b)| a ^ b).collect();
        for backend in kernels::backends() {
            let mut got = init.clone();
            backend.xor_slice(&mut got, &src);
            assert_eq!(got, expect_xor, "xor {} len {len}", backend.name());
        }
    }
}

#[test]
fn adjacent_buffers_are_not_corrupted() {
    // dst and src carved out of ONE allocation, directly adjacent: any
    // lane over-read/-write past either end lands in the guard regions or
    // the sibling buffer and breaks the comparison below.
    let mut rng = SmallRng::seed_from_u64(0xAD7A);
    for &len in EDGE_LENGTHS {
        let arena_init = fill(&mut rng, 2 * len + 32);
        for backend in non_scalar_backends() {
            for &c in &[1u8, 0x53] {
                // Reference run on copies.
                let mut expect_dst = arena_init[16..16 + len].to_vec();
                let src_copy = arena_init[16 + len..16 + 2 * len].to_vec();
                reference_addmul(&mut expect_dst, &src_copy, c);

                let mut arena = arena_init.clone();
                let (guard_lo, rest) = arena.split_at_mut(16);
                let (dst, rest) = rest.split_at_mut(len);
                let (src, guard_hi) = rest.split_at_mut(len);
                backend.addmul_slice(dst, src, c);
                assert_eq!(dst, &expect_dst[..], "{} len {len} c {c}", backend.name());
                assert_eq!(src, &src_copy[..], "src clobbered: {}", backend.name());
                assert_eq!(guard_lo, &arena_init[..16], "low guard: {}", backend.name());
                assert_eq!(
                    guard_hi,
                    &arena_init[16 + 2 * len..],
                    "high guard: {}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn fused_many_matches_sequential_reference() {
    let mut rng = SmallRng::seed_from_u64(0xFA57);
    for &len in &[0usize, 1, 13, 63, 64, 65, 130, 1024, 4093] {
        for nsrc in [0usize, 1, 2, 3, 7] {
            let srcs: Vec<Vec<u8>> = (0..nsrc).map(|_| fill(&mut rng, len)).collect();
            let refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
            let coeffs: Vec<u8> = (0..nsrc).map(|_| rng.gen()).collect();
            let init = fill(&mut rng, len);

            let mut expect_xor = init.clone();
            for s in &refs {
                for (d, x) in expect_xor.iter_mut().zip(*s) {
                    *d ^= x;
                }
            }
            let mut expect_addmul = init.clone();
            for (s, &c) in refs.iter().zip(&coeffs) {
                reference_addmul(&mut expect_addmul, s, c);
            }
            for backend in kernels::backends() {
                let mut got = init.clone();
                backend.xor_acc_many(&mut got, &refs);
                assert_eq!(got, expect_xor, "xor_many {} len {len}", backend.name());

                let mut got = init.clone();
                backend.addmul_acc_many(&mut got, &refs, &coeffs);
                assert_eq!(
                    got,
                    expect_addmul,
                    "addmul_many {} len {len} x{nsrc}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn fused_many_handles_trivial_coefficients() {
    // All-zero and all-one coefficient rows hit the skip and XOR branches
    // inside the fused kernels.
    let mut rng = SmallRng::seed_from_u64(0x0001);
    let len = 100;
    let srcs: Vec<Vec<u8>> = (0..4).map(|_| fill(&mut rng, len)).collect();
    let refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
    let init = fill(&mut rng, len);
    for backend in kernels::backends() {
        let mut got = init.clone();
        backend.addmul_acc_many(&mut got, &refs, &[0, 0, 0, 0]);
        assert_eq!(
            got,
            init,
            "all-zero row is the identity: {}",
            backend.name()
        );

        let mut got = init.clone();
        backend.addmul_acc_many(&mut got, &refs, &[1, 1, 1, 1]);
        let mut expect = init.clone();
        backend.xor_acc_many(&mut expect, &refs);
        assert_eq!(got, expect, "all-one row equals XOR: {}", backend.name());
    }
}

#[test]
fn addmul16_matches_reference_on_every_backend() {
    let mut rng = SmallRng::seed_from_u64(0x1616);
    for &len in &[0usize, 1, 7, 8, 9, 100, 1000] {
        let src: Vec<Gf2p16> = (0..len).map(|_| Gf2p16(rng.gen())).collect();
        let init: Vec<Gf2p16> = (0..len).map(|_| Gf2p16(rng.gen())).collect();
        for &c in &[
            Gf2p16::ZERO,
            Gf2p16::ONE,
            Gf2p16(2),
            Gf2p16(0x1234),
            Gf2p16(0xFFFF),
        ] {
            let expect: Vec<Gf2p16> = init.iter().zip(&src).map(|(&d, &s)| d + c * s).collect();
            for backend in kernels::backends() {
                let mut got = init.clone();
                backend.addmul_slice16(&mut got, &src, c);
                assert_eq!(got, expect, "addmul16 {} len {len} c {c}", backend.name());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random lengths up to 4096 with random contents and coefficient:
    /// every backend equals the field-definition reference.
    #[test]
    fn addmul_differential(len in 0usize..=4096, c in any::<u8>(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let src = fill(&mut rng, len);
        let init = fill(&mut rng, len);
        let mut expect = init.clone();
        reference_addmul(&mut expect, &src, c);
        for backend in kernels::backends() {
            let mut got = init.clone();
            backend.addmul_slice(&mut got, &src, c);
            prop_assert_eq!(&got, &expect, "{} len {} c {}", backend.name(), len, c);
        }
    }

    /// Same for XOR.
    #[test]
    fn xor_differential(len in 0usize..=4096, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let src = fill(&mut rng, len);
        let init = fill(&mut rng, len);
        let expect: Vec<u8> = init.iter().zip(&src).map(|(a, b)| a ^ b).collect();
        for backend in kernels::backends() {
            let mut got = init.clone();
            backend.xor_slice(&mut got, &src);
            prop_assert_eq!(&got, &expect, "{} len {}", backend.name(), len);
        }
    }

    /// Fused rows against sequential single-source calls, random shapes.
    #[test]
    fn fused_differential(len in 0usize..=1024, nsrc in 0usize..6, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let srcs: Vec<Vec<u8>> = (0..nsrc).map(|_| fill(&mut rng, len)).collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
        let coeffs: Vec<u8> = (0..nsrc).map(|_| rng.gen()).collect();
        let init = fill(&mut rng, len);
        let mut expect = init.clone();
        for (s, &c) in refs.iter().zip(&coeffs) {
            reference_addmul(&mut expect, s, c);
        }
        for backend in kernels::backends() {
            let mut got = init.clone();
            backend.addmul_acc_many(&mut got, &refs, &coeffs);
            prop_assert_eq!(&got, &expect, "{} len {} x{}", backend.name(), len, nsrc);
        }
    }
}
