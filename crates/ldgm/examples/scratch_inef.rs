use fec_ldgm::{LdgmParams, RightSide, SparseMatrix, StructuralDecoder};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn mean_inef(k: usize, n: usize, right: RightSide, runs: u64) -> (f64, u32) {
    let mut fails = 0;
    let mut tot = 0.0;
    let mut cnt = 0u32;
    for seed in 0..runs {
        let m = SparseMatrix::build(LdgmParams::new(k, n, right, seed)).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x1234);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rng);
        let mut d = StructuralDecoder::new(&m);
        let mut done = None;
        for (i, &id) in order.iter().enumerate() {
            if d.push(id) {
                done = Some(i + 1);
                break;
            }
        }
        match done {
            Some(c) => {
                tot += c as f64 / k as f64;
                cnt += 1;
            }
            None => fails += 1,
        }
    }
    (tot / cnt.max(1) as f64, fails)
}

fn main() {
    for (k, n) in [(1000, 2500), (2000, 5000), (2000, 3000)] {
        for right in [RightSide::Staircase, RightSide::Triangle] {
            let (inef, fails) = mean_inef(k, n, right, 20);
            println!("k={k} n={n} {right:9}: inef={inef:.4} fails={fails}");
        }
    }
}
