//! Dense GF(2) linear algebra for maximum-likelihood (ML) decoding.
//!
//! Peeling (the paper's §2.3.2 algorithm) gives up on *stopping sets*:
//! residual equation systems where every equation still has two or more
//! unknowns. Those systems are small near the decoding threshold, and they
//! are plain linear systems over GF(2) — exactly what Gaussian elimination
//! solves. This module provides the dense bit-matrix that the [`crate::gauss`]
//! hybrid decoders run elimination on; rows are packed 64 variables per
//! `u64` word so a row XOR touches `cols / 64` words.
//!
//! The matrix is deliberately minimal: no abstract traits, no generic
//! scalars (smoltcp-style simplicity). It knows nothing about FEC; the
//! coupling between bit rows and payload accumulators lives in the solver,
//! which mirrors every row operation onto the caller's right-hand sides
//! through [`RowOp`].

use core::fmt;

/// A dense `rows × cols` matrix over GF(2), rows packed into `u64` words.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

/// An elementary row operation performed during elimination, reported to the
/// caller so parallel right-hand sides (payload accumulators) stay in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOp {
    /// `dst ^= src` (rows are distinct).
    Xor {
        /// Row whose contents are folded in (unchanged).
        src: usize,
        /// Row receiving the fold.
        dst: usize,
    },
    /// Rows `a` and `b` exchanged places.
    Swap {
        /// First row.
        a: usize,
        /// Second row.
        b: usize,
    },
}

impl BitMatrix {
    /// Creates an all-zero matrix. `rows == 0` or `cols == 0` is allowed
    /// (empty systems are legal inputs to the solver).
    pub fn zero(rows: usize, cols: usize) -> BitMatrix {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            words: vec![0u64; rows * words_per_row],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn word_index(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(r < self.rows && c < self.cols, "bit index out of range");
        (r * self.words_per_row + c / 64, 1u64 << (c % 64))
    }

    /// Reads bit `(r, c)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if out of range; release reads garbage-free
    /// because the index math is checked by the slice access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, mask) = self.word_index(r, c);
        self.words[w] & mask != 0
    }

    /// Sets bit `(r, c)` to `bit`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, bit: bool) {
        let (w, mask) = self.word_index(r, c);
        if bit {
            self.words[w] |= mask;
        } else {
            self.words[w] &= !mask;
        }
    }

    /// Flips bit `(r, c)`.
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) {
        let (w, mask) = self.word_index(r, c);
        self.words[w] ^= mask;
    }

    /// `dst ^= src`. The rows must be distinct.
    pub fn xor_rows(&mut self, src: usize, dst: usize) {
        assert_ne!(src, dst, "xor_rows requires distinct rows");
        let w = self.words_per_row;
        let (lo, hi) = (src.min(dst), src.max(dst));
        let (head, tail) = self.words.split_at_mut(hi * w);
        let low = &mut head[lo * w..lo * w + w];
        let high = &mut tail[..w];
        let (s_row, d_row): (&[u64], &mut [u64]) =
            if src < dst { (low, high) } else { (high, low) };
        for (d, s) in d_row.iter_mut().zip(s_row) {
            *d ^= s;
        }
    }

    /// Swaps two rows (no-op when equal).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let w = self.words_per_row;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.words.split_at_mut(hi * w);
        head[lo * w..lo * w + w].swap_with_slice(&mut tail[..w]);
    }

    /// Column of the first set bit of row `r`, if any.
    pub fn leading_one(&self, r: usize) -> Option<usize> {
        let w = self.words_per_row;
        for (i, word) in self.words[r * w..(r + 1) * w].iter().enumerate() {
            if *word != 0 {
                let c = i * 64 + word.trailing_zeros() as usize;
                // A stray bit beyond `cols` would be a construction bug.
                debug_assert!(c < self.cols);
                return Some(c);
            }
        }
        None
    }

    /// Number of set bits in row `r`.
    pub fn row_weight(&self, r: usize) -> usize {
        let w = self.words_per_row;
        self.words[r * w..(r + 1) * w]
            .iter()
            .map(|word| word.count_ones() as usize)
            .sum()
    }

    /// True if row `r` is all zeros.
    pub fn row_is_zero(&self, r: usize) -> bool {
        let w = self.words_per_row;
        self.words[r * w..(r + 1) * w].iter().all(|&word| word == 0)
    }

    /// Reduces the matrix in place to **reduced row echelon form** and
    /// returns the pivot list as `(row, col)` pairs, in increasing column
    /// order. Every elementary operation is reported to `on_op` *before* it
    /// is applied, so callers can mirror it onto right-hand sides.
    ///
    /// Elimination is column-major Gauss-Jordan: for each column (left to
    /// right) find a pivot row at or below the current rank frontier, swap it
    /// up, and clear the column everywhere else. Cost is
    /// `O(rows · cols · cols/64)` — fine for the residual stopping-set
    /// systems this crate feeds it (thousands of unknowns at most).
    pub fn reduce(&mut self, mut on_op: impl FnMut(RowOp)) -> Vec<(usize, usize)> {
        let mut pivots = Vec::new();
        let mut next_row = 0usize;
        for col in 0..self.cols {
            if next_row == self.rows {
                break;
            }
            // Find a row with a 1 in this column at or below the frontier.
            let Some(pivot) = (next_row..self.rows).find(|&r| self.get(r, col)) else {
                continue;
            };
            if pivot != next_row {
                on_op(RowOp::Swap {
                    a: pivot,
                    b: next_row,
                });
                self.swap_rows(pivot, next_row);
            }
            // Clear the column in every other row (full Gauss-Jordan so the
            // result is RREF, which the determinedness test needs).
            for r in 0..self.rows {
                if r != next_row && self.get(r, col) {
                    on_op(RowOp::Xor {
                        src: next_row,
                        dst: r,
                    });
                    self.xor_rows(next_row, r);
                }
            }
            pivots.push((next_row, col));
            next_row += 1;
        }
        pivots
    }

    /// Rank of the matrix (destructive helper on a clone).
    pub fn rank(&self) -> usize {
        self.clone().reduce(|_| {}).len()
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.rows, self.cols)?;
        for r in 0..self.rows.min(32) {
            for c in 0..self.cols.min(128) {
                f.write_str(if self.get(r, c) { "1" } else { "." })?;
            }
            writeln!(f)?;
        }
        if self.rows > 32 || self.cols > 128 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_matrix_has_rank_zero() {
        let m = BitMatrix::zero(4, 7);
        assert_eq!(m.rank(), 0);
        assert!(m.row_is_zero(2));
        assert_eq!(m.leading_one(0), None);
    }

    #[test]
    fn empty_dimensions_are_legal() {
        assert_eq!(BitMatrix::zero(0, 5).rank(), 0);
        assert_eq!(BitMatrix::zero(5, 0).rank(), 0);
        assert_eq!(BitMatrix::zero(0, 0).rank(), 0);
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut m = BitMatrix::zero(3, 130); // spans three words
        m.set(1, 0, true);
        m.set(1, 63, true);
        m.set(1, 64, true);
        m.set(1, 129, true);
        assert!(m.get(1, 0) && m.get(1, 63) && m.get(1, 64) && m.get(1, 129));
        assert_eq!(m.row_weight(1), 4);
        m.flip(1, 64);
        assert!(!m.get(1, 64));
        assert_eq!(m.row_weight(1), 3);
        assert!(m.row_is_zero(0) && m.row_is_zero(2));
    }

    #[test]
    fn identity_has_full_rank() {
        let n = 70;
        let mut m = BitMatrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        assert_eq!(m.rank(), n);
        let pivots = m.clone().reduce(|_| {});
        assert_eq!(pivots, (0..n).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn xor_rows_works_in_both_directions() {
        let mut m = BitMatrix::zero(2, 100);
        m.set(0, 3, true);
        m.set(1, 99, true);
        m.xor_rows(0, 1); // low -> high
        assert!(m.get(1, 3) && m.get(1, 99));
        m.xor_rows(1, 0); // high -> low
        assert!(m.get(0, 99) && !m.get(0, 3));
    }

    #[test]
    fn swap_rows_across_word_boundary() {
        let mut m = BitMatrix::zero(3, 65);
        m.set(0, 64, true);
        m.set(2, 0, true);
        m.swap_rows(0, 2);
        assert!(m.get(2, 64) && m.get(0, 0));
        m.swap_rows(1, 1); // self-swap is a no-op
        assert!(m.row_is_zero(1));
    }

    #[test]
    fn duplicate_rows_collapse_rank() {
        let mut m = BitMatrix::zero(3, 10);
        for c in [1, 4, 9] {
            m.set(0, c, true);
            m.set(1, c, true);
        }
        m.set(2, 0, true);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn reduce_reports_every_operation() {
        let mut m = BitMatrix::zero(3, 3);
        // Rows: [011], [110], [011] — rank 2, needs swaps and xors.
        m.set(0, 1, true);
        m.set(0, 2, true);
        m.set(1, 0, true);
        m.set(1, 1, true);
        m.set(2, 1, true);
        m.set(2, 2, true);
        let mut mirror = m.clone();
        let mut ops = Vec::new();
        let pivots = m.reduce(|op| ops.push(op));
        // Replaying the reported ops on a clone must reproduce the RREF.
        for op in ops {
            match op {
                RowOp::Xor { src, dst } => mirror.xor_rows(src, dst),
                RowOp::Swap { a, b } => mirror.swap_rows(a, b),
            }
        }
        assert_eq!(m, mirror);
        assert_eq!(pivots.len(), 2);
    }

    #[test]
    fn rref_shape_invariants() {
        // After reduce(): each pivot column has exactly one 1 (at the pivot
        // row), and pivot columns strictly increase with pivot rows.
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let rows = rng.gen_range(1..20);
            let cols = rng.gen_range(1..30);
            let mut m = BitMatrix::zero(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m.set(r, c, rng.gen_bool(0.3));
                }
            }
            let pivots = m.reduce(|_| {});
            let mut last_col = None;
            for &(r, c) in &pivots {
                assert!(last_col.is_none_or(|lc| c > lc), "pivot cols increase");
                last_col = Some(c);
                for rr in 0..rows {
                    assert_eq!(m.get(rr, c), rr == r, "pivot column is unit");
                }
            }
            // Non-pivot rows (below the rank frontier) are zero.
            for r in pivots.len()..rows {
                assert!(m.row_is_zero(r));
            }
        }
    }

    proptest! {
        /// Rank is invariant under row shuffling.
        #[test]
        fn rank_invariant_under_row_permutation(seed in 0u64..500) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let rows = rng.gen_range(1usize..15);
            let cols = rng.gen_range(1usize..20);
            let mut m = BitMatrix::zero(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m.set(r, c, rng.gen_bool(0.4));
                }
            }
            let base = m.rank();
            // Reverse the row order (a permutation reachable by swaps).
            let mut rev = BitMatrix::zero(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    rev.set(rows - 1 - r, c, m.get(r, c));
                }
            }
            prop_assert_eq!(rev.rank(), base);
        }

        /// Appending a row can only grow rank by zero or one.
        #[test]
        fn rank_grows_by_at_most_one(seed in 0u64..500) {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5);
            let rows = rng.gen_range(1usize..12);
            let cols = rng.gen_range(1usize..18);
            let mut small = BitMatrix::zero(rows, cols);
            let mut big = BitMatrix::zero(rows + 1, cols);
            for r in 0..rows {
                for c in 0..cols {
                    let bit = rng.gen_bool(0.4);
                    small.set(r, c, bit);
                    big.set(r, c, bit);
                }
            }
            for c in 0..cols {
                big.set(rows, c, rng.gen_bool(0.4));
            }
            let (rs, rb) = (small.rank(), big.rank());
            prop_assert!(rb == rs || rb == rs + 1);
        }
    }
}
