//! Iterative (peeling) LDGM decoder over actual packet payloads.
//!
//! The algorithm is the paper's §2.3.2: each check equation starts with all
//! its variables unknown. Every arriving packet makes one variable known;
//! its value is folded (XORed) into every equation containing it. When an
//! equation drops to a single unknown variable, that variable's value is the
//! equation's accumulator, and the discovery cascades recursively. Decoding
//! can stop at any time and completes when all `k` source packets are known.

use std::sync::Arc;

use fec_gf256::kernels::xor_slice;

use crate::{LdgmError, SparseMatrix};

/// Result of feeding one packet into the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The packet's variable was already known (duplicate reception or a
    /// value the peeling had already solved). It consumed channel budget but
    /// taught the decoder nothing.
    Useless,
    /// The packet advanced decoding; `decoded_source` source packets are now
    /// known in total.
    Progress {
        /// Total source packets currently known.
        decoded_source: usize,
    },
    /// All `k` source packets are known.
    Complete,
}

impl PushOutcome {
    /// True once the object is fully decodable.
    pub fn is_complete(self) -> bool {
        matches!(self, PushOutcome::Complete)
    }
}

/// Memory footprint of a running decoder, in symbol-sized buffers.
///
/// The paper lists "maximum memory requirements" as a future-work metric
/// (§7); these counters make it measurable per (code, schedule, channel) —
/// see the `memory_profile` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Symbol buffers currently held (variable values + live accumulators).
    pub current_symbols: usize,
    /// High-water mark of `current_symbols` over the decoder's lifetime.
    pub peak_symbols: usize,
    /// Bytes per symbol buffer.
    pub symbol_len: usize,
}

impl MemoryStats {
    /// Peak payload memory in bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_symbols * self.symbol_len
    }
}

/// Payload-carrying iterative decoder.
///
/// Owns its matrix via `Arc`, so long-lived receiver sessions can share one
/// matrix between the decoder and other components without self-referential
/// lifetimes.
pub struct Decoder {
    matrix: Arc<SparseMatrix>,
    symbol_len: usize,
    /// Unknown-variable count per check equation.
    eq_unknowns: Vec<u32>,
    /// XOR of the known variables per equation (lazily allocated).
    eq_acc: Vec<Option<Vec<u8>>>,
    /// Whether each variable is known (received or solved).
    known: Vec<bool>,
    /// Retained values: sources permanently (they are the output), parity
    /// only transiently while waiting on the cascade stack — once a parity
    /// value has been folded into its equations it is freed (streaming
    /// decoding; this is what makes large-block LDGM memory-friendly).
    var_value: Vec<Option<Vec<u8>>>,
    decoded_source: usize,
    received: u64,
    memory: MemoryStats,
}

impl Decoder {
    /// Creates a decoder for packets of `symbol_len` bytes.
    pub fn new(matrix: Arc<SparseMatrix>, symbol_len: usize) -> Decoder {
        let m = matrix.num_checks();
        let n = matrix.n();
        let eq_unknowns = (0..m).map(|i| matrix.row(i).len() as u32).collect();
        Decoder {
            matrix,
            symbol_len,
            eq_unknowns,
            eq_acc: vec![None; m],
            known: vec![false; n],
            var_value: vec![None; n],
            decoded_source: 0,
            received: 0,
            memory: MemoryStats {
                current_symbols: 0,
                peak_symbols: 0,
                symbol_len,
            },
        }
    }

    #[inline]
    fn track_alloc(&mut self) {
        self.memory.current_symbols += 1;
        if self.memory.current_symbols > self.memory.peak_symbols {
            self.memory.peak_symbols = self.memory.current_symbols;
        }
    }

    /// Feeds one received packet (`id < n`; ids `0..k` are source packets).
    pub fn push(&mut self, id: u32, payload: &[u8]) -> Result<PushOutcome, LdgmError> {
        if id as usize >= self.matrix.n() {
            return Err(LdgmError::BadPacketId {
                id,
                n: self.matrix.n(),
            });
        }
        if payload.len() != self.symbol_len {
            return Err(LdgmError::SymbolLengthMismatch {
                expected: self.symbol_len,
                got: payload.len(),
            });
        }
        self.received += 1;
        if self.is_complete() || self.known[id as usize] {
            return Ok(if self.is_complete() {
                PushOutcome::Complete
            } else {
                PushOutcome::Useless
            });
        }
        self.learn(id as usize, payload.to_vec());
        Ok(if self.is_complete() {
            PushOutcome::Complete
        } else {
            PushOutcome::Progress {
                decoded_source: self.decoded_source,
            }
        })
    }

    /// Feeds a burst of received packets in one call.
    ///
    /// Reaches the same decoder state as [`Decoder::push`]ing each
    /// `(id, payload)` in order, but the whole batch is validated up front
    /// and duplicate/known variables are skipped without entering the
    /// peeling machinery, so a receiver can hand over an entire
    /// loss-schedule window at once.
    ///
    /// Returns [`PushOutcome::Complete`] once all `k` source packets are
    /// known, [`PushOutcome::Progress`] if **this batch** taught the
    /// decoder something, and [`PushOutcome::Useless`] for a window of
    /// pure duplicates/already-solved variables.
    ///
    /// # Errors
    /// Fails on the first invalid id or payload length **without
    /// consuming any of the batch** (all-or-nothing validation — unlike a
    /// `push` loop, which would consume the valid prefix first).
    pub fn push_batch(&mut self, batch: &[(u32, &[u8])]) -> Result<PushOutcome, LdgmError> {
        for &(id, payload) in batch {
            if id as usize >= self.matrix.n() {
                return Err(LdgmError::BadPacketId {
                    id,
                    n: self.matrix.n(),
                });
            }
            if payload.len() != self.symbol_len {
                return Err(LdgmError::SymbolLengthMismatch {
                    expected: self.symbol_len,
                    got: payload.len(),
                });
            }
        }
        self.received += batch.len() as u64;
        let decoded_before = self.decoded_source;
        let mut learned = false;
        for &(id, payload) in batch {
            if !self.is_complete() && !self.known[id as usize] {
                self.learn(id as usize, payload.to_vec());
                learned = true;
            }
        }
        Ok(if self.is_complete() {
            PushOutcome::Complete
        } else if learned || self.decoded_source > decoded_before {
            PushOutcome::Progress {
                decoded_source: self.decoded_source,
            }
        } else {
            PushOutcome::Useless
        })
    }

    /// Marks variable `var` as known and cascades the peeling.
    fn learn(&mut self, var: usize, value: Vec<u8>) {
        debug_assert!(!self.known[var]);
        if var < self.matrix.k() {
            self.decoded_source += 1;
        }
        self.known[var] = true;
        self.var_value[var] = Some(value);
        self.track_alloc();
        let mut stack = vec![var];

        while let Some(v) = stack.pop() {
            // Sources are retained (they are the output), so their value is
            // cloned for processing; a parity value is consumed here — after
            // this pass through its equations it is never read again.
            let value = if v < self.matrix.k() {
                self.var_value[v]
                    .clone()
                    .expect("variable on stack is known")
            } else {
                let taken = self.var_value[v]
                    .take()
                    .expect("variable on stack is known");
                self.memory.current_symbols -= 1;
                taken
            };
            for &e in self.matrix.col(v) {
                let e = e as usize;
                if self.eq_unknowns[e] == 0 {
                    continue; // equation already fully resolved
                }
                if self.eq_acc[e].is_none() {
                    self.eq_acc[e] = Some(vec![0u8; self.symbol_len]);
                    // Inline track_alloc: &mut self is unavailable while
                    // iterating the matrix column (field-precise borrows).
                    self.memory.current_symbols += 1;
                    self.memory.peak_symbols =
                        self.memory.peak_symbols.max(self.memory.current_symbols);
                }
                let acc = self.eq_acc[e].as_mut().expect("just ensured");
                xor_slice(acc, &value);
                self.eq_unknowns[e] -= 1;
                if self.eq_unknowns[e] == 1 {
                    // One unprocessed variable left. If it is still globally
                    // unknown, its value is the accumulator (the XOR of all
                    // the others, since the row XORs to zero). It may instead
                    // already be known but pending on the stack — then the
                    // equation taught us nothing new and is simply spent.
                    let unknown = self
                        .matrix
                        .row(e)
                        .iter()
                        .map(|&c| c as usize)
                        .find(|&c| !self.known[c]);
                    match unknown {
                        Some(u) => {
                            // The accumulator buffer is moved, not freed:
                            // it becomes the variable's value (net zero).
                            let solved =
                                self.eq_acc[e].take().expect("accumulator allocated above");
                            self.eq_unknowns[e] = 0;
                            if u < self.matrix.k() {
                                self.decoded_source += 1;
                            }
                            self.known[u] = true;
                            self.var_value[u] = Some(solved);
                            stack.push(u);
                        }
                        None => {
                            self.eq_unknowns[e] = 0;
                            if self.eq_acc[e].take().is_some() {
                                self.memory.current_symbols -= 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// True once all `k` source packets are known.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.decoded_source == self.matrix.k()
    }

    /// Source packets currently known (received or solved).
    #[inline]
    pub fn decoded_source(&self) -> usize {
        self.decoded_source
    }

    /// Total packets pushed, duplicates included.
    #[inline]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Current and peak payload-buffer usage (§7's memory metric).
    #[inline]
    pub fn memory_stats(&self) -> MemoryStats {
        self.memory
    }

    /// Returns the recovered source packets once complete.
    pub fn into_source(mut self) -> Option<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return None;
        }
        let k = self.matrix.k();
        let mut out = Vec::with_capacity(k);
        for v in 0..k {
            out.push(self.var_value[v].take().expect("complete decoder"));
        }
        Some(out)
    }

    /// Peeks at a recovered source packet (None until it is known).
    pub fn source_packet(&self, idx: usize) -> Option<&[u8]> {
        assert!(idx < self.matrix.k(), "source index out of range");
        self.var_value[idx].as_deref()
    }

    /// Whether a variable (source or parity) is known. Parity values are
    /// freed after use, so "known" does not imply the bytes are still held.
    pub fn is_known(&self, id: u32) -> bool {
        self.known[id as usize]
    }

    // ----- crate-private hooks for the hybrid ML decoder (`crate::gauss`) --

    /// The shared parity-check matrix.
    pub(crate) fn matrix(&self) -> &SparseMatrix {
        &self.matrix
    }

    /// Symbol length this decoder was constructed with.
    pub(crate) fn symbol_len(&self) -> usize {
        self.symbol_len
    }

    /// XOR of the known variables already folded into equation `e`
    /// (`None` ⇒ nothing folded yet, i.e. an all-zero accumulator).
    pub(crate) fn eq_accumulator(&self, e: usize) -> Option<&[u8]> {
        self.eq_acc[e].as_deref()
    }

    /// Injects an externally-solved variable value (from Gaussian
    /// elimination) and lets the peeling cascade run on it. A no-op if the
    /// variable became known in the meantime (an earlier injection's cascade
    /// may already have solved it). Does **not** count as a received packet.
    pub(crate) fn inject_solved(&mut self, var: usize, value: Vec<u8>) {
        if !self.known[var] {
            self.learn(var, value);
        }
    }
}

impl core::fmt::Debug for Decoder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Decoder(k={}, decoded={}, received={})",
            self.matrix.k(),
            self.decoded_source,
            self.received
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encoder, LdgmParams, RightSide};
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn setup(
        k: usize,
        n: usize,
        right: RightSide,
        seed: u64,
        sym: usize,
    ) -> (Arc<SparseMatrix>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let m = Arc::new(SparseMatrix::build(LdgmParams::new(k, n, right, seed)).unwrap());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xABCD);
        let src: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..sym).map(|_| rng.gen()).collect())
            .collect();
        let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
        let parity = Encoder::new(&m).encode(&refs).unwrap();
        (m, src, parity)
    }

    #[test]
    fn decodes_from_all_source_packets() {
        let (m, src, _) = setup(20, 50, RightSide::Staircase, 1, 8);
        let mut d = Decoder::new(m.clone(), 8);
        for (i, s) in src.iter().enumerate() {
            let out = d.push(i as u32, s).unwrap();
            if i + 1 == src.len() {
                assert!(out.is_complete());
            }
        }
        assert_eq!(d.into_source().unwrap(), src);
    }

    #[test]
    fn decodes_through_random_mixed_reception() {
        for right in [
            RightSide::Identity,
            RightSide::Staircase,
            RightSide::Triangle,
        ] {
            let (m, src, parity) = setup(40, 100, right, 3, 16);
            let mut packets: Vec<(u32, &[u8])> = Vec::new();
            for (i, s) in src.iter().enumerate() {
                packets.push((i as u32, s));
            }
            for (i, p) in parity.iter().enumerate() {
                packets.push(((40 + i) as u32, p));
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
            packets.shuffle(&mut rng);

            let mut d = Decoder::new(m.clone(), 16);
            let mut complete_at = None;
            for (i, (id, pl)) in packets.iter().enumerate() {
                if d.push(*id, pl).unwrap().is_complete() {
                    complete_at = Some(i + 1);
                    break;
                }
            }
            let complete_at = complete_at.expect("all packets received must decode");
            assert!(complete_at >= 40, "cannot decode below k packets");
            assert_eq!(d.into_source().unwrap(), src, "{right}");
        }
    }

    #[test]
    fn push_batch_matches_sequential_push() {
        let (m, src, parity) = setup(40, 100, RightSide::Staircase, 8, 8);
        let mut batched = Decoder::new(m.clone(), 8);
        let mut sequential = Decoder::new(m.clone(), 8);
        let all: Vec<(u32, &[u8])> = src
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_slice()))
            .chain(
                parity
                    .iter()
                    .enumerate()
                    .map(|(i, p)| ((40 + i) as u32, p.as_slice())),
            )
            .collect();
        for window in all.chunks(13) {
            batched.push_batch(window).unwrap();
            for &(id, payload) in window {
                sequential.push(id, payload).unwrap();
            }
            assert_eq!(batched.decoded_source(), sequential.decoded_source());
            assert_eq!(batched.received(), sequential.received());
        }
        assert!(batched.is_complete());
        assert_eq!(batched.into_source().unwrap(), src);
    }

    #[test]
    fn push_batch_outcomes() {
        let (m, src, _) = setup(10, 30, RightSide::Staircase, 5, 4);
        let mut d = Decoder::new(m.clone(), 4);
        let first: Vec<(u32, &[u8])> = vec![(0, &src[0]), (1, &src[1])];
        assert!(matches!(
            d.push_batch(&first).unwrap(),
            PushOutcome::Progress { decoded_source: 2 }
        ));
        // A window of pure duplicates is useless, not progress.
        assert_eq!(d.push_batch(&first).unwrap(), PushOutcome::Useless);
        assert_eq!(d.received(), 4);
        // All-or-nothing validation: a bad id rejects the whole batch.
        let bad: Vec<(u32, &[u8])> = vec![(2, &src[2]), (99, &src[3])];
        assert!(d.push_batch(&bad).is_err());
        assert_eq!(d.received(), 4, "rejected batch must consume nothing");
        assert_eq!(d.decoded_source(), 2);
        // Completing batch reports Complete.
        let rest: Vec<(u32, &[u8])> = (2..10).map(|i| (i as u32, src[i].as_slice())).collect();
        assert_eq!(d.push_batch(&rest).unwrap(), PushOutcome::Complete);
    }

    #[test]
    fn duplicate_packets_are_useless() {
        let (m, src, _) = setup(10, 30, RightSide::Staircase, 5, 4);
        let mut d = Decoder::new(m.clone(), 4);
        assert!(matches!(
            d.push(0, &src[0]).unwrap(),
            PushOutcome::Progress { .. }
        ));
        assert_eq!(d.push(0, &src[0]).unwrap(), PushOutcome::Useless);
        assert_eq!(d.received(), 2);
    }

    #[test]
    fn bad_id_rejected() {
        let (m, _, _) = setup(10, 30, RightSide::Staircase, 5, 4);
        let mut d = Decoder::new(m.clone(), 4);
        assert_eq!(
            d.push(30, &[0u8; 4]),
            Err(LdgmError::BadPacketId { id: 30, n: 30 })
        );
    }

    #[test]
    fn wrong_symbol_length_rejected() {
        let (m, _, _) = setup(10, 30, RightSide::Staircase, 5, 4);
        let mut d = Decoder::new(m.clone(), 4);
        assert!(matches!(
            d.push(0, &[0u8; 5]),
            Err(LdgmError::SymbolLengthMismatch { .. })
        ));
    }

    #[test]
    fn parity_only_reception_needs_at_least_one_source() {
        // Paper §4.5: LDGM-* cannot decode from parity alone, and with p = 0
        // they "need exactly one source packet to decode the content".
        // Parameters chosen so every H1 row has weight exactly 2
        // (3k/m = 300/150): with all parity known, every equation still has
        // two unknown sources, so peeling cannot start.
        let k = 100;
        let (m, src, parity) = setup(k, 250, RightSide::Staircase, 9, 4);
        let mut d = Decoder::new(m.clone(), 4);
        for (i, p) in parity.iter().enumerate() {
            let out = d.push((k + i) as u32, p).unwrap();
            assert!(!out.is_complete(), "decoded from parity alone?!");
        }
        assert_eq!(d.decoded_source(), 0, "no equation should have activated");
        // Now feed source packets one at a time; the cascade must finish
        // after only a handful (exactly 1 at paper scale; allow a few at
        // k = 100 where the check graph may have more than one component).
        let mut fed = 0;
        for (i, s) in src.iter().enumerate() {
            fed += 1;
            if d.push(i as u32, s).unwrap().is_complete() {
                break;
            }
        }
        assert!(d.is_complete(), "all parity + all source must decode");
        assert!(fed <= 10, "needed {fed} source packets, expected a handful");
        assert_eq!(d.into_source().unwrap(), src);
    }

    #[test]
    fn into_source_is_none_when_incomplete() {
        let (m, src, _) = setup(10, 30, RightSide::Triangle, 13, 4);
        let mut d = Decoder::new(m.clone(), 4);
        d.push(0, &src[0]).unwrap();
        assert!(d.into_source().is_none());
    }

    #[test]
    fn source_packet_peek() {
        let (m, src, _) = setup(10, 30, RightSide::Staircase, 15, 4);
        let mut d = Decoder::new(m.clone(), 4);
        assert!(d.source_packet(0).is_none());
        d.push(0, &src[0]).unwrap();
        assert_eq!(d.source_packet(0), Some(src[0].as_slice()));
    }

    #[test]
    fn memory_stats_track_buffers() {
        let (m, src, parity) = setup(50, 125, RightSide::Staircase, 33, 16);
        let mut d = Decoder::new(m.clone(), 16);
        assert_eq!(d.memory_stats().peak_symbols, 0);
        // Push everything in shuffled order; memory grows, peaks, and the
        // invariants hold throughout.
        let mut order: Vec<u32> = (0..125).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        order.shuffle(&mut rng);
        for &id in &order {
            let payload: &[u8] = if (id as usize) < 50 {
                &src[id as usize]
            } else {
                &parity[id as usize - 50]
            };
            d.push(id, payload).unwrap();
            let stats = d.memory_stats();
            assert!(stats.current_symbols <= stats.peak_symbols);
            // Bound: variables (n) + accumulators (m).
            assert!(stats.peak_symbols <= 125 + 75);
            if d.is_complete() {
                break;
            }
        }
        let stats = d.memory_stats();
        assert!(stats.peak_symbols >= 50, "at least the k sources are held");
        assert_eq!(stats.symbol_len, 16);
        assert_eq!(stats.peak_bytes(), stats.peak_symbols * 16);
    }

    #[test]
    fn streaming_decoder_memory_is_bounded_by_k_plus_m() {
        // §7's future-work metric made concrete. Because parity values are
        // freed once folded into their equations, the decoder never holds
        // more than the k output symbols plus one accumulator per check
        // equation — for ANY reception order. Parity-first reception is in
        // fact the memory-friendliest: almost nothing but accumulators.
        let k = 100;
        let n = 250;
        let m_checks = n - k;
        let (m, src, parity) = setup(k, n, RightSide::Staircase, 44, 8);
        let run = |order: Vec<u32>| {
            let mut d = Decoder::new(m.clone(), 8);
            for &id in &order {
                let payload: &[u8] = if (id as usize) < k {
                    &src[id as usize]
                } else {
                    &parity[id as usize - k]
                };
                if d.push(id, payload).unwrap().is_complete() {
                    break;
                }
            }
            assert!(d.is_complete());
            d.memory_stats().peak_symbols
        };
        let source_first: Vec<u32> = (0..n as u32).collect();
        let parity_first: Vec<u32> = (k as u32..n as u32).chain(0..k as u32).collect();
        let a = run(source_first);
        let b = run(parity_first);
        // Hard bound for any order (+1 transient on the cascade stack).
        assert!(a <= k + m_checks + 1, "source-first peak {a}");
        assert!(b <= k + m_checks + 1, "parity-first peak {b}");
        // Source-first retains all k output symbols plus pending
        // accumulators; parity-first streams and peaks near m alone.
        assert!(a >= k, "source-first must at least hold the output");
        assert!(
            b <= m_checks + 8,
            "parity-first should peak near the accumulator count, got {b}"
        );
        assert!(b < a, "streaming makes parity-first the cheaper order");
    }

    /// Losing a moderate number of random packets must still decode with the
    /// surviving prefix of a shuffled stream — exercised across all variants
    /// and many seeds (statistical smoke test for recovery capability).
    #[test]
    fn recovers_with_margin_over_k() {
        let k = 100;
        let n = 250;
        for right in [RightSide::Staircase, RightSide::Triangle] {
            let mut success = 0;
            for seed in 0..20u64 {
                let (m, src, parity) = setup(k, n, right, seed, 4);
                let mut packets: Vec<(u32, Vec<u8>)> = Vec::new();
                for (i, s) in src.iter().enumerate() {
                    packets.push((i as u32, s.clone()));
                }
                for (i, p) in parity.iter().enumerate() {
                    packets.push(((k + i) as u32, p.clone()));
                }
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xF00);
                packets.shuffle(&mut rng);
                // Feed only 1.4*k packets (a 40% margin over k).
                let budget = (k as f64 * 1.4) as usize;
                let mut d = Decoder::new(m.clone(), 4);
                for (id, pl) in packets.iter().take(budget) {
                    if d.push(*id, pl).unwrap().is_complete() {
                        break;
                    }
                }
                if d.is_complete() {
                    assert_eq!(d.into_source().unwrap(), src);
                    success += 1;
                }
            }
            assert!(
                success >= 18,
                "{right}: only {success}/20 decoded with 40% margin"
            );
        }
    }
}
