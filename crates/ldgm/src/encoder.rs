//! LDGM encoding: forward substitution over the parity-check rows.
//!
//! Row `i` is the equation `0 = (XOR of its source packets) ^ p_{i-1}-terms
//! ^ p_i`, and by construction (no forward parity references) parity `p_i`
//! can be computed row by row: the XOR of every other variable in the row.
//! Encoding cost is one XOR per non-zero entry — this is why LDGM encoding
//! is an order of magnitude faster than Reed-Solomon (paper §6.2), which the
//! `speed_codecs` bench measures.

use fec_gf256::kernels::xor_acc_many;

use crate::{LdgmError, SparseMatrix};

/// Encoder for an LDGM code instance.
///
/// Borrows the matrix: the same (potentially large) matrix is shared by the
/// encoder, the payload decoder and the structural decoder.
#[derive(Debug, Clone, Copy)]
pub struct Encoder<'m> {
    matrix: &'m SparseMatrix,
}

impl<'m> Encoder<'m> {
    /// Creates an encoder over a parity-check matrix.
    pub fn new(matrix: &'m SparseMatrix) -> Encoder<'m> {
        Encoder { matrix }
    }

    /// Computes all `n - k` parity packets for the given source packets.
    pub fn encode(&self, source: &[&[u8]]) -> Result<Vec<Vec<u8>>, LdgmError> {
        let k = self.matrix.k();
        if source.len() != k {
            return Err(LdgmError::WrongSourceCount {
                got: source.len(),
                expected: k,
            });
        }
        let sym_len = source.first().map_or(0, |s| s.len());
        for s in source {
            if s.len() != sym_len {
                return Err(LdgmError::SymbolLengthMismatch {
                    expected: sym_len,
                    got: s.len(),
                });
            }
        }

        let m = self.matrix.num_checks();
        let mut parity: Vec<Vec<u8>> = Vec::with_capacity(m);
        for i in 0..m {
            let mut acc = vec![0u8; sym_len];
            // Gather the whole row and apply it as ONE fused multi-source
            // XOR: the accumulator streams through the kernel backend once
            // per row instead of once per non-zero entry.
            let row: Vec<&[u8]> = self
                .matrix
                .row(i)
                .iter()
                .filter_map(|&c| {
                    let c = c as usize;
                    if c < k {
                        Some(source[c])
                    } else if c != k + i {
                        // Earlier parity (guaranteed c - k < i by
                        // construction).
                        Some(parity[c - k].as_slice())
                    } else {
                        None
                    }
                })
                .collect();
            xor_acc_many(&mut acc, &row);
            parity.push(acc);
        }
        Ok(parity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LdgmParams, RightSide};
    use fec_gf256::kernels::xor_slice;
    use rand::{Rng, SeedableRng};

    fn source(k: usize, sym: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..sym).map(|_| rng.gen()).collect())
            .collect()
    }

    fn refs(s: &[Vec<u8>]) -> Vec<&[u8]> {
        s.iter().map(|x| x.as_slice()).collect()
    }

    /// Every check equation must XOR to zero over (source ++ parity).
    fn assert_all_checks_hold(m: &SparseMatrix, src: &[Vec<u8>], parity: &[Vec<u8>]) {
        let sym = src.first().map_or(0, |s| s.len());
        for i in 0..m.num_checks() {
            let mut acc = vec![0u8; sym];
            for &c in m.row(i) {
                let c = c as usize;
                let sym_ref = if c < m.k() {
                    &src[c]
                } else {
                    &parity[c - m.k()]
                };
                xor_slice(&mut acc, sym_ref);
            }
            assert!(acc.iter().all(|&b| b == 0), "check {i} violated");
        }
    }

    #[test]
    fn all_equations_hold_for_each_variant() {
        for right in [
            RightSide::Identity,
            RightSide::Staircase,
            RightSide::Triangle,
        ] {
            let m = SparseMatrix::build(LdgmParams::new(50, 125, right, 21)).unwrap();
            let src = source(50, 16, 1);
            let parity = Encoder::new(&m).encode(&refs(&src)).unwrap();
            assert_eq!(parity.len(), 75);
            assert_all_checks_hold(&m, &src, &parity);
        }
    }

    #[test]
    fn wrong_source_count_rejected() {
        let m = SparseMatrix::build(LdgmParams::new(10, 25, RightSide::Staircase, 1)).unwrap();
        let src = source(9, 8, 2);
        assert_eq!(
            Encoder::new(&m).encode(&refs(&src)),
            Err(LdgmError::WrongSourceCount {
                got: 9,
                expected: 10
            })
        );
    }

    #[test]
    fn mixed_symbol_lengths_rejected() {
        let m = SparseMatrix::build(LdgmParams::new(4, 10, RightSide::Staircase, 1)).unwrap();
        let mut src = source(4, 8, 3);
        src[2].push(0xFF);
        assert!(matches!(
            Encoder::new(&m).encode(&refs(&src)),
            Err(LdgmError::SymbolLengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_length_symbols_supported() {
        let m = SparseMatrix::build(LdgmParams::new(4, 10, RightSide::Triangle, 1)).unwrap();
        let src: Vec<Vec<u8>> = vec![vec![]; 4];
        let parity = Encoder::new(&m).encode(&refs(&src)).unwrap();
        assert!(parity.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn encoding_is_linear() {
        let m = SparseMatrix::build(LdgmParams::new(30, 75, RightSide::Triangle, 5)).unwrap();
        let enc = Encoder::new(&m);
        let a = source(30, 8, 10);
        let b = source(30, 8, 11);
        let ab: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(u, v)| u ^ v).collect())
            .collect();
        let pa = enc.encode(&refs(&a)).unwrap();
        let pb = enc.encode(&refs(&b)).unwrap();
        let pab = enc.encode(&refs(&ab)).unwrap();
        for i in 0..pa.len() {
            let x: Vec<u8> = pa[i].iter().zip(&pb[i]).map(|(u, v)| u ^ v).collect();
            assert_eq!(x, pab[i], "parity {i}");
        }
    }
}
