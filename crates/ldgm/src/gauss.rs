//! Hybrid peeling + Gaussian-elimination (“maximum-likelihood”) decoding.
//!
//! The paper evaluates LDGM codes under the pure **iterative (peeling)**
//! decoder of §2.3.2, and all its inefficiency-ratio surfaces are peeling
//! numbers. Peeling is linear-time but suboptimal: it stalls on *stopping
//! sets* — residual systems where every remaining equation still has ≥ 2
//! unknowns — even when the received packets carry enough information to
//! solve the object. The optimal erasure decoder simply solves that residual
//! linear system over GF(2) by Gaussian elimination; this is what
//! later-generation codecs standardised (e.g. RFC 5170's LDPC-Staircase
//! “full” decoding and Raptor's inactivation decoding), and the paper lists
//! better decoders among its future works (§7).
//!
//! This module provides both halves of the comparison:
//!
//! * [`MlStructuralDecoder`] — index-only, for Monte-Carlo sweeps: peels
//!   per packet, and answers “would Gaussian elimination finish *now*?” on
//!   demand. [`ml_necessary`] binary-searches an arrival order for the
//!   exact ML completion point (decodability is monotone in the received
//!   set, so bisection is sound).
//! * [`MlDecoder`] — payload-carrying: wraps the peeling [`Decoder`] and,
//!   when asked, extracts the residual system (unknown variables ×
//!   still-live equations, with the equations' XOR accumulators as
//!   right-hand sides), reduces it with [`BitMatrix::reduce`], and injects
//!   every *determined* variable back into the peeler.
//!
//! Determinedness, not full rank, is the success criterion: the receiver
//! only needs the `k` source packets, so a rank-deficient residual system is
//! fine as long as every unknown **source** variable is pinned. In reduced
//! row echelon form a variable is determined exactly when it is a pivot
//! whose row has weight 1 (no free-variable contribution); the module tests
//! include the counterexamples that justify the rule.

use std::sync::Arc;

use crate::bitmat::{BitMatrix, RowOp};
use crate::{Decoder, LdgmError, PushOutcome, SparseMatrix, StructuralDecoder};

use fec_gf256::kernels::xor_slice;

/// The residual GF(2) system of a stalled peeling decoder: one row per
/// still-live check equation, one column per unknown variable.
struct Residual {
    /// Variable id of each matrix column.
    unknown_ids: Vec<u32>,
    /// Row index → check-equation index (for RHS extraction).
    equations: Vec<usize>,
    /// The bit matrix (rows × unknowns).
    a: BitMatrix,
}

impl Residual {
    /// Builds the residual system from a known-variable predicate.
    fn build(matrix: &SparseMatrix, is_known: impl Fn(u32) -> bool) -> Residual {
        let mut col_of = vec![u32::MAX; matrix.n()];
        let mut unknown_ids = Vec::new();
        for v in 0..matrix.n() as u32 {
            if !is_known(v) {
                col_of[v as usize] = unknown_ids.len() as u32;
                unknown_ids.push(v);
            }
        }
        let mut equations = Vec::new();
        for e in 0..matrix.num_checks() {
            if matrix.row(e).iter().any(|&v| !is_known(v)) {
                equations.push(e);
            }
        }
        let mut a = BitMatrix::zero(equations.len(), unknown_ids.len());
        for (r, &e) in equations.iter().enumerate() {
            for &v in matrix.row(e) {
                let c = col_of[v as usize];
                if c != u32::MAX {
                    a.set(r, c as usize, true);
                }
            }
        }
        Residual {
            unknown_ids,
            equations,
            a,
        }
    }

    /// Reduces the system (mirroring row ops through `on_op`) and returns
    /// `(row, variable_id)` for every **determined** unknown: a pivot whose
    /// RREF row has no free-variable entries, i.e. row weight exactly 1.
    fn determine(&mut self, on_op: impl FnMut(RowOp)) -> Vec<(usize, u32)> {
        let pivots = self.a.reduce(on_op);
        pivots
            .into_iter()
            .filter(|&(r, _)| self.a.row_weight(r) == 1)
            .map(|(r, c)| (r, self.unknown_ids[c]))
            .collect()
    }

    /// True when every unknown **source** variable is determined. (Parity
    /// variables may stay free; the receiver does not need them.)
    fn all_sources_determined(&mut self, k: usize) -> bool {
        let unknown_sources = self
            .unknown_ids
            .iter()
            .filter(|&&v| (v as usize) < k)
            .count();
        if unknown_sources == 0 {
            return true;
        }
        let determined = self.determine(|_| {});
        determined
            .iter()
            .filter(|&&(_, v)| (v as usize) < k)
            .count()
            == unknown_sources
    }
}

/// Index-only hybrid decoder for Monte-Carlo sweeps.
///
/// `push` runs plain peeling (identical to [`StructuralDecoder`]);
/// [`ml_complete`](Self::ml_complete) answers whether Gaussian elimination
/// over the residual system would recover all remaining source packets from
/// what has been received so far.
#[derive(Debug)]
pub struct MlStructuralDecoder<'m> {
    peeler: StructuralDecoder<'m>,
    matrix: &'m SparseMatrix,
}

impl<'m> MlStructuralDecoder<'m> {
    /// Creates a decoder over a shared matrix.
    pub fn new(matrix: &'m SparseMatrix) -> MlStructuralDecoder<'m> {
        MlStructuralDecoder {
            peeler: StructuralDecoder::new(matrix),
            matrix,
        }
    }

    /// Feeds one received packet id through the peeling pass; returns `true`
    /// once peeling alone has recovered all `k` source packets.
    pub fn push(&mut self, id: u32) -> bool {
        self.peeler.push(id)
    }

    /// Whether plain peeling has already finished.
    pub fn peeling_complete(&self) -> bool {
        self.peeler.is_complete()
    }

    /// Would Gaussian elimination finish *now*? Runs a fresh elimination
    /// over the residual system (O(rows · unknowns² / 64)); call it when
    /// needed, not per packet.
    pub fn ml_complete(&self) -> bool {
        if self.peeler.is_complete() {
            return true;
        }
        let mut residual = Residual::build(self.matrix, |v| self.peeler.is_known(v));
        residual.all_sources_determined(self.matrix.k())
    }

    /// Total packets pushed, duplicates included.
    pub fn received(&self) -> u64 {
        self.peeler.received()
    }
}

/// Smallest number of packets of `order` (a transmission/reception order,
/// deduplicated or not) after which **ML decoding** completes, or `None` if
/// even the full sequence is insufficient.
///
/// Uses bisection over prefixes: receiving more packets never makes an
/// erasure system less solvable, so “ML-decodable after `i` packets” is
/// monotone in `i`. Each probe replays a prefix through a fresh peeler and
/// runs one elimination.
pub fn ml_necessary(matrix: &SparseMatrix, order: &[u32]) -> Option<usize> {
    let k = matrix.k();
    if order.len() < k {
        return None;
    }
    let decodable_at = |count: usize| -> bool {
        let mut dec = MlStructuralDecoder::new(matrix);
        for &id in &order[..count] {
            if dec.push(id) {
                return true;
            }
        }
        dec.ml_complete()
    };
    if !decodable_at(order.len()) {
        return None;
    }
    // Invariant: decodable_at(hi) is true, decodable_at(lo - 1)… unknown;
    // classic first-true bisection over [k, len].
    let (mut lo, mut hi) = (k, order.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if decodable_at(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Smallest number of packets of `order` after which **peeling** completes
/// (the paper's decoder), or `None`. Companion to [`ml_necessary`] so the
/// ablation bench reads symmetrically.
pub fn peeling_necessary(matrix: &SparseMatrix, order: &[u32]) -> Option<usize> {
    let mut dec = StructuralDecoder::new(matrix);
    for (i, &id) in order.iter().enumerate() {
        if dec.push(id) {
            return Some(i + 1);
        }
    }
    None
}

/// Payload-carrying hybrid decoder: peels per packet, eliminates on demand.
///
/// Typical use: `push` everything the channel delivers; when the stream ends
/// (or at checkpoints), call [`try_complete`](Self::try_complete). If it
/// returns `true`, [`into_source`](Self::into_source) yields the object.
pub struct MlDecoder {
    inner: Decoder,
}

impl MlDecoder {
    /// Creates a decoder for packets of `symbol_len` bytes.
    pub fn new(matrix: Arc<SparseMatrix>, symbol_len: usize) -> MlDecoder {
        MlDecoder {
            inner: Decoder::new(matrix, symbol_len),
        }
    }

    /// Feeds one received packet through the peeling pass.
    pub fn push(&mut self, id: u32, payload: &[u8]) -> Result<PushOutcome, LdgmError> {
        self.inner.push(id, payload)
    }

    /// True once all `k` source packets are known (by peeling or by a
    /// previous successful elimination).
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// Source packets currently known.
    pub fn decoded_source(&self) -> usize {
        self.inner.decoded_source()
    }

    /// Total packets pushed, duplicates included.
    pub fn received(&self) -> u64 {
        self.inner.received()
    }

    /// Runs Gaussian elimination over the residual system and injects every
    /// determined variable back into the peeler (whose cascade may solve
    /// further ones, though elimination already determines everything
    /// determinable). Returns `true` if the object is now fully decoded.
    ///
    /// Cost: one dense elimination over (live equations × unknowns) plus one
    /// payload XOR per mirrored row operation. Near the decoding threshold
    /// the residual is small; far below it, this is wasted work — callers
    /// should gate on `received() >= k`.
    pub fn try_complete(&mut self) -> bool {
        if self.inner.is_complete() {
            return true;
        }
        let mut residual = Residual::build(self.inner.matrix(), |v| self.inner.is_known(v));

        // Right-hand sides: the equations' accumulators (XOR of their known
        // variables). `None` accumulator ⇒ nothing folded yet ⇒ zero RHS.
        let symbol_len = self.inner.symbol_len();
        let mut rhs: Vec<Vec<u8>> = residual
            .equations
            .iter()
            .map(|&e| {
                self.inner
                    .eq_accumulator(e)
                    .map(|acc| acc.to_vec())
                    .unwrap_or_else(|| vec![0u8; symbol_len])
            })
            .collect();

        // Reduce, mirroring every row operation onto the RHS vector.
        let determined = residual.determine(|op| match op {
            RowOp::Xor { src, dst } => {
                let (s, d) = if src < dst {
                    let (head, tail) = rhs.split_at_mut(dst);
                    (&head[src], &mut tail[0])
                } else {
                    let (head, tail) = rhs.split_at_mut(src);
                    (&tail[0], &mut head[dst])
                };
                xor_slice(d, s);
            }
            RowOp::Swap { a, b } => rhs.swap(a, b),
        });

        // A determined pivot row reads `x_v = rhs[row]` directly (its row
        // has no other unknowns left).
        for (row, var) in determined {
            self.inner
                .inject_solved(var as usize, std::mem::take(&mut rhs[row]));
        }
        self.inner.is_complete()
    }

    /// Returns the recovered source packets once complete.
    pub fn into_source(self) -> Option<Vec<Vec<u8>>> {
        self.inner.into_source()
    }

    /// Peeks at a recovered source packet.
    pub fn source_packet(&self, idx: usize) -> Option<&[u8]> {
        self.inner.source_packet(idx)
    }
}

impl core::fmt::Debug for MlDecoder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Ml{:?}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encoder, LdgmParams, RightSide};
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn build(k: usize, n: usize, right: RightSide, seed: u64) -> Arc<SparseMatrix> {
        Arc::new(SparseMatrix::build(LdgmParams::new(k, n, right, seed)).unwrap())
    }

    fn random_payloads(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen::<u8>()).collect())
            .collect()
    }

    /// ML must succeed whenever peeling succeeds, and never need more
    /// packets — on every random instance.
    #[test]
    fn ml_dominates_peeling() {
        for right in [RightSide::Staircase, RightSide::Triangle] {
            for seed in 0..20u64 {
                let m = build(80, 200, right, seed);
                let mut order: Vec<u32> = (0..200).collect();
                order.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0xC0DE));
                let peel = peeling_necessary(&m, &order);
                let ml = ml_necessary(&m, &order);
                if let Some(p) = peel {
                    let l = ml.expect("ML succeeds whenever peeling does");
                    assert!(l <= p, "{right} seed {seed}: ml {l} > peeling {p}");
                }
                if let Some(l) = ml {
                    assert!(l >= 80, "information-theoretic floor");
                }
            }
        }
    }

    /// ML typically reaches the information-theoretic floor region that
    /// peeling cannot: across random orders the mean ML overhead must be
    /// strictly below the mean peeling overhead.
    #[test]
    fn ml_strictly_better_on_average() {
        let m = build(150, 375, RightSide::Staircase, 3);
        let (mut peel_sum, mut ml_sum, mut count) = (0usize, 0usize, 0usize);
        for seed in 0..30u64 {
            let mut order: Vec<u32> = (0..375).collect();
            order.shuffle(&mut SmallRng::seed_from_u64(seed));
            let (Some(p), Some(l)) = (peeling_necessary(&m, &order), ml_necessary(&m, &order))
            else {
                continue;
            };
            peel_sum += p;
            ml_sum += l;
            count += 1;
        }
        assert!(count >= 25, "most random orders must decode");
        assert!(
            ml_sum < peel_sum,
            "ML mean ({ml_sum}) must beat peeling mean ({peel_sum}) over {count} runs"
        );
    }

    /// Payload ML decode returns byte-exact source data.
    #[test]
    fn payload_ml_recovers_exact_bytes() {
        for right in [
            RightSide::Identity,
            RightSide::Staircase,
            RightSide::Triangle,
        ] {
            for seed in 0..8u64 {
                let (k, n, len) = (60, 150, 16);
                let m = build(k, n, right, seed);
                let src = random_payloads(k, len, seed ^ 0xFEED);
                let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
                let parity = Encoder::new(&m).encode(&refs).unwrap();

                let mut order: Vec<u32> = (0..n as u32).collect();
                order.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0xD00D));

                // Feed exactly the ML-necessary prefix: the payload decoder
                // must then finish via try_complete().
                let Some(need) = ml_necessary(&m, &order) else {
                    continue;
                };
                let mut dec = MlDecoder::new(Arc::clone(&m), len);
                for &id in &order[..need] {
                    let payload: &[u8] = if (id as usize) < k {
                        &src[id as usize]
                    } else {
                        &parity[id as usize - k]
                    };
                    dec.push(id, payload).unwrap();
                }
                assert!(dec.try_complete(), "{right} seed {seed}");
                assert_eq!(dec.into_source().unwrap(), src, "{right} seed {seed}");
            }
        }
    }

    /// One packet short of the ML threshold, elimination must report failure
    /// (and not corrupt the decoder for a later retry).
    #[test]
    fn one_short_of_threshold_fails_then_recovers() {
        let (k, n, len) = (60, 150, 8);
        let m = build(k, n, RightSide::Staircase, 11);
        let src = random_payloads(k, len, 42);
        let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
        let parity = Encoder::new(&m).encode(&refs).unwrap();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(99));
        let need = ml_necessary(&m, &order).unwrap();
        assert!(need > 1);

        let payload_of = |id: u32| -> &[u8] {
            if (id as usize) < k {
                &src[id as usize]
            } else {
                &parity[id as usize - k]
            }
        };
        let mut dec = MlDecoder::new(Arc::clone(&m), len);
        for &id in &order[..need - 1] {
            dec.push(id, payload_of(id)).unwrap();
        }
        assert!(!dec.try_complete(), "must fail one packet short");
        // Delivering the final packet must now finish (possibly via a second
        // elimination): partial injections from the failed attempt must not
        // have corrupted state.
        dec.push(order[need - 1], payload_of(order[need - 1]))
            .unwrap();
        assert!(dec.try_complete());
        assert_eq!(dec.into_source().unwrap(), src);
    }

    /// The structural and payload ML decoders agree on success at the same
    /// reception count.
    #[test]
    fn structural_and_payload_ml_agree() {
        let (k, n, len) = (50, 125, 4);
        for seed in 0..10u64 {
            let m = build(k, n, RightSide::Triangle, seed);
            let src = random_payloads(k, len, seed);
            let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
            let parity = Encoder::new(&m).encode(&refs).unwrap();
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0xAB));
            for cut in [k, k + 5, k + 12, n] {
                let mut sd = MlStructuralDecoder::new(&m);
                let mut pd = MlDecoder::new(Arc::clone(&m), len);
                for &id in &order[..cut] {
                    sd.push(id);
                    let payload: &[u8] = if (id as usize) < k {
                        &src[id as usize]
                    } else {
                        &parity[id as usize - k]
                    };
                    pd.push(id, payload).unwrap();
                }
                assert_eq!(sd.ml_complete(), pd.try_complete(), "seed {seed} cut {cut}");
            }
        }
    }

    /// Fewer than k packets can never decode (information-theoretic bound),
    /// and ml_necessary must refuse short orders outright.
    #[test]
    fn below_k_is_hopeless() {
        let m = build(40, 100, RightSide::Staircase, 5);
        let order: Vec<u32> = (0..39).collect();
        assert_eq!(ml_necessary(&m, &order), None);
        let mut dec = MlStructuralDecoder::new(&m);
        for id in 0..30 {
            dec.push(id);
        }
        // 30 sources received: 10 still unknown, residual must not claim
        // victory... but all unknowns ARE determined? No: only 30 of 40
        // sources are known and nothing else was received, so ML cannot
        // finish.
        assert!(!dec.ml_complete());
    }

    /// Receiving all k source packets is always sufficient, and the ML path
    /// agrees with peeling there (no elimination needed).
    #[test]
    fn all_sources_trivially_complete() {
        let m = build(30, 75, RightSide::Triangle, 8);
        let mut dec = MlStructuralDecoder::new(&m);
        for id in 0..30 {
            let done = dec.push(id);
            assert_eq!(done, id == 29);
        }
        assert!(dec.peeling_complete() && dec.ml_complete());
    }

    /// Duplicate packets consume budget but never change decodability.
    #[test]
    fn duplicates_are_neutral_for_ml() {
        let m = build(40, 100, RightSide::Staircase, 21);
        let mut with_dups = MlStructuralDecoder::new(&m);
        let mut without = MlStructuralDecoder::new(&m);
        for id in 0..35u32 {
            with_dups.push(id);
            with_dups.push(id); // duplicate
            without.push(id);
        }
        assert_eq!(with_dups.ml_complete(), without.ml_complete());
        assert_eq!(with_dups.received(), 70);
    }
}
