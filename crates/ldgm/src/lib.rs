//! Low-Density Generator Matrix (LDGM) large-block erasure codes.
//!
//! This crate implements the paper's two large-block codes (§2.3) plus the
//! plain-LDGM ancestor they derive from:
//!
//! * **LDGM** — parity check matrix `H = [H1 | I]`: each parity packet is the
//!   XOR of the source packets in its equation.
//! * **LDGM Staircase** — `I` replaced by a staircase (double diagonal):
//!   each parity additionally depends on the previous one. Same encoding
//!   cost, much better erasure recovery.
//! * **LDGM Triangle** — the staircase plus a progressively-filled lower
//!   triangle, adding dependencies between distant parity packets.
//!
//! `H1` is regular with **left degree 3** (every source packet appears in
//! exactly 3 equations, paper §2.3.1), with row weights balanced to within
//! one edge. Matrix construction is deterministic given a seed, driven by a
//! self-contained Park-Miller PRNG ([`prng`]) in the spirit of RFC 5170, so
//! sender and receiver build bit-identical matrices from the seed alone.
//!
//! Unlike Reed-Solomon these codes are **not MDS**: a receiver needs
//! `inef_ratio * k` packets (`inef_ratio >= 1`, experimentally ~1.05–1.15)
//! for iterative decoding to finish — measuring that ratio under different
//! packet schedules and channels is the whole point of the paper.
//!
//! Two decoders share the same peeling schedule:
//! * [`Decoder`] moves payload bytes and reconstructs the object;
//! * [`StructuralDecoder`] tracks only indices and is what the Monte-Carlo
//!   sweeps run on. A cross-validation property test asserts the two agree
//!   packet-for-packet on every random instance.
//!
//! Beyond the paper's iterative decoder, the [`gauss`] module adds the
//! **hybrid peeling + Gaussian-elimination** (“maximum-likelihood”) decoders
//! that later-generation codecs standardised (RFC 5170 full decoding,
//! Raptor inactivation): [`MlDecoder`] / [`MlStructuralDecoder`] solve the
//! residual stopping-set system over GF(2) ([`bitmat`]) when peeling
//! stalls. The `ablation_ml` bench quantifies how much inefficiency the
//! paper's conclusions inherit from the suboptimal decoder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmat;
mod decoder;
mod encoder;
pub mod gauss;
mod matrix;
pub mod prng;
mod structural;

pub use decoder::{Decoder, MemoryStats, PushOutcome};
pub use encoder::Encoder;
pub use gauss::{ml_necessary, peeling_necessary, MlDecoder, MlStructuralDecoder};
pub use matrix::{LdgmError, LdgmParams, MatrixStats, RightSide, SparseMatrix, TriangleFill};
pub use structural::StructuralDecoder;

/// Default left degree (number of equations each source packet appears in).
/// The paper fixes this to 3 (§2.3.1); it is a parameter here so the
/// ablation benches can vary it.
pub const DEFAULT_LEFT_DEGREE: usize = 3;
