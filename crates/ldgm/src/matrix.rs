//! Sparse parity-check matrix construction for LDGM codes.
//!
//! The matrix `H` has `m = n - k` rows (check equations) and `n` columns
//! (variables: `k` source packets then `m` parity packets). It is stored in
//! both CSR (row → columns) and CSC (column → rows) form because encoding
//! walks rows while peeling decoding walks the column of each arriving
//! packet.

use core::fmt;

use crate::prng::PmRand;

/// Shape of the right-hand (parity) part of `H` (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RightSide {
    /// Plain LDGM: the identity matrix — each parity appears in exactly one
    /// equation. Kept as the ablation baseline; the paper shows it is weak.
    Identity,
    /// LDGM Staircase: identity plus the sub-diagonal, chaining each parity
    /// to the previous one.
    Staircase,
    /// LDGM Triangle: the staircase plus a progressively-filled lower
    /// triangle — each check equation `i >= 2` additionally references one
    /// uniformly-chosen earlier parity packet ([`TriangleFill::PerRowUniform`]),
    /// the "progressive dependency between check nodes" of the paper. Row
    /// weight grows by exactly one; early parity columns become high-degree
    /// hubs, which is what lets Triangle out-peel Staircase under random
    /// scheduling.
    ///
    /// The paper defers the exact rule to its reference \[15\]; this fill is
    /// our documented substitution (see DESIGN.md), selected empirically
    /// against the paper's appendix tables.
    Triangle,
}

impl RightSide {
    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RightSide::Identity => "ldgm",
            RightSide::Staircase => "staircase",
            RightSide::Triangle => "triangle",
        }
    }
}

impl fmt::Display for RightSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Construction parameters for an LDGM parity-check matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdgmParams {
    /// Number of source packets.
    pub k: usize,
    /// Total number of packets (source + parity).
    pub n: usize,
    /// Left degree: equations per source packet (paper: 3).
    pub left_degree: usize,
    /// Shape of the parity part.
    pub right: RightSide,
    /// Seed for the deterministic Park-Miller construction.
    pub seed: u64,
}

impl LdgmParams {
    /// Convenience constructor with the paper's left degree (3).
    pub fn new(k: usize, n: usize, right: RightSide, seed: u64) -> LdgmParams {
        LdgmParams {
            k,
            n,
            left_degree: crate::DEFAULT_LEFT_DEGREE,
            right,
            seed,
        }
    }
}

/// Alternative lower-triangle fill rules for LDGM Triangle.
///
/// The paper defers the exact rule to its reference \[15\]; the default
/// ([`TriangleFill::PerRowUniform`]) was selected empirically to reproduce
/// the paper's published behaviour: Triangle beats Staircase under random
/// scheduling (Tx_model_4) while losing to it under Tx_model_2 at low loss
/// — see DESIGN.md §"Substitutions" and EXPERIMENTS.md for measured deltas.
/// The other rules are kept for the `ablation_matrix` bench, which shows how
/// sensitive Triangle performance is to this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriangleFill {
    /// `extra` entries per parity column, at uniform-random rows below the
    /// staircase (deterministic from the construction seed).
    PerColumn(u8),
    /// Entries at geometrically growing offsets: column `j` gains rows
    /// `j + 2, j + 4, j + 8, …` (offset doubling). Denser; O(log m) per
    /// column.
    GeometricDouble,
    /// Like `GeometricDouble` but offsets triple: rows `j + 2, j + 5,
    /// j + 14, …`.
    GeometricTriple,
    /// A third diagonal right below the staircase (column `j` also appears
    /// in equation `j + 2`).
    ThirdDiagonal,
    /// `extra` entries per *row*: equation `i >= 2` additionally references
    /// distinct uniform-random earlier parity columns in `[0, i-2]`. Row
    /// weight grows by `extra`; early parity columns become high-degree hubs.
    PerRow(u8),
    /// One extra entry per *row*: equation `i >= 2` additionally references
    /// a uniform-random earlier parity column in `[0, i-2]`. Row weight grows
    /// by exactly one; early parity columns become high-degree hubs.
    PerRowUniform,
    /// One extra entry per row at column `floor((i-1)/2)`: check `i` depends
    /// on check `(i-1)/2`, a binary-tree-shaped "progressive dependency
    /// between check nodes".
    HalvingTree,
}

impl TriangleFill {
    /// The fill used by [`RightSide::Triangle`].
    pub const DEFAULT: TriangleFill = TriangleFill::PerRowUniform;
}

/// Errors from matrix construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LdgmError {
    /// Parameters violate `0 < k < n` or degree constraints.
    BadParameters {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A payload operation received symbols of inconsistent length.
    SymbolLengthMismatch {
        /// Length of the first symbol seen.
        expected: usize,
        /// Length of the offending symbol.
        got: usize,
    },
    /// `encode` was given a source count different from `k`.
    WrongSourceCount {
        /// Symbols supplied.
        got: usize,
        /// Symbols expected.
        expected: usize,
    },
    /// A packet ID outside `0..n` was pushed into a decoder.
    BadPacketId {
        /// Offending ID.
        id: u32,
        /// Total packet count `n`.
        n: usize,
    },
}

impl fmt::Display for LdgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdgmError::BadParameters { reason } => write!(f, "invalid LDGM parameters: {reason}"),
            LdgmError::SymbolLengthMismatch { expected, got } => {
                write!(f, "symbol length mismatch: expected {expected}, got {got}")
            }
            LdgmError::WrongSourceCount { got, expected } => {
                write!(
                    f,
                    "encode needs exactly k={expected} source symbols, got {got}"
                )
            }
            LdgmError::BadPacketId { id, n } => write!(f, "packet id {id} out of range (n={n})"),
        }
    }
}

impl std::error::Error for LdgmError {}

/// A binary sparse parity-check matrix in combined CSR + CSC form.
///
/// Row `i` encodes the equation "XOR of all variables in row `i` = 0";
/// variable `k + i` is the parity packet defined by row `i`.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    k: usize,
    n: usize,
    row_ptr: Vec<u32>,
    row_cols: Vec<u32>,
    col_ptr: Vec<u32>,
    col_rows: Vec<u32>,
    right: RightSide,
    seed: u64,
}

impl SparseMatrix {
    /// Builds the parity-check matrix for the given parameters.
    ///
    /// Deterministic: equal parameters (including seed) produce identical
    /// matrices, byte for byte — sender and receiver only share the seed.
    pub fn build(params: LdgmParams) -> Result<SparseMatrix, LdgmError> {
        SparseMatrix::build_with_fill(params, TriangleFill::DEFAULT)
    }

    /// Like [`SparseMatrix::build`] but with an explicit lower-triangle fill
    /// rule (only meaningful for [`RightSide::Triangle`]; ignored otherwise).
    /// Exposed for the ablation benches.
    pub fn build_with_fill(
        params: LdgmParams,
        fill: TriangleFill,
    ) -> Result<SparseMatrix, LdgmError> {
        let LdgmParams {
            k,
            n,
            left_degree,
            right,
            seed,
        } = params;
        if k == 0 {
            return Err(LdgmError::BadParameters {
                reason: "k must be > 0",
            });
        }
        if n <= k {
            return Err(LdgmError::BadParameters {
                reason: "n must exceed k (no parity otherwise)",
            });
        }
        if n > u32::MAX as usize / 2 {
            return Err(LdgmError::BadParameters {
                reason: "n too large for u32 ids",
            });
        }
        let m = n - k;
        if left_degree == 0 {
            return Err(LdgmError::BadParameters {
                reason: "left degree must be > 0",
            });
        }
        if left_degree > m {
            return Err(LdgmError::BadParameters {
                reason: "left degree exceeds the number of check equations",
            });
        }

        let mut rng = PmRand::new(seed);
        let mut entries: Vec<(u32, u32)> = Vec::new(); // (row, col)

        build_left_part(k, m, left_degree, &mut rng, &mut entries);
        build_right_part(k, m, right, fill, &mut rng, &mut entries);

        // Assemble CSR/CSC. Entries are unique by construction; a debug
        // assertion below guards against regressions.
        entries.sort_unstable();
        debug_assert!(
            entries.windows(2).all(|w| w[0] != w[1]),
            "duplicate entry in parity check matrix"
        );

        let nnz = entries.len();
        let mut row_ptr = vec![0u32; m + 1];
        let mut col_ptr = vec![0u32; n + 1];
        for &(r, c) in &entries {
            row_ptr[r as usize + 1] += 1;
            col_ptr[c as usize + 1] += 1;
        }
        for i in 0..m {
            row_ptr[i + 1] += row_ptr[i];
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut row_cols = vec![0u32; nnz];
        {
            let mut next = row_ptr.clone();
            for &(r, c) in &entries {
                let slot = next[r as usize];
                row_cols[slot as usize] = c;
                next[r as usize] += 1;
            }
        }
        let mut col_rows = vec![0u32; nnz];
        {
            let mut next = col_ptr.clone();
            for &(r, c) in &entries {
                let slot = next[c as usize];
                col_rows[slot as usize] = r;
                next[c as usize] += 1;
            }
        }

        Ok(SparseMatrix {
            k,
            n,
            row_ptr,
            row_cols,
            col_ptr,
            col_rows,
            right,
            seed,
        })
    }

    /// Number of source packets.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of packets.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of check equations (`n - k`).
    #[inline]
    pub fn num_checks(&self) -> usize {
        self.n - self.k
    }

    /// Shape of the parity part this matrix was built with.
    #[inline]
    pub fn right_side(&self) -> RightSide {
        self.right
    }

    /// The construction seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_cols.len()
    }

    /// Variables appearing in check equation `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.row_cols[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize]
    }

    /// Check equations containing variable `v`.
    #[inline]
    pub fn col(&self, v: usize) -> &[u32] {
        &self.col_rows[self.col_ptr[v] as usize..self.col_ptr[v + 1] as usize]
    }

    /// True if `(row, col)` is a non-zero entry (binary search in the row).
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.row(row).binary_search(&(col as u32)).is_ok()
    }

    /// Degree/weight statistics, used by tests and the ablation benches.
    pub fn stats(&self) -> MatrixStats {
        let m = self.num_checks();
        let mut row_min = usize::MAX;
        let mut row_max = 0;
        for i in 0..m {
            let w = self.row(i).len();
            row_min = row_min.min(w);
            row_max = row_max.max(w);
        }
        let mut src_col_min = usize::MAX;
        let mut src_col_max = 0;
        for v in 0..self.k {
            let w = self.col(v).len();
            src_col_min = src_col_min.min(w);
            src_col_max = src_col_max.max(w);
        }
        MatrixStats {
            nnz: self.nnz(),
            row_weight_min: row_min,
            row_weight_max: row_max,
            source_col_weight_min: src_col_min,
            source_col_weight_max: src_col_max,
            density: self.nnz() as f64 / (m as f64 * self.n as f64),
        }
    }
}

/// Degree statistics of a parity-check matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Total non-zero entries.
    pub nnz: usize,
    /// Minimum check-equation weight.
    pub row_weight_min: usize,
    /// Maximum check-equation weight.
    pub row_weight_max: usize,
    /// Minimum source-column weight (should equal the left degree).
    pub source_col_weight_min: usize,
    /// Maximum source-column weight (should equal the left degree).
    pub source_col_weight_max: usize,
    /// Fraction of non-zero entries.
    pub density: f64,
}

/// Builds `H1`: a regular bipartite graph where every source column has
/// exactly `left_degree` entries in distinct rows, and row weights are
/// balanced to within one edge (RFC 5170-style slot assignment).
fn build_left_part(
    k: usize,
    m: usize,
    left_degree: usize,
    rng: &mut PmRand,
    entries: &mut Vec<(u32, u32)>,
) {
    let edges = left_degree * k;
    let base = edges / m;
    let extra = edges % m;

    // Rows that receive one extra edge are chosen at random (not always the
    // first `extra` rows) so no structural bias correlates with the
    // staircase position.
    let mut rows: Vec<u32> = (0..m as u32).collect();
    rng.shuffle(&mut rows);

    let mut slots: Vec<u32> = Vec::with_capacity(edges);
    for (pos, &r) in rows.iter().enumerate() {
        let reps = base + usize::from(pos < extra);
        slots.extend(std::iter::repeat_n(r, reps));
    }
    rng.shuffle(&mut slots);

    for col in 0..k {
        let start = col * left_degree;
        // De-duplicate the degree-sized window by swapping offenders with
        // random later slots.
        for i in start + 1..start + left_degree {
            let mut attempts = 0;
            while slots[start..i].contains(&slots[i]) {
                attempts += 1;
                if attempts > 64 || i + 1 >= slots.len() {
                    // Rare fallback: draw a fresh distinct row. This breaks
                    // perfect balance by one edge but keeps regular columns.
                    let mut r = rng.below(m as u32);
                    while slots[start..i].contains(&r) {
                        r = rng.below(m as u32);
                    }
                    slots[i] = r;
                    break;
                }
                let j = i + 1 + rng.below((slots.len() - i - 1) as u32) as usize;
                slots.swap(i, j);
            }
        }
        for &slot in &slots[start..start + left_degree] {
            entries.push((slot, col as u32));
        }
    }
}

/// Builds the parity part of `H` (columns `k..n`).
fn build_right_part(
    k: usize,
    m: usize,
    right: RightSide,
    fill: TriangleFill,
    rng: &mut PmRand,
    entries: &mut Vec<(u32, u32)>,
) {
    let k = k as u32;
    // Identity diagonal: parity i is defined by equation i.
    for i in 0..m as u32 {
        entries.push((i, k + i));
    }
    if matches!(right, RightSide::Staircase | RightSide::Triangle) {
        for i in 1..m as u32 {
            entries.push((i, k + i - 1));
        }
    }
    if matches!(right, RightSide::Triangle) {
        match fill {
            TriangleFill::PerColumn(extra) => {
                // Column j gains `extra` distinct uniform-random rows in
                // (j+1, m). Columns too close to the bottom get as many as
                // fit.
                for j in 0..m {
                    let lo = j + 2;
                    if lo >= m {
                        continue;
                    }
                    let span = (m - lo) as u32;
                    let want = (extra as u32).min(span) as usize;
                    let mut picked: Vec<u32> = Vec::with_capacity(want);
                    while picked.len() < want {
                        let r = lo as u32 + rng.below(span);
                        if !picked.contains(&r) {
                            picked.push(r);
                        }
                    }
                    for r in picked {
                        entries.push((r, k + j as u32));
                    }
                }
            }
            TriangleFill::GeometricDouble => {
                for j in 0..m {
                    let mut off = 1usize;
                    let mut i = j + 2;
                    while i < m {
                        entries.push((i as u32, k + j as u32));
                        off <<= 1;
                        i += off;
                    }
                }
            }
            TriangleFill::GeometricTriple => {
                for j in 0..m {
                    let mut off = 1usize;
                    let mut i = j + 2;
                    while i < m {
                        entries.push((i as u32, k + j as u32));
                        off *= 3;
                        i += off;
                    }
                }
            }
            TriangleFill::ThirdDiagonal => {
                for i in 2..m as u32 {
                    entries.push((i, k + i - 2));
                }
            }
            TriangleFill::PerRowUniform => {
                for i in 2..m {
                    let j = rng.below((i - 1) as u32); // 0..=i-2
                    entries.push((i as u32, k + j));
                }
            }
            TriangleFill::PerRow(extra) => {
                for i in 2..m {
                    let span = (i - 1) as u32;
                    let want = (extra as u32).min(span) as usize;
                    let mut picked: Vec<u32> = Vec::with_capacity(want);
                    while picked.len() < want {
                        let j = rng.below(span);
                        if !picked.contains(&j) {
                            picked.push(j);
                        }
                    }
                    for j in picked {
                        entries.push((i as u32, k + j));
                    }
                }
            }
            TriangleFill::HalvingTree => {
                for i in 2..m {
                    let j = ((i - 1) / 2) as u32;
                    entries.push((i as u32, k + j));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(k: usize, n: usize, right: RightSide, seed: u64) -> SparseMatrix {
        SparseMatrix::build(LdgmParams::new(k, n, right, seed)).unwrap()
    }

    #[test]
    fn parameter_validation() {
        let bad = |k, n, d| {
            SparseMatrix::build(LdgmParams {
                k,
                n,
                left_degree: d,
                right: RightSide::Staircase,
                seed: 0,
            })
        };
        assert!(bad(0, 10, 3).is_err());
        assert!(bad(10, 10, 3).is_err());
        assert!(bad(10, 5, 3).is_err());
        assert!(bad(10, 12, 0).is_err());
        assert!(bad(10, 12, 3).is_err()); // m = 2 < left_degree
        assert!(bad(10, 15, 3).is_ok());
    }

    #[test]
    fn source_columns_are_regular_degree_3() {
        for right in [
            RightSide::Identity,
            RightSide::Staircase,
            RightSide::Triangle,
        ] {
            let m = build(100, 250, right, 7);
            let s = m.stats();
            assert_eq!(s.source_col_weight_min, 3, "{right}");
            assert_eq!(s.source_col_weight_max, 3, "{right}");
        }
    }

    #[test]
    fn identity_right_side_shape() {
        let k = 40;
        let m = build(k, 100, RightSide::Identity, 3);
        for i in 0..m.num_checks() {
            assert!(m.contains(i, k + i), "diagonal at row {i}");
            // parity column i has exactly one entry
            assert_eq!(m.col(k + i).len(), 1);
        }
    }

    #[test]
    fn staircase_right_side_shape() {
        let k = 40;
        let m = build(k, 100, RightSide::Staircase, 3);
        for i in 0..m.num_checks() {
            assert!(m.contains(i, k + i));
            if i > 0 {
                assert!(m.contains(i, k + i - 1), "staircase at row {i}");
            }
        }
        // Interior parity columns have exactly two entries (diag + sub-diag).
        for j in 0..m.num_checks() - 1 {
            assert_eq!(m.col(k + j).len(), 2, "column {j}");
        }
        // The last parity column only has the diagonal.
        assert_eq!(m.col(k + m.num_checks() - 1).len(), 1);
    }

    #[test]
    fn triangle_contains_staircase_plus_fill() {
        let k = 50;
        let mc = build(k, 150, RightSide::Triangle, 3);
        let m = mc.num_checks();
        for i in 0..m {
            assert!(mc.contains(i, k + i));
            if i > 0 {
                assert!(mc.contains(i, k + i - 1));
            }
        }
        // Default fill (PerRowUniform): every row i >= 2 gains exactly one
        // extra entry at a parity column strictly below the staircase pair.
        for i in 0..m {
            let extra: Vec<usize> = mc
                .row(i)
                .iter()
                .map(|&c| c as usize)
                .filter(|&c| c >= k && c != k + i && (i == 0 || c != k + i - 1))
                .collect();
            if i < 2 {
                assert!(extra.is_empty(), "row {i} has no triangle room");
            } else {
                assert_eq!(extra.len(), 1, "row {i} extra entries");
                assert!(extra[0] <= k + i - 2, "row {i} entry inside the triangle");
            }
        }
        // Triangle is strictly denser than staircase: exactly m - 2 extra.
        let ms = build(k, 150, RightSide::Staircase, 3);
        assert_eq!(mc.nnz(), ms.nnz() + m - 2);
    }

    #[test]
    fn triangle_fill_variants_shapes() {
        let k = 50;
        let n = 150;
        let p = LdgmParams::new(k, n, RightSide::Triangle, 3);
        let m = n - k;
        // GeometricDouble: column 0 has rows 2, 4, 8, 16, 32, 64 (< m = 100).
        let g = SparseMatrix::build_with_fill(p, TriangleFill::GeometricDouble).unwrap();
        for r in [2usize, 4, 8, 16, 32, 64] {
            assert!(g.contains(r, k), "geometric fill row {r} for column 0");
        }
        assert!(!g.contains(3, k));
        // ThirdDiagonal: row i has columns k+i, k+i-1, k+i-2.
        let t = SparseMatrix::build_with_fill(p, TriangleFill::ThirdDiagonal).unwrap();
        for i in 2..m {
            assert!(t.contains(i, k + i - 2), "third diagonal at row {i}");
        }
        // PerColumn(2): interior columns weigh 4.
        let p2 = SparseMatrix::build_with_fill(p, TriangleFill::PerColumn(2)).unwrap();
        assert_eq!(p2.col(k).len(), 4);
    }

    #[test]
    fn no_forward_parity_references() {
        // Row i may only reference parities k+j with j <= i — required for
        // sequential encoding.
        let m = build(80, 200, RightSide::Triangle, 11);
        for i in 0..m.num_checks() {
            for &c in m.row(i) {
                if c as usize >= m.k() {
                    assert!(
                        c as usize - m.k() <= i,
                        "row {i} references future parity {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(60, 150, RightSide::Triangle, 99);
        let b = build(60, 150, RightSide::Triangle, 99);
        assert_eq!(a.row_cols, b.row_cols);
        assert_eq!(a.col_rows, b.col_rows);
        let c = build(60, 150, RightSide::Triangle, 100);
        assert_ne!(a.row_cols, c.row_cols, "different seed, different graph");
    }

    #[test]
    fn csr_csc_are_consistent() {
        let m = build(70, 180, RightSide::Staircase, 5);
        // Every CSR entry appears in CSC and vice versa.
        let mut from_rows: Vec<(u32, u32)> = Vec::new();
        for i in 0..m.num_checks() {
            for &c in m.row(i) {
                from_rows.push((i as u32, c));
            }
        }
        let mut from_cols: Vec<(u32, u32)> = Vec::new();
        for v in 0..m.n() {
            for &r in m.col(v) {
                from_cols.push((r, v as u32));
            }
        }
        from_rows.sort_unstable();
        from_cols.sort_unstable();
        assert_eq!(from_rows, from_cols);
    }

    #[test]
    fn row_weights_balanced_within_one_in_h1() {
        // Count only H1 entries (columns < k).
        let k = 300;
        let m = build(k, 750, RightSide::Identity, 17);
        let mut weights = vec![0usize; m.num_checks()];
        for v in 0..k {
            for &r in m.col(v) {
                weights[r as usize] += 1;
            }
        }
        let lo = *weights.iter().min().unwrap();
        let hi = *weights.iter().max().unwrap();
        // 3*300/450 = 2 edges per row; the fallback path may unbalance by one
        // more in pathological shuffles, hence <= 2 tolerance.
        assert!(hi - lo <= 2, "row weights {lo}..{hi} unbalanced");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn construction_invariants(
            k in 4usize..200,
            extra in 4usize..200,
            seed in any::<u64>(),
            right_idx in 0usize..3,
        ) {
            let right = [RightSide::Identity, RightSide::Staircase, RightSide::Triangle][right_idx];
            let n = k + extra;
            let m = build(k, n, right, seed);
            let s = m.stats();
            prop_assert_eq!(s.source_col_weight_min, 3);
            prop_assert_eq!(s.source_col_weight_max, 3);
            // Each row has distinct, sorted entries.
            for i in 0..m.num_checks() {
                let row = m.row(i);
                prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(row.iter().all(|&c| (c as usize) < n));
            }
            // Total H1 edges = 3k.
            let h1: usize = (0..k).map(|v| m.col(v).len()).sum();
            prop_assert_eq!(h1, 3 * k);
        }
    }
}
