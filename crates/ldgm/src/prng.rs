//! A self-contained Park-Miller "minimal standard" PRNG.
//!
//! LDGM matrix construction must be *bit-identical* on sender and receiver
//! given only a seed carried in session metadata — so it cannot depend on a
//! third-party RNG whose stream may change between library versions.
//! RFC 5170 solves this the same way (its `rand31pmc`); we use the classic
//! Lehmer generator with Park-Miller constants: `x' = 16807 * x mod (2^31-1)`.
//!
//! This PRNG is **only** for matrix construction. Simulation-level
//! randomness (channel draws, schedule shuffles) uses `rand::SmallRng`,
//! which is free to evolve.

/// Modulus `2^31 - 1` (a Mersenne prime).
pub const M: u64 = 0x7FFF_FFFF;
/// Multiplier 16807 (a primitive root mod M).
pub const A: u64 = 16807;

/// Park-Miller minimal standard linear congruential generator.
///
/// The state is always in `1..M`; the zero/M seeds are remapped so every
/// `u64` is a valid seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmRand {
    state: u64,
}

impl PmRand {
    /// Creates a generator from any 64-bit seed.
    pub fn new(seed: u64) -> PmRand {
        // Fold the 64-bit seed into 1..M. The +1 keeps 0 (and multiples of M)
        // out of the fixed point at zero.
        let folded = seed % (M - 1) + 1;
        PmRand { state: folded }
    }

    /// Next raw value in `1..M`.
    #[inline]
    pub fn next_raw(&mut self) -> u32 {
        self.state = (self.state * A) % M;
        self.state as u32
    }

    /// Uniform value in `0..bound` (rejection-sampled, so unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "PmRand::below(0)");
        // Largest multiple of `bound` not exceeding the raw range (M-1 values
        // in 1..M; shift to 0..M-1 by subtracting 1).
        let range = (M - 1) as u32;
        let limit = range - range % bound;
        loop {
            let v = self.next_raw() - 1; // 0..M-1
            if v < limit {
                return v % bound;
            }
        }
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_park_miller_sequence() {
        // The canonical check: starting from seed 1, the 10000th value of the
        // minimal standard generator is 1043618065 (Park & Miller, 1988).
        let mut r = PmRand { state: 1 };
        let mut v = 0;
        for _ in 0..10_000 {
            v = r.next_raw();
        }
        assert_eq!(v, 1_043_618_065);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = PmRand::new(0xDEADBEEF);
        let mut b = PmRand::new(0xDEADBEEF);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = PmRand::new(0);
        // Must not get stuck at zero.
        let a = r.next_raw();
        let b = r.next_raw();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = PmRand::new(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        PmRand::new(1).below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = PmRand::new(7);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, (0..50).collect::<Vec<u32>>(), "shuffle changed order");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = PmRand::new(12345);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10000; allow +-5% (way beyond 5 sigma for a fair RNG).
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }
}
