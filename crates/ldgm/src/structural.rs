//! Index-only peeling decoder: the Monte-Carlo fast path.
//!
//! Identical peeling logic to [`crate::Decoder`], minus the payload bytes —
//! because peeling is *confluent* (the set of solvable variables after any
//! packet prefix does not depend on propagation order), the two decoders
//! complete at exactly the same received-packet count. The workspace
//! integration suite cross-validates this on random instances.

use crate::SparseMatrix;

/// Payload-free iterative decoder used by `fec-sim` sweeps.
#[derive(Clone)]
pub struct StructuralDecoder<'m> {
    matrix: &'m SparseMatrix,
    eq_unknowns: Vec<u32>,
    var_known: Vec<bool>,
    decoded_source: usize,
    received: u64,
    /// Reusable cascade stack (kept across pushes to avoid re-allocation).
    stack: Vec<u32>,
}

impl<'m> StructuralDecoder<'m> {
    /// Creates a decoder over a shared matrix.
    pub fn new(matrix: &'m SparseMatrix) -> StructuralDecoder<'m> {
        let m = matrix.num_checks();
        let eq_unknowns = (0..m).map(|i| matrix.row(i).len() as u32).collect();
        StructuralDecoder {
            matrix,
            eq_unknowns,
            var_known: vec![false; matrix.n()],
            decoded_source: 0,
            received: 0,
            stack: Vec::new(),
        }
    }

    /// Feeds one received packet id; returns `true` once all `k` source
    /// packets are known.
    ///
    /// # Panics
    /// Panics on an out-of-range id (scheduler bug, not channel input).
    pub fn push(&mut self, id: u32) -> bool {
        assert!((id as usize) < self.matrix.n(), "packet id out of range");
        self.received += 1;
        if self.var_known[id as usize] {
            return self.is_complete();
        }
        self.learn(id);
        self.is_complete()
    }

    /// Feeds a whole window of received packet ids; every id is counted.
    ///
    /// Returns the index within `ids` at which decoding first completed
    /// (the same index a [`StructuralDecoder::push`] loop would report),
    /// or `None` if the decoder is still incomplete afterwards. The sweep
    /// engine feeds loss-schedule batches through this to amortise its
    /// per-packet dispatch.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn push_batch(&mut self, ids: &[u32]) -> Option<usize> {
        let mut done_at = None;
        for (i, &id) in ids.iter().enumerate() {
            assert!((id as usize) < self.matrix.n(), "packet id out of range");
            self.received += 1;
            if !self.var_known[id as usize] {
                self.learn(id);
            }
            if done_at.is_none() && self.is_complete() {
                done_at = Some(i);
            }
        }
        done_at
    }

    fn learn(&mut self, var: u32) {
        self.mark_known(var);
        self.stack.push(var);
        while let Some(v) = self.stack.pop() {
            for idx in 0..self.matrix.col(v as usize).len() {
                let e = self.matrix.col(v as usize)[idx] as usize;
                if self.eq_unknowns[e] == 0 {
                    continue;
                }
                self.eq_unknowns[e] -= 1;
                if self.eq_unknowns[e] == 1 {
                    // Same subtlety as the payload decoder: the remaining
                    // variable may already be known but pending on the stack,
                    // in which case the equation is simply spent.
                    let unknown = self
                        .matrix
                        .row(e)
                        .iter()
                        .copied()
                        .find(|&c| !self.var_known[c as usize]);
                    self.eq_unknowns[e] = 0;
                    if let Some(u) = unknown {
                        self.mark_known(u);
                        self.stack.push(u);
                    }
                }
            }
        }
    }

    #[inline]
    fn mark_known(&mut self, var: u32) {
        debug_assert!(!self.var_known[var as usize]);
        self.var_known[var as usize] = true;
        if (var as usize) < self.matrix.k() {
            self.decoded_source += 1;
        }
    }

    /// True once all `k` source packets are known.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.decoded_source == self.matrix.k()
    }

    /// Source packets currently known (received or solved).
    #[inline]
    pub fn decoded_source(&self) -> usize {
        self.decoded_source
    }

    /// Total packets pushed, duplicates included.
    #[inline]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Whether a particular variable (source or parity) is known.
    #[inline]
    pub fn is_known(&self, id: u32) -> bool {
        self.var_known[id as usize]
    }

    /// Resets to the freshly-constructed state, keeping allocations. Lets a
    /// sweep reuse one decoder object across runs on the same matrix.
    pub fn reset(&mut self) {
        for (i, u) in self.eq_unknowns.iter_mut().enumerate() {
            *u = self.matrix.row(i).len() as u32;
        }
        self.var_known.fill(false);
        self.decoded_source = 0;
        self.received = 0;
        self.stack.clear();
    }
}

impl core::fmt::Debug for StructuralDecoder<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "StructuralDecoder(k={}, decoded={}, received={})",
            self.matrix.k(),
            self.decoded_source,
            self.received
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decoder, Encoder, LdgmParams, RightSide};
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn completes_on_all_sources() {
        let m = SparseMatrix::build(LdgmParams::new(15, 40, RightSide::Staircase, 2)).unwrap();
        let mut d = StructuralDecoder::new(&m);
        for i in 0..15u32 {
            let done = d.push(i);
            assert_eq!(done, i == 14);
        }
    }

    #[test]
    fn duplicates_counted_but_useless() {
        let m = SparseMatrix::build(LdgmParams::new(10, 30, RightSide::Staircase, 2)).unwrap();
        let mut d = StructuralDecoder::new(&m);
        d.push(0);
        d.push(0);
        assert_eq!(d.received(), 2);
        assert_eq!(d.decoded_source(), 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let m = SparseMatrix::build(LdgmParams::new(10, 30, RightSide::Triangle, 2)).unwrap();
        let mut d = StructuralDecoder::new(&m);
        let trace1: Vec<bool> = (0..10u32).map(|i| d.push(i)).collect();
        d.reset();
        let trace2: Vec<bool> = (0..10u32).map(|i| d.push(i)).collect();
        assert_eq!(trace1, trace2);
    }

    /// The structural decoder and the payload decoder must complete at the
    /// same packet index on the same arrival sequence — this is the
    /// contract that makes the Monte-Carlo sweeps faithful.
    #[test]
    fn agrees_with_payload_decoder() {
        for right in [
            RightSide::Identity,
            RightSide::Staircase,
            RightSide::Triangle,
        ] {
            for seed in 0..10u64 {
                let k = 60;
                let n = 150;
                let m = std::sync::Arc::new(
                    SparseMatrix::build(LdgmParams::new(k, n, right, seed)).unwrap(),
                );
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xBEEF);
                let src: Vec<Vec<u8>> = (0..k)
                    .map(|_| (0..8).map(|_| rng.gen::<u8>()).collect())
                    .collect();
                let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
                let parity = Encoder::new(&m).encode(&refs).unwrap();

                let mut order: Vec<u32> = (0..n as u32).collect();
                order.shuffle(&mut rng);
                // Drop a random prefix-fraction to create losses.
                let keep = k + rng.gen_range(0..(n - k));
                order.truncate(keep);

                let mut sd = StructuralDecoder::new(&m);
                let mut pd = Decoder::new(m.clone(), 8);
                let mut s_done_at = None;
                let mut p_done_at = None;
                for (i, &id) in order.iter().enumerate() {
                    let payload: &[u8] = if (id as usize) < k {
                        &src[id as usize]
                    } else {
                        &parity[id as usize - k]
                    };
                    if sd.push(id) && s_done_at.is_none() {
                        s_done_at = Some(i);
                    }
                    if pd.push(id, payload).unwrap().is_complete() && p_done_at.is_none() {
                        p_done_at = Some(i);
                    }
                }
                assert_eq!(s_done_at, p_done_at, "{right} seed {seed}");
                assert_eq!(sd.decoded_source(), pd.decoded_source());
                if pd.is_complete() {
                    assert_eq!(pd.into_source().unwrap(), src);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_is_a_bug() {
        let m = SparseMatrix::build(LdgmParams::new(10, 30, RightSide::Staircase, 2)).unwrap();
        StructuralDecoder::new(&m).push(30);
    }
}
