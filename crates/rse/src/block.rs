//! Object blocking: RFC 5052-style partitioning of a large object into
//! near-equal source blocks, each small enough for GF(2^8) Reed-Solomon.
//!
//! This is the substrate behind the paper's "coupon collector" observation
//! (§2.2): once an object needs `B > 1` blocks, a random parity packet only
//! has probability `1/B` of repairing a given erasure, so RSE's effective
//! efficiency drops as objects grow.

use crate::max_k_for_ratio;

/// Parameters of one source block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockParams {
    /// Number of source symbols in this block.
    pub k: usize,
    /// Total number of encoding symbols in this block (`k <= n <= 255`).
    pub n: usize,
}

impl BlockParams {
    /// Number of parity symbols.
    #[inline]
    pub fn parity(&self) -> usize {
        self.n - self.k
    }
}

/// A partition of `k_total` source symbols into blocks.
///
/// Built with the RFC 5052 algorithm: `B = ceil(k_total / max_k)` blocks,
/// the first `k_total - a_small * B` of size `a_large = ceil(k_total / B)`,
/// the rest of size `a_small = floor(k_total / B)`. Per-block length is
/// `n_b = floor(k_b * ratio)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    blocks: Vec<BlockParams>,
    k_total: usize,
}

impl Partition {
    /// Partitions `k_total` source symbols using at most `max_k` symbols per
    /// block, expanding each block by `ratio`.
    ///
    /// # Panics
    /// Panics if `k_total == 0`, `max_k == 0`, `ratio < 1.0`, or if the
    /// resulting `n_b` would exceed 255 (caller should derive `max_k` from
    /// [`max_k_for_ratio`]).
    pub fn new(k_total: usize, max_k: usize, ratio: f64) -> Partition {
        assert!(k_total > 0, "cannot partition an empty object");
        assert!(max_k > 0, "max block size must be positive");
        assert!(ratio >= 1.0, "FEC expansion ratio must be >= 1.0");

        let b = k_total.div_ceil(max_k);
        let a_large = k_total.div_ceil(b);
        let a_small = k_total / b;
        let num_large = k_total - a_small * b; // a_large blocks come first

        let mut blocks = Vec::with_capacity(b);
        for i in 0..b {
            let k = if i < num_large { a_large } else { a_small };
            let n = ((k as f64) * ratio).floor() as usize;
            assert!(
                n <= crate::MAX_N,
                "block n={n} exceeds GF(2^8) limit; derive max_k from max_k_for_ratio"
            );
            blocks.push(BlockParams { k, n: n.max(k) });
        }
        Partition { blocks, k_total }
    }

    /// Convenience constructor using the largest block size the field allows
    /// for this expansion ratio — the choice used throughout the paper.
    pub fn for_ratio(k_total: usize, ratio: f64) -> Partition {
        Partition::new(k_total, max_k_for_ratio(ratio), ratio)
    }

    /// The blocks, in transmission order.
    #[inline]
    pub fn blocks(&self) -> &[BlockParams] {
        &self.blocks
    }

    /// Number of blocks `B`.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total source symbols across blocks (equals the requested `k_total`).
    #[inline]
    pub fn k_total(&self) -> usize {
        self.k_total
    }

    /// Total encoding symbols across blocks.
    pub fn n_total(&self) -> usize {
        self.blocks.iter().map(|b| b.n).sum()
    }

    /// Total parity symbols across blocks.
    pub fn parity_total(&self) -> usize {
        self.blocks.iter().map(|b| b.parity()).sum()
    }

    /// Maps a global source index `0..k_total` to `(block, esi)`.
    pub fn locate_source(&self, mut idx: usize) -> (usize, usize) {
        assert!(idx < self.k_total, "source index out of range");
        for (b, blk) in self.blocks.iter().enumerate() {
            if idx < blk.k {
                return (b, idx);
            }
            idx -= blk.k;
        }
        unreachable!("k_total is the sum of block sizes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_block_when_small() {
        let p = Partition::for_ratio(50, 2.5);
        assert_eq!(p.num_blocks(), 1);
        assert_eq!(p.blocks()[0], BlockParams { k: 50, n: 125 });
    }

    #[test]
    fn paper_scale_partition_ratio_2_5() {
        // k = 20000, ratio 2.5 => max_k = 102.
        let p = Partition::for_ratio(20_000, 2.5);
        assert_eq!(p.num_blocks(), 197);
        // RFC 5052: A_large = ceil(20000/197) = 102, A_small = 101,
        // num_large = 20000 - 101*197 = 103.
        let large = p.blocks().iter().filter(|b| b.k == 102).count();
        let small = p.blocks().iter().filter(|b| b.k == 101).count();
        assert_eq!((large, small), (103, 94));
        assert_eq!(p.k_total(), 20_000);
        // n_b = floor(k_b * 2.5): 255 and 252.
        assert_eq!(p.blocks()[0].n, 255);
        assert_eq!(p.blocks()[196].n, 252);
        // Paper §4.5: with Tx_model_3 and p = 0, RSE decodes after exactly
        // 29903 packets: all parity except the last block's tail, plus k_b of
        // the last block. This pins down the whole partition geometry.
        let total_parity = p.parity_total();
        let last = *p.blocks().last().unwrap();
        assert_eq!(total_parity - last.parity() + last.k, 29_903);
    }

    #[test]
    fn large_blocks_come_first() {
        let p = Partition::new(10, 3, 2.0);
        // B = 4, a_large = 3, a_small = 2, num_large = 10 - 2*4 = 2.
        let ks: Vec<usize> = p.blocks().iter().map(|b| b.k).collect();
        assert_eq!(ks, vec![3, 3, 2, 2]);
    }

    #[test]
    fn locate_source_walks_blocks() {
        let p = Partition::new(10, 3, 1.0);
        assert_eq!(p.locate_source(0), (0, 0));
        assert_eq!(p.locate_source(2), (0, 2));
        assert_eq!(p.locate_source(3), (1, 0));
        assert_eq!(p.locate_source(9), (3, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_source_out_of_range() {
        let p = Partition::new(4, 2, 1.5);
        let _ = p.locate_source(4);
    }

    #[test]
    #[should_panic(expected = "empty object")]
    fn empty_object_rejected() {
        let _ = Partition::new(0, 10, 1.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Partition invariants for arbitrary sizes.
        #[test]
        fn partition_invariants(k_total in 1usize..5_000, ratio_pct in 100u32..=300) {
            let ratio = ratio_pct as f64 / 100.0;
            let p = Partition::for_ratio(k_total, ratio);
            // Sum of block sizes is the object size.
            let sum: usize = p.blocks().iter().map(|b| b.k).sum();
            prop_assert_eq!(sum, k_total);
            // Sizes differ by at most one, larger first (RFC 5052).
            let ks: Vec<usize> = p.blocks().iter().map(|b| b.k).collect();
            let max = *ks.iter().max().unwrap();
            let min = *ks.iter().min().unwrap();
            prop_assert!(max - min <= 1);
            let mut sorted = ks.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(ks, sorted);
            // Every block respects the field bound and the ratio.
            for b in p.blocks() {
                prop_assert!(b.n <= crate::MAX_N);
                prop_assert!(b.n >= b.k);
                prop_assert_eq!(b.n, ((b.k as f64) * ratio).floor() as usize);
            }
            // locate_source round-trips.
            let mut global = 0usize;
            for (bi, blk) in p.blocks().iter().enumerate() {
                for esi in 0..blk.k {
                    prop_assert_eq!(p.locate_source(global), (bi, esi));
                    global += 1;
                }
            }
        }
    }
}
