//! The single-block systematic Reed-Solomon erasure codec.

use fec_gf256::{kernels, Matrix};

use crate::{RseError, MAX_N};

/// A systematic `(k, n)` Reed-Solomon erasure codec over GF(2^8).
///
/// The generator matrix is `G = V * V_top^{-1}` where `V` is the `n x k`
/// Vandermonde matrix on distinct points `alpha^i`: its top `k x k` part is
/// the identity (so the first `k` encoding symbols *are* the source symbols),
/// and any `k` rows remain linearly independent, which gives the MDS
/// property: any `k` of the `n` encoding symbols reconstruct the source.
///
/// ```
/// use fec_rse::RseCodec;
/// let codec = RseCodec::new(4, 7).unwrap();
/// let src: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i, i + 10]).collect();
/// let parity = codec.encode_refs(&src.iter().map(|s| s.as_slice()).collect::<Vec<_>>()).unwrap();
/// // Lose symbols 0, 2, 3; decode from 1, and parities 4, 5, 6.
/// let received = vec![
///     (1u32, src[1].as_slice()),
///     (4, parity[0].as_slice()),
///     (5, parity[1].as_slice()),
///     (6, parity[2].as_slice()),
/// ];
/// assert_eq!(codec.decode(&received).unwrap(), src);
/// ```
#[derive(Clone)]
pub struct RseCodec {
    k: usize,
    n: usize,
    /// `n x k` systematic generator matrix (top `k` rows = identity).
    gen: Matrix,
}

impl RseCodec {
    /// Builds the codec for `k` source symbols and `n` total symbols.
    pub fn new(k: usize, n: usize) -> Result<RseCodec, RseError> {
        if k == 0 || k > n || n > MAX_N {
            return Err(RseError::BadParameters { k, n });
        }
        let v = Matrix::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverted()
            .expect("Vandermonde top block is always invertible");
        let gen = v.mul(&top_inv).expect("shape checked");
        Ok(RseCodec { k, n, gen })
    }

    /// Number of source symbols per block.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of encoding symbols per block.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of parity symbols (`n - k`).
    #[inline]
    pub fn parity_count(&self) -> usize {
        self.n - self.k
    }

    /// Encodes the parity symbols for a block (slice-of-slices form).
    ///
    /// Returns the `n - k` parity symbols; source symbols are transmitted
    /// verbatim (the code is systematic).
    pub fn encode_refs(&self, source: &[&[u8]]) -> Result<Vec<Vec<u8>>, RseError> {
        if source.len() != self.k {
            return Err(RseError::WrongSourceCount {
                got: source.len(),
                expected: self.k,
            });
        }
        let sym_len = source.first().map_or(0, |s| s.len());
        for s in source {
            if s.len() != sym_len {
                return Err(RseError::SymbolLengthMismatch {
                    expected: sym_len,
                    got: s.len(),
                });
            }
        }
        let mut parity = Vec::with_capacity(self.parity_count());
        for esi in self.k..self.n {
            let mut sym = vec![0u8; sym_len];
            kernels::dot_product(&mut sym, self.gen.row(esi), source);
            parity.push(sym);
        }
        Ok(parity)
    }

    /// Computes a single parity symbol (ESI in `k..n`).
    pub fn parity_symbol(&self, esi: u32, source: &[&[u8]]) -> Result<Vec<u8>, RseError> {
        if (esi as usize) < self.k || (esi as usize) >= self.n {
            return Err(RseError::BadEsi { esi, n: self.n });
        }
        if source.len() != self.k {
            return Err(RseError::WrongSourceCount {
                got: source.len(),
                expected: self.k,
            });
        }
        let sym_len = source.first().map_or(0, |s| s.len());
        let mut sym = vec![0u8; sym_len];
        kernels::dot_product(&mut sym, self.gen.row(esi as usize), source);
        Ok(sym)
    }

    /// Decodes the `k` source symbols from any `k` distinct received symbols.
    ///
    /// `received` holds `(esi, payload)` pairs; extras beyond the first `k`
    /// distinct ESIs are ignored (an MDS code gains nothing from them).
    pub fn decode(&self, received: &[(u32, &[u8])]) -> Result<Vec<Vec<u8>>, RseError> {
        // Collect the first k distinct, validated symbols.
        let mut esis: Vec<u32> = Vec::with_capacity(self.k);
        let mut payloads: Vec<&[u8]> = Vec::with_capacity(self.k);
        let mut sym_len: Option<usize> = None;
        for &(esi, payload) in received {
            if (esi as usize) >= self.n {
                return Err(RseError::BadEsi { esi, n: self.n });
            }
            if esis.contains(&esi) {
                return Err(RseError::DuplicateEsi { esi });
            }
            match sym_len {
                None => sym_len = Some(payload.len()),
                Some(l) if l != payload.len() => {
                    return Err(RseError::SymbolLengthMismatch {
                        expected: l,
                        got: payload.len(),
                    })
                }
                _ => {}
            }
            esis.push(esi);
            payloads.push(payload);
            if esis.len() == self.k {
                break;
            }
        }
        if esis.len() < self.k {
            return Err(RseError::NotEnoughSymbols {
                have: esis.len(),
                need: self.k,
            });
        }
        let sym_len = sym_len.unwrap_or(0);

        // Fast path: all k source symbols present.
        if esis.iter().all(|&e| (e as usize) < self.k) {
            let mut out = vec![vec![0u8; sym_len]; self.k];
            for (&esi, &payload) in esis.iter().zip(&payloads) {
                out[esi as usize].copy_from_slice(payload);
            }
            return Ok(out);
        }

        // General path: y = A x where A is the k x k sub-generator for the
        // received ESIs; x = A^-1 y.
        let rows: Vec<usize> = esis.iter().map(|&e| e as usize).collect();
        let a = self.gen.select_rows(&rows);
        let a_inv = a
            .inverted()
            .expect("any k rows of a systematic Vandermonde generator are independent");
        let mut out = vec![vec![0u8; sym_len]; self.k];
        for (j, out_sym) in out.iter_mut().enumerate() {
            kernels::dot_product(out_sym, a_inv.row(j), &payloads);
        }
        Ok(out)
    }

    /// Borrow the generator row for an ESI (used by tests and docs).
    pub fn generator_row(&self, esi: u32) -> &[u8] {
        self.gen.row(esi as usize)
    }
}

impl core::fmt::Debug for RseCodec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RseCodec(k={}, n={})", self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn make_source(k: usize, sym_len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..sym_len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(RseCodec::new(0, 4).is_err());
        assert!(RseCodec::new(5, 4).is_err());
        assert!(RseCodec::new(10, 256).is_err());
        assert!(RseCodec::new(1, 1).is_ok());
        assert!(RseCodec::new(170, 255).is_ok());
    }

    #[test]
    fn generator_is_systematic() {
        let c = RseCodec::new(5, 9).unwrap();
        for i in 0..5u32 {
            let row = c.generator_row(i);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, u8::from(j == i as usize), "G[{i}][{j}]");
            }
        }
    }

    #[test]
    fn source_only_fast_path() {
        let c = RseCodec::new(3, 6).unwrap();
        let src = make_source(3, 8, 1);
        let rx: Vec<(u32, &[u8])> = vec![
            (2, src[2].as_slice()),
            (0, src[0].as_slice()),
            (1, src[1].as_slice()),
        ];
        assert_eq!(c.decode(&rx).unwrap(), src);
    }

    #[test]
    fn duplicate_esi_rejected() {
        let c = RseCodec::new(2, 4).unwrap();
        let src = make_source(2, 4, 2);
        let rx: Vec<(u32, &[u8])> = vec![(0, src[0].as_slice()), (0, src[0].as_slice())];
        assert_eq!(c.decode(&rx), Err(RseError::DuplicateEsi { esi: 0 }));
    }

    #[test]
    fn not_enough_symbols_rejected() {
        let c = RseCodec::new(3, 5).unwrap();
        let src = make_source(3, 4, 3);
        let rx: Vec<(u32, &[u8])> = vec![(0, src[0].as_slice())];
        assert_eq!(
            c.decode(&rx),
            Err(RseError::NotEnoughSymbols { have: 1, need: 3 })
        );
    }

    #[test]
    fn esi_out_of_range_rejected() {
        let c = RseCodec::new(2, 4).unwrap();
        let payload = [0u8; 4];
        let rx: Vec<(u32, &[u8])> = vec![(4, &payload), (0, &payload)];
        assert_eq!(c.decode(&rx), Err(RseError::BadEsi { esi: 4, n: 4 }));
    }

    #[test]
    fn mixed_symbol_lengths_rejected() {
        let c = RseCodec::new(2, 4).unwrap();
        let a = [0u8; 4];
        let b = [0u8; 5];
        let rx: Vec<(u32, &[u8])> = vec![(0, &a[..]), (1, &b[..])];
        assert!(matches!(
            c.decode(&rx),
            Err(RseError::SymbolLengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_length_symbols_supported() {
        let c = RseCodec::new(2, 4).unwrap();
        let src: Vec<Vec<u8>> = vec![vec![], vec![]];
        let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
        let parity = c.encode_refs(&refs).unwrap();
        let rx: Vec<(u32, &[u8])> = vec![(2, parity[0].as_slice()), (3, parity[1].as_slice())];
        assert_eq!(c.decode(&rx).unwrap(), src);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The MDS property: ANY k-subset of the n encoding symbols decodes
        /// back to the exact source symbols.
        #[test]
        fn mds_any_k_subset_decodes(
            k in 1usize..24,
            extra in 1usize..24,
            sym_len in 1usize..24,
            seed in any::<u64>(),
        ) {
            let n = (k + extra).min(MAX_N);
            let c = RseCodec::new(k, n).unwrap();
            let src = make_source(k, sym_len, seed);
            let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
            let parity = c.encode_refs(&refs).unwrap();

            // All n encoding symbols, then pick a random k-subset.
            let mut all: Vec<(u32, &[u8])> = Vec::with_capacity(n);
            for (i, s) in src.iter().enumerate() {
                all.push((i as u32, s.as_slice()));
            }
            for (i, p) in parity.iter().enumerate() {
                all.push(((k + i) as u32, p.as_slice()));
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
            all.shuffle(&mut rng);
            all.truncate(k);

            let decoded = c.decode(&all).unwrap();
            prop_assert_eq!(decoded, src);
        }

        /// Exactly k-1 symbols must fail: the codec cannot do magic.
        #[test]
        fn k_minus_one_symbols_insufficient(
            k in 2usize..20,
            seed in any::<u64>(),
        ) {
            let n = (2 * k).min(MAX_N);
            let c = RseCodec::new(k, n).unwrap();
            let src = make_source(k, 4, seed);
            let rx: Vec<(u32, &[u8])> = src
                .iter()
                .take(k - 1)
                .enumerate()
                .map(|(i, s)| (i as u32, s.as_slice()))
                .collect();
            prop_assert_eq!(
                c.decode(&rx),
                Err(RseError::NotEnoughSymbols { have: k - 1, need: k })
            );
        }

        /// parity_symbol agrees with bulk encode.
        #[test]
        fn single_parity_matches_bulk(
            k in 1usize..16,
            extra in 1usize..16,
            seed in any::<u64>(),
        ) {
            let n = (k + extra).min(MAX_N);
            let c = RseCodec::new(k, n).unwrap();
            let src = make_source(k, 8, seed);
            let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
            let bulk = c.encode_refs(&refs).unwrap();
            for esi in k..n {
                let one = c.parity_symbol(esi as u32, &refs).unwrap();
                prop_assert_eq!(&one, &bulk[esi - k]);
            }
        }

        /// Encoding is linear: encode(a) XOR encode(b) == encode(a XOR b).
        /// (Linearity is what makes the "same parity repairs different losses
        /// at different receivers" multicast argument of §1 work.)
        #[test]
        fn encoding_is_linear(k in 1usize..12, seed in any::<u64>()) {
            let n = (2 * k).min(MAX_N);
            let c = RseCodec::new(k, n).unwrap();
            let a = make_source(k, 6, seed);
            let b = make_source(k, 6, seed.wrapping_add(1));
            let ab: Vec<Vec<u8>> = a
                .iter()
                .zip(&b)
                .map(|(x, y)| x.iter().zip(y).map(|(u, v)| u ^ v).collect())
                .collect();
            let enc = |s: &[Vec<u8>]| {
                let refs: Vec<&[u8]> = s.iter().map(|x| x.as_slice()).collect();
                c.encode_refs(&refs).unwrap()
            };
            let pa = enc(&a);
            let pb = enc(&b);
            let pab = enc(&ab);
            for i in 0..(n - k) {
                let xored: Vec<u8> = pa[i].iter().zip(&pb[i]).map(|(u, v)| u ^ v).collect();
                prop_assert_eq!(&xored, &pab[i]);
            }
        }
    }
}
