//! Reed-Solomon erasure codec over GF(2^16): the road not taken (§2.2).
//!
//! The paper's RSE stays on GF(2^8), which caps a block at 255 packets and
//! forces big objects through RFC 5052 blocking — the root of the coupon
//! collector inefficiency its evaluation keeps running into. This codec is
//! the alternative the paper rejects on speed grounds: `n ≤ 65535` means a
//! 20000-packet object at expansion ratio 2.5 fits in **one** block, making
//! the code MDS over the *whole object* (any `k` of the `n` packets decode
//! — inefficiency exactly 1.0, no scheduling sensitivity at all).
//!
//! The price is arithmetic: every multiply is two table lookups in a
//! 384 KiB table (cache-hostile) instead of one hit in a 64 KiB table, and
//! decoding inverts a `k × k` matrix — cubic in a `k` that blocking would
//! have kept at ~100. The `ablation_gf216` bench measures both sides.
//!
//! Symbols are byte slices of even length, interpreted as big-endian
//! GF(2^16) elements.

use fec_gf256::gf2p16::{dot_product16, Gf2p16, Matrix16, MUL16_ORDER};

use crate::RseError;

/// Hard upper bound on the block length over GF(2^16).
pub const MAX_N16: usize = MUL16_ORDER;

/// A systematic `(k, n)` Reed-Solomon erasure codec over GF(2^16).
///
/// Same construction as [`crate::RseCodec`] — generator `G = V · V_top⁻¹`
/// on Vandermonde points `alpha^i` — one field up.
///
/// ```
/// use fec_rse::Rse16Codec;
/// let codec = Rse16Codec::new(300, 750).unwrap(); // impossible over GF(2^8)
/// assert_eq!(codec.parity_count(), 450);
/// ```
#[derive(Clone)]
pub struct Rse16Codec {
    k: usize,
    n: usize,
    gen: Matrix16,
}

fn to_elements(payload: &[u8]) -> Result<Vec<Gf2p16>, RseError> {
    if !payload.len().is_multiple_of(2) {
        return Err(RseError::SymbolLengthMismatch {
            expected: payload.len() + 1,
            got: payload.len(),
        });
    }
    Ok(payload
        .chunks_exact(2)
        .map(|c| Gf2p16(u16::from_be_bytes([c[0], c[1]])))
        .collect())
}

fn to_bytes(elements: &[Gf2p16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(elements.len() * 2);
    for e in elements {
        out.extend_from_slice(&e.0.to_be_bytes());
    }
    out
}

impl Rse16Codec {
    /// Builds the codec for `k` source symbols and `n` total symbols.
    pub fn new(k: usize, n: usize) -> Result<Rse16Codec, RseError> {
        if k == 0 || k > n || n > MAX_N16 {
            return Err(RseError::BadParameters { k, n });
        }
        let v = Matrix16::vandermonde(n, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top
            .inverted()
            .expect("Vandermonde top block is always invertible");
        let gen = v.mul(&top_inv);
        Ok(Rse16Codec { k, n, gen })
    }

    /// Number of source symbols.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of encoding symbols.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of parity symbols.
    #[inline]
    pub fn parity_count(&self) -> usize {
        self.n - self.k
    }

    /// Encodes the `n - k` parity symbols. Source symbols must share one
    /// even byte length.
    pub fn encode_refs(&self, source: &[&[u8]]) -> Result<Vec<Vec<u8>>, RseError> {
        if source.len() != self.k {
            return Err(RseError::WrongSourceCount {
                got: source.len(),
                expected: self.k,
            });
        }
        let sym_len = source.first().map_or(0, |s| s.len());
        for s in source {
            if s.len() != sym_len {
                return Err(RseError::SymbolLengthMismatch {
                    expected: sym_len,
                    got: s.len(),
                });
            }
        }
        let elements: Vec<Vec<Gf2p16>> = source
            .iter()
            .map(|s| to_elements(s))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&[Gf2p16]> = elements.iter().map(|e| e.as_slice()).collect();
        let mut parity = Vec::with_capacity(self.parity_count());
        let mut buf = vec![Gf2p16::ZERO; sym_len / 2];
        for esi in self.k..self.n {
            dot_product16(&mut buf, self.gen.row(esi), &refs);
            parity.push(to_bytes(&buf));
        }
        Ok(parity)
    }

    /// Decodes the `k` source symbols from any `k` distinct received
    /// symbols (same contract as [`crate::RseCodec::decode`]).
    pub fn decode(&self, received: &[(u32, &[u8])]) -> Result<Vec<Vec<u8>>, RseError> {
        let mut esis: Vec<u32> = Vec::with_capacity(self.k);
        let mut payloads: Vec<&[u8]> = Vec::with_capacity(self.k);
        let mut sym_len: Option<usize> = None;
        for &(esi, payload) in received {
            if (esi as usize) >= self.n {
                return Err(RseError::BadEsi { esi, n: self.n });
            }
            if esis.contains(&esi) {
                return Err(RseError::DuplicateEsi { esi });
            }
            match sym_len {
                None => sym_len = Some(payload.len()),
                Some(l) if l != payload.len() => {
                    return Err(RseError::SymbolLengthMismatch {
                        expected: l,
                        got: payload.len(),
                    })
                }
                _ => {}
            }
            esis.push(esi);
            payloads.push(payload);
            if esis.len() == self.k {
                break;
            }
        }
        if esis.len() < self.k {
            return Err(RseError::NotEnoughSymbols {
                have: esis.len(),
                need: self.k,
            });
        }
        let sym_len = sym_len.unwrap_or(0);

        // Fast path: all k source symbols present.
        if esis.iter().all(|&e| (e as usize) < self.k) {
            let mut out = vec![vec![0u8; sym_len]; self.k];
            for (&esi, &payload) in esis.iter().zip(&payloads) {
                out[esi as usize].copy_from_slice(payload);
            }
            return Ok(out);
        }

        let elements: Vec<Vec<Gf2p16>> = payloads
            .iter()
            .map(|p| to_elements(p))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&[Gf2p16]> = elements.iter().map(|e| e.as_slice()).collect();
        let rows: Vec<usize> = esis.iter().map(|&e| e as usize).collect();
        let a = self.gen.select_rows(&rows);
        let a_inv = a
            .inverted()
            .expect("any k rows of a systematic Vandermonde generator are independent");
        let mut out = Vec::with_capacity(self.k);
        let mut buf = vec![Gf2p16::ZERO; sym_len / 2];
        for j in 0..self.k {
            dot_product16(&mut buf, a_inv.row(j), &refs);
            out.push(to_bytes(&buf));
        }
        Ok(out)
    }
}

impl core::fmt::Debug for Rse16Codec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Rse16Codec(k={}, n={})", self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn make_source(k: usize, sym_len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..sym_len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(Rse16Codec::new(0, 4).is_err());
        assert!(Rse16Codec::new(5, 4).is_err());
        assert!(Rse16Codec::new(10, 65536).is_err());
        assert!(Rse16Codec::new(300, 750).is_ok(), "beyond GF(2^8)'s reach");
    }

    #[test]
    fn beyond_gf256_block_bound_roundtrip() {
        // k = 200, n = 500: impossible in one GF(2^8) block.
        let c = Rse16Codec::new(200, 500).unwrap();
        let src = make_source(200, 8, 1);
        let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
        let parity = c.encode_refs(&refs).unwrap();
        // Decode from the last 200 parity symbols only.
        let rx: Vec<(u32, &[u8])> = (0..200)
            .map(|i| ((500 - 200 + i) as u32, parity[300 - 200 + i].as_slice()))
            .collect();
        assert_eq!(c.decode(&rx).unwrap(), src);
    }

    #[test]
    fn odd_symbol_length_rejected() {
        let c = Rse16Codec::new(2, 4).unwrap();
        let src = [vec![1u8, 2, 3], vec![4, 5, 6]];
        let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
        assert!(matches!(
            c.encode_refs(&refs),
            Err(RseError::SymbolLengthMismatch { .. })
        ));
    }

    #[test]
    fn agrees_with_gf256_codec_semantics() {
        // Same MDS contract as the GF(2^8) codec on a size both support.
        let (k, n) = (10, 25);
        let c16 = Rse16Codec::new(k, n).unwrap();
        let c8 = crate::RseCodec::new(k, n).unwrap();
        let src = make_source(k, 16, 5);
        let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
        let p16 = c16.encode_refs(&refs).unwrap();
        let p8 = c8.encode_refs(&refs).unwrap();
        // The parities differ (different fields) but both decode from the
        // same arbitrary k-subset.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let mut esis: Vec<u32> = (0..n as u32).collect();
        esis.shuffle(&mut rng);
        esis.truncate(k);
        let rx16: Vec<(u32, &[u8])> = esis
            .iter()
            .map(|&e| {
                let payload: &[u8] = if (e as usize) < k {
                    &src[e as usize]
                } else {
                    &p16[e as usize - k]
                };
                (e, payload)
            })
            .collect();
        let rx8: Vec<(u32, &[u8])> = esis
            .iter()
            .map(|&e| {
                let payload: &[u8] = if (e as usize) < k {
                    &src[e as usize]
                } else {
                    &p8[e as usize - k]
                };
                (e, payload)
            })
            .collect();
        assert_eq!(c16.decode(&rx16).unwrap(), src);
        assert_eq!(c8.decode(&rx8).unwrap(), src);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// MDS over GF(2^16): any k-subset decodes.
        #[test]
        fn mds_any_k_subset_decodes(
            k in 1usize..20,
            extra in 1usize..20,
            half_len in 1usize..8,
            seed in any::<u64>(),
        ) {
            let n = k + extra;
            let c = Rse16Codec::new(k, n).unwrap();
            let src = make_source(k, half_len * 2, seed);
            let refs: Vec<&[u8]> = src.iter().map(|s| s.as_slice()).collect();
            let parity = c.encode_refs(&refs).unwrap();
            let mut all: Vec<(u32, &[u8])> = Vec::with_capacity(n);
            for (i, s) in src.iter().enumerate() {
                all.push((i as u32, s.as_slice()));
            }
            for (i, p) in parity.iter().enumerate() {
                all.push(((k + i) as u32, p.as_slice()));
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xF00D);
            all.shuffle(&mut rng);
            all.truncate(k);
            prop_assert_eq!(c.decode(&all).unwrap(), src);
        }
    }
}
