//! Error type for the RSE codec.

use core::fmt;

/// Errors reported by the Reed-Solomon erasure codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RseError {
    /// Requested `(k, n)` outside `0 < k <= n <= 255`.
    BadParameters {
        /// Requested number of source symbols.
        k: usize,
        /// Requested total number of symbols.
        n: usize,
    },
    /// Fewer than `k` distinct symbols were supplied to the decoder.
    NotEnoughSymbols {
        /// Symbols available.
        have: usize,
        /// Symbols required (`k`).
        need: usize,
    },
    /// A symbol had an encoding symbol ID outside `0..n`.
    BadEsi {
        /// Offending encoding symbol ID.
        esi: u32,
        /// Block length `n`.
        n: usize,
    },
    /// The same ESI was supplied twice to the decoder.
    DuplicateEsi {
        /// The duplicated encoding symbol ID.
        esi: u32,
    },
    /// Symbols of inconsistent length were supplied.
    SymbolLengthMismatch {
        /// Length of the first symbol seen.
        expected: usize,
        /// Length of the offending symbol.
        got: usize,
    },
    /// The number of source symbols given to `encode` is not `k`.
    WrongSourceCount {
        /// Symbols supplied.
        got: usize,
        /// Symbols expected (`k`).
        expected: usize,
    },
}

impl fmt::Display for RseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RseError::BadParameters { k, n } => {
                write!(
                    f,
                    "invalid RSE parameters k={k}, n={n} (need 0 < k <= n <= 255)"
                )
            }
            RseError::NotEnoughSymbols { have, need } => {
                write!(f, "not enough symbols to decode: have {have}, need {need}")
            }
            RseError::BadEsi { esi, n } => write!(f, "ESI {esi} out of range (n = {n})"),
            RseError::DuplicateEsi { esi } => write!(f, "duplicate ESI {esi}"),
            RseError::SymbolLengthMismatch { expected, got } => {
                write!(f, "symbol length mismatch: expected {expected}, got {got}")
            }
            RseError::WrongSourceCount { got, expected } => {
                write!(
                    f,
                    "encode needs exactly k={expected} source symbols, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for RseError {}
