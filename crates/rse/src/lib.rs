//! Reed-Solomon erasure codec (RSE) over GF(2^8), with object blocking.
//!
//! This is the small-block MDS code of the paper (§2.2): a *systematic*
//! Reed-Solomon code built from a Vandermonde generator matrix, in the style
//! of Rizzo's classic `fec` codec. A block of `k` source packets is expanded
//! into `n <= 255` encoding packets; **any** `k` of the `n` suffice to
//! recover the block (the MDS property — verified by property tests).
//!
//! Because GF(2^8) caps `n` at 255, objects larger than one block must be
//! *segmented*: the [`block`] module implements RFC 5052-style partitioning
//! into near-equal blocks, which is exactly what exposes RSE to the paper's
//! "coupon collector" inefficiency — a parity packet only helps the one block
//! it belongs to.
//!
//! Two decoders are provided:
//! * [`RseCodec::decode`] — the real thing, moving payload bytes, used by the
//!   session layer (`fec-core`) and the examples;
//! * [`StructuralObjectDecoder`] — an index-only mirror used by the
//!   Monte-Carlo sweeps in `fec-sim`, where only *when* decoding completes
//!   matters, not the bytes. For an MDS code the structural rule is simply
//!   "a block is decoded once `k_b` distinct packets of it arrived".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
mod codec;
mod codec16;
mod error;
mod structural;

pub use block::{BlockParams, Partition};
pub use codec::RseCodec;
pub use codec16::{Rse16Codec, MAX_N16};
pub use error::RseError;
pub use structural::StructuralObjectDecoder;

/// Hard upper bound on the block length `n` over GF(2^8): the evaluation
/// points `alpha^i` are only distinct for `i < 255`.
pub const MAX_N: usize = 255;

/// Largest source block size `k` usable with a given FEC expansion ratio so
/// that `n = floor(k * ratio)` still fits in [`MAX_N`].
///
/// For the paper's ratios: `max_k(1.5) = 170`, `max_k(2.5) = 102`.
///
/// # Panics
/// Panics if `ratio < 1.0` (a FEC expansion ratio below 1 would mean sending
/// fewer packets than the source).
pub fn max_k_for_ratio(ratio: f64) -> usize {
    assert!(ratio >= 1.0, "FEC expansion ratio must be >= 1.0");
    let mut k = (MAX_N as f64 / ratio).floor() as usize;
    // Guard against floating point edge cases: ensure floor(k * ratio) <= MAX_N.
    while k > 1 && (k as f64 * ratio).floor() as usize > MAX_N {
        k -= 1;
    }
    k.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_k_matches_paper_ratios() {
        assert_eq!(max_k_for_ratio(1.5), 170);
        assert_eq!(max_k_for_ratio(2.5), 102);
        assert_eq!(max_k_for_ratio(1.0), 255);
    }

    #[test]
    #[should_panic(expected = "ratio must be >= 1.0")]
    fn sub_unit_ratio_rejected() {
        let _ = max_k_for_ratio(0.5);
    }
}
