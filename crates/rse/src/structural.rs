//! Index-only ("structural") decoder for blocked RSE objects.
//!
//! The Monte-Carlo sweeps of `fec-sim` only need to know *when* decoding
//! completes, not the payload bytes. For an MDS code the rule is exact:
//! a block decodes the moment `k_b` distinct packets of it have arrived, and
//! the object decodes when every block has. This mirrors
//! [`crate::RseCodec::decode`] precisely (a property test in the workspace
//! integration suite cross-checks the two).

use crate::Partition;

/// Tracks per-block reception until a blocked object becomes decodable.
#[derive(Debug, Clone)]
pub struct StructuralObjectDecoder {
    /// Per block: number of distinct packets still needed.
    missing: Vec<usize>,
    /// Per block: bitmap of seen ESIs (to ignore duplicates).
    seen: Vec<Vec<bool>>,
    /// Blocks not yet decodable.
    blocks_pending: usize,
    received: u64,
    useful: u64,
}

impl StructuralObjectDecoder {
    /// Creates a decoder for the given partition.
    pub fn new(partition: &Partition) -> StructuralObjectDecoder {
        let missing: Vec<usize> = partition.blocks().iter().map(|b| b.k).collect();
        let seen = partition
            .blocks()
            .iter()
            .map(|b| vec![false; b.n])
            .collect();
        let blocks_pending = missing.len();
        StructuralObjectDecoder {
            missing,
            seen,
            blocks_pending,
            received: 0,
            useful: 0,
        }
    }

    /// Feeds one received packet, identified by `(block, esi)`.
    ///
    /// Returns `true` once the whole object is decodable. Duplicate packets
    /// are counted as received (they consume channel budget) but are useless.
    ///
    /// # Panics
    /// Panics on out-of-range block or ESI — the scheduler can never produce
    /// those, so this is an internal-consistency assertion, not I/O handling.
    pub fn push(&mut self, block: usize, esi: usize) -> bool {
        self.received += 1;
        let seen = &mut self.seen[block];
        assert!(esi < seen.len(), "ESI {esi} out of range for block {block}");
        if seen[esi] {
            return self.is_decoded();
        }
        seen[esi] = true;
        if self.missing[block] > 0 {
            self.useful += 1;
            self.missing[block] -= 1;
            if self.missing[block] == 0 {
                self.blocks_pending -= 1;
            }
        }
        self.is_decoded()
    }

    /// Feeds a whole window of `(block, esi)` arrivals; every packet is
    /// counted. Returns the index within `packets` at which the object
    /// first became decodable (what a [`StructuralObjectDecoder::push`]
    /// loop would report), or `None` if still short afterwards.
    ///
    /// # Panics
    /// Panics on an out-of-range block or ESI.
    pub fn push_batch(&mut self, packets: &[(usize, usize)]) -> Option<usize> {
        let mut done_at = None;
        for (i, &(block, esi)) in packets.iter().enumerate() {
            if self.push(block, esi) && done_at.is_none() {
                done_at = Some(i);
            }
        }
        done_at
    }

    /// True once every block has at least `k_b` distinct packets.
    #[inline]
    pub fn is_decoded(&self) -> bool {
        self.blocks_pending == 0
    }

    /// Total packets pushed (including duplicates and useless ones).
    #[inline]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Packets that actually reduced some block's deficit.
    #[inline]
    pub fn useful(&self) -> u64 {
        self.useful
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_decodes_at_k() {
        let p = Partition::new(4, 10, 2.0);
        let mut d = StructuralObjectDecoder::new(&p);
        assert!(!d.push(0, 0));
        assert!(!d.push(0, 7)); // parity counts the same
        assert!(!d.push(0, 2));
        assert!(d.push(0, 5));
        assert_eq!(d.received(), 4);
        assert_eq!(d.useful(), 4);
    }

    #[test]
    fn duplicates_consume_budget_but_do_not_help() {
        let p = Partition::new(2, 10, 2.0);
        let mut d = StructuralObjectDecoder::new(&p);
        assert!(!d.push(0, 0));
        assert!(!d.push(0, 0));
        assert!(!d.push(0, 0));
        assert!(d.push(0, 1));
        assert_eq!(d.received(), 4);
        assert_eq!(d.useful(), 2);
    }

    #[test]
    fn all_blocks_must_complete() {
        // Two blocks of k=2 each.
        let p = Partition::new(4, 2, 2.0);
        assert_eq!(p.num_blocks(), 2);
        let mut d = StructuralObjectDecoder::new(&p);
        assert!(!d.push(0, 0));
        assert!(!d.push(0, 1)); // block 0 done
        assert!(!d.push(0, 2)); // extra for block 0: useless
        assert!(!d.push(1, 3));
        assert!(d.push(1, 0)); // block 1 done -> object done
        assert_eq!(d.useful(), 4);
        assert_eq!(d.received(), 5);
    }

    #[test]
    fn extra_packets_after_decode_still_counted_as_received() {
        let p = Partition::new(1, 10, 3.0);
        let mut d = StructuralObjectDecoder::new(&p);
        assert!(d.push(0, 0));
        assert!(d.push(0, 1));
        assert_eq!(d.received(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn esi_out_of_range_is_a_bug() {
        let p = Partition::new(2, 10, 1.5);
        let mut d = StructuralObjectDecoder::new(&p);
        d.push(0, 3); // n = floor(2*1.5) = 3 -> esi 3 invalid
    }
}
