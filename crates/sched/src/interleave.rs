//! Interleavers (Tx_model_5, paper §4.7).
//!
//! For blocked codes, interleaving maximises the transmission distance
//! between two packets of the same block, so a loss burst hits many blocks
//! once instead of one block many times: packet 0 of every block, then
//! packet 1 of every block, and so on.
//!
//! For single-block (LDGM) codes there is nothing to round-robin; the paper
//! instead alternates source and parity packets proportionally. We use a
//! Bresenham-style accumulator to spread the `n − k` parity packets evenly
//! among the `k` source packets. (The paper's text says "one source packet
//! and n/k parity packets", which would require `k · n/k > n − k` parity
//! packets; we read it as the obvious intent, `(n − k)/k` parity per
//! source — the deviation is documented in DESIGN.md.)

use crate::{Layout, PacketRef};

/// Round-robin block interleaving: ESI 0 of every block, then ESI 1 of every
/// block, …, skipping blocks that are exhausted (blocks may have unequal
/// sizes).
pub fn block_interleaved(layout: &Layout) -> Vec<PacketRef> {
    let mut out = Vec::with_capacity(layout.total_packets() as usize);
    let max_n = (0..layout.num_blocks())
        .map(|b| layout.block(b).1)
        .max()
        .expect("layout has blocks");
    for esi in 0..max_n {
        for b in 0..layout.num_blocks() {
            if esi < layout.block(b).1 {
                out.push(PacketRef {
                    block: b as u32,
                    esi: esi as u32,
                });
            }
        }
    }
    out
}

/// Depth-limited block interleaving: blocks are processed in consecutive
/// groups of `depth`, with full round-robin *inside* each group and groups
/// transmitted one after the other.
///
/// This models a real interleaver with bounded memory — the sender must
/// buffer one packet per block it round-robins across, so `depth` *is* the
/// interleaver's buffer size in packets. The two extremes recover known
/// schemes:
///
/// * `depth = 1` — no interleaving: each block is sent sequentially
///   (block-local Tx_model_1);
/// * `depth >= num_blocks` — exactly [`block_interleaved`] (Tx_model_5,
///   maximum burst protection).
///
/// In between, two packets of the same block are `min(depth, group size)`
/// transmissions apart, so a loss burst of length `L` destroys at most
/// `ceil(L / depth)` packets per block. The `ablation_schedule_memory`
/// bench sweeps `depth` against burst length to locate the knee.
///
/// Not part of the paper (its Tx_model_5 is the `depth = ∞` case); this is
/// the §7 "new transmission schemes" extension.
///
/// # Panics
/// Panics if `depth == 0`.
pub fn group_interleaved(layout: &Layout, depth: usize) -> Vec<PacketRef> {
    assert!(depth > 0, "interleaving depth must be positive");
    let mut out = Vec::with_capacity(layout.total_packets() as usize);
    let num_blocks = layout.num_blocks();
    let mut group_start = 0usize;
    while group_start < num_blocks {
        let group_end = (group_start + depth).min(num_blocks);
        let max_n = (group_start..group_end)
            .map(|b| layout.block(b).1)
            .max()
            .expect("group is non-empty");
        for esi in 0..max_n {
            for b in group_start..group_end {
                if esi < layout.block(b).1 {
                    out.push(PacketRef {
                        block: b as u32,
                        esi: esi as u32,
                    });
                }
            }
        }
        group_start = group_end;
    }
    out
}

/// Source/parity interleaving for a single-block code: after source packet
/// `i`, all parity packets up to `floor((i + 1) · (n − k) / k)` have been
/// sent. Both source and parity advance sequentially.
///
/// # Panics
/// Panics if the layout has more than one block (use [`block_interleaved`]).
pub fn single_block_interleaved(layout: &Layout) -> Vec<PacketRef> {
    assert_eq!(
        layout.num_blocks(),
        1,
        "single_block_interleaved on a multi-block layout"
    );
    let (k, n) = layout.block(0);
    let parity = n - k;
    let mut out = Vec::with_capacity(n);
    let mut sent_parity = 0usize;
    for i in 0..k {
        out.push(PacketRef {
            block: 0,
            esi: i as u32,
        });
        let due = (i + 1) * parity / k;
        while sent_parity < due {
            out.push(PacketRef {
                block: 0,
                esi: (k + sent_parity) as u32,
            });
            sent_parity += 1;
        }
    }
    // Rounding can leave a tail (never more than parity % k packets).
    while sent_parity < parity {
        out.push(PacketRef {
            block: 0,
            esi: (k + sent_parity) as u32,
        });
        sent_parity += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn is_permutation(layout: &Layout, order: &[PacketRef]) -> bool {
        let mut seen = vec![false; layout.total_packets() as usize];
        for &r in order {
            let g = layout.global_index(r) as usize;
            if seen[g] {
                return false;
            }
            seen[g] = true;
        }
        order.len() == layout.total_packets() as usize
    }

    #[test]
    fn block_interleave_equal_blocks() {
        let l = Layout::from_blocks([(2, 4), (2, 4)]);
        let got: Vec<(u32, u32)> = block_interleaved(&l)
            .iter()
            .map(|r| (r.block, r.esi))
            .collect();
        assert_eq!(
            got,
            vec![
                (0, 0),
                (1, 0),
                (0, 1),
                (1, 1),
                (0, 2),
                (1, 2),
                (0, 3),
                (1, 3)
            ]
        );
    }

    #[test]
    fn block_interleave_unequal_blocks_skips_exhausted() {
        let l = Layout::from_blocks([(2, 5), (1, 2)]);
        let got: Vec<(u32, u32)> = block_interleaved(&l)
            .iter()
            .map(|r| (r.block, r.esi))
            .collect();
        assert_eq!(
            got,
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (0, 3), (0, 4)]
        );
    }

    #[test]
    fn block_interleave_distance_property() {
        // With B equal blocks, two packets of the same block are exactly B
        // transmissions apart — the "maximum distance" the paper describes.
        let b = 7;
        let l = Layout::from_blocks(vec![(3, 9); b]);
        let order = block_interleaved(&l);
        let mut last_seen: Vec<Option<usize>> = vec![None; b];
        for (pos, r) in order.iter().enumerate() {
            if let Some(prev) = last_seen[r.block as usize] {
                assert_eq!(pos - prev, b, "distance within block {}", r.block);
            }
            last_seen[r.block as usize] = Some(pos);
        }
    }

    #[test]
    fn single_block_pattern_ratio_2() {
        // k=4, n=8: one parity after each source.
        let l = Layout::single_block(4, 8);
        let got: Vec<u32> = single_block_interleaved(&l).iter().map(|r| r.esi).collect();
        assert_eq!(got, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn single_block_pattern_ratio_2_5() {
        // k=4, n=10 (ratio 2.5): 6 parity spread over 4 sources: after
        // source i, floor((i+1)*6/4) parity are out: 1, 3, 4, 6.
        let l = Layout::single_block(4, 10);
        let got: Vec<u32> = single_block_interleaved(&l).iter().map(|r| r.esi).collect();
        assert_eq!(got, vec![0, 4, 1, 5, 6, 2, 7, 3, 8, 9]);
    }

    #[test]
    fn single_block_ratio_1_sends_sources_only_pattern() {
        // n = k: degenerate, no parity at all.
        let l = Layout::single_block(3, 3);
        let got: Vec<u32> = single_block_interleaved(&l).iter().map(|r| r.esi).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "multi-block layout")]
    fn single_block_interleave_rejects_multi_block() {
        let l = Layout::from_blocks([(2, 4), (2, 4)]);
        let _ = single_block_interleaved(&l);
    }

    #[test]
    fn group_interleave_full_depth_equals_block_interleave() {
        let l = Layout::from_blocks([(2, 5), (1, 2), (3, 6)]);
        assert_eq!(group_interleaved(&l, 3), block_interleaved(&l));
        assert_eq!(group_interleaved(&l, 100), block_interleaved(&l));
    }

    #[test]
    fn group_interleave_depth_one_is_sequential_blocks() {
        let l = Layout::from_blocks([(2, 4), (2, 3)]);
        let got: Vec<(u32, u32)> = group_interleaved(&l, 1)
            .iter()
            .map(|r| (r.block, r.esi))
            .collect();
        assert_eq!(
            got,
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1), (1, 2)]
        );
    }

    #[test]
    fn group_interleave_intermediate_depth() {
        // 4 blocks, depth 2: blocks {0,1} fully interleaved, then {2,3}.
        let l = Layout::from_blocks(vec![(1, 2); 4]);
        let got: Vec<(u32, u32)> = group_interleaved(&l, 2)
            .iter()
            .map(|r| (r.block, r.esi))
            .collect();
        assert_eq!(
            got,
            vec![
                (0, 0),
                (1, 0),
                (0, 1),
                (1, 1),
                (2, 0),
                (3, 0),
                (2, 1),
                (3, 1)
            ]
        );
    }

    #[test]
    fn group_interleave_distance_is_group_size() {
        // 6 equal blocks, depth 3: same-block packets are exactly 3 apart.
        let l = Layout::from_blocks(vec![(2, 6); 6]);
        let order = group_interleaved(&l, 3);
        let mut last_seen: Vec<Option<usize>> = vec![None; 6];
        for (pos, r) in order.iter().enumerate() {
            if let Some(prev) = last_seen[r.block as usize] {
                assert_eq!(pos - prev, 3, "distance within block {}", r.block);
            }
            last_seen[r.block as usize] = Some(pos);
        }
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn group_interleave_rejects_zero_depth() {
        let l = Layout::from_blocks([(2, 4), (2, 4)]);
        let _ = group_interleaved(&l, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn block_interleave_is_permutation(
            sizes in proptest::collection::vec((1usize..20, 0usize..20), 1..10)
        ) {
            let l = Layout::from_blocks(sizes.iter().map(|&(k, extra)| (k, k + extra)));
            let order = block_interleaved(&l);
            prop_assert!(is_permutation(&l, &order));
        }

        #[test]
        fn group_interleave_is_permutation(
            sizes in proptest::collection::vec((1usize..20, 0usize..20), 1..10),
            depth in 1usize..12,
        ) {
            let l = Layout::from_blocks(sizes.iter().map(|&(k, extra)| (k, k + extra)));
            let order = group_interleaved(&l, depth);
            prop_assert!(is_permutation(&l, &order));
            // Blocks from different groups never interleave: block indices,
            // divided by depth, are non-decreasing along the order.
            let groups: Vec<usize> = order.iter().map(|r| r.block as usize / depth).collect();
            prop_assert!(groups.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn single_block_interleave_is_permutation(k in 1usize..200, extra in 0usize..300) {
            let l = Layout::single_block(k, k + extra);
            let order = single_block_interleaved(&l);
            prop_assert!(is_permutation(&l, &order));
            // Sources appear in order; parity appears in order.
            let esis: Vec<usize> = order.iter().map(|r| r.esi as usize).collect();
            let srcs: Vec<usize> = esis.iter().copied().filter(|&e| e < k).collect();
            let pars: Vec<usize> = esis.iter().copied().filter(|&e| e >= k).collect();
            prop_assert!(srcs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(pars.windows(2).all(|w| w[0] < w[1]));
        }

        /// The Bresenham spread is even: after the i-th source packet,
        /// exactly floor((i+1)(n-k)/k) parity packets are out.
        #[test]
        fn single_block_interleave_is_even(k in 1usize..100, extra in 0usize..200) {
            let l = Layout::single_block(k, k + extra);
            let order = single_block_interleaved(&l);
            let mut sources = 0usize;
            let mut parity = 0usize;
            for r in &order {
                if (r.esi as usize) < k {
                    // About to emit the next source: the run after source i
                    // (1-based count `sources`) must have emitted exactly
                    // floor(sources * extra / k) parity packets.
                    if sources > 0 {
                        prop_assert_eq!(parity, sources * extra / k);
                    }
                    sources += 1;
                } else {
                    parity += 1;
                }
            }
            prop_assert_eq!(sources, k);
            prop_assert_eq!(parity, extra);
        }
    }
}
