//! Packet identity and block layout.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one encoding packet: block number and encoding symbol ID
/// within the block. ESIs `0..k_b` are source packets, `k_b..n_b` parity —
/// the convention used by FLUTE/ALC systematic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketRef {
    /// Source block number.
    pub block: u32,
    /// Encoding symbol ID within the block.
    pub esi: u32,
}

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.esi)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct BlockSpan {
    k: u32,
    n: u32,
    /// Global index of this block's first packet.
    offset: u64,
}

/// The block structure of an encoded object.
///
/// LDGM codes use a single block covering the whole object; blocked RSE has
/// one span per source block. All schedules are expressed against a layout,
/// which keeps the scheduling logic code-agnostic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    blocks: Vec<BlockSpan>,
    total_source: u64,
    total: u64,
}

impl Layout {
    /// A single block with `k` source and `n` total packets (LDGM codes).
    ///
    /// # Panics
    /// Panics unless `0 < k <= n`.
    pub fn single_block(k: usize, n: usize) -> Layout {
        Layout::from_blocks([(k, n)])
    }

    /// Builds a layout from `(k_b, n_b)` pairs in block order.
    ///
    /// # Panics
    /// Panics on an empty block list or any block with `k_b == 0` or
    /// `n_b < k_b`.
    pub fn from_blocks<I: IntoIterator<Item = (usize, usize)>>(blocks: I) -> Layout {
        let mut spans = Vec::new();
        let mut offset = 0u64;
        let mut total_source = 0u64;
        for (k, n) in blocks {
            assert!(k > 0, "block with no source packets");
            assert!(n >= k, "block with n < k");
            spans.push(BlockSpan {
                k: k as u32,
                n: n as u32,
                offset,
            });
            offset += n as u64;
            total_source += k as u64;
        }
        assert!(!spans.is_empty(), "layout needs at least one block");
        Layout {
            blocks: spans,
            total_source,
            total: offset,
        }
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// `(k_b, n_b)` of block `b`.
    #[inline]
    pub fn block(&self, b: usize) -> (usize, usize) {
        let s = self.blocks[b];
        (s.k as usize, s.n as usize)
    }

    /// Total packets across blocks (`sum n_b`).
    #[inline]
    pub fn total_packets(&self) -> u64 {
        self.total
    }

    /// Total source packets (`sum k_b`).
    #[inline]
    pub fn total_source(&self) -> u64 {
        self.total_source
    }

    /// Total parity packets.
    #[inline]
    pub fn total_parity(&self) -> u64 {
        self.total - self.total_source
    }

    /// True if `r` denotes a source packet.
    #[inline]
    pub fn is_source(&self, r: PacketRef) -> bool {
        r.esi < self.blocks[r.block as usize].k
    }

    /// Validates that `r` exists in this layout.
    pub fn contains(&self, r: PacketRef) -> bool {
        (r.block as usize) < self.blocks.len() && r.esi < self.blocks[r.block as usize].n
    }

    /// Maps a packet to a dense global index `0..total_packets()` (block
    /// offset + ESI) — handy for bitmaps in simulators.
    #[inline]
    pub fn global_index(&self, r: PacketRef) -> u64 {
        let s = self.blocks[r.block as usize];
        debug_assert!(r.esi < s.n);
        s.offset + r.esi as u64
    }

    /// All source packets in sequential order (block 0 first).
    pub fn source_sequential(&self) -> Vec<PacketRef> {
        let mut out = Vec::with_capacity(self.total_source as usize);
        for (b, s) in self.blocks.iter().enumerate() {
            for esi in 0..s.k {
                out.push(PacketRef {
                    block: b as u32,
                    esi,
                });
            }
        }
        out
    }

    /// All parity packets in sequential order (block 0 first).
    pub fn parity_sequential(&self) -> Vec<PacketRef> {
        let mut out = Vec::with_capacity((self.total - self.total_source) as usize);
        for (b, s) in self.blocks.iter().enumerate() {
            for esi in s.k..s.n {
                out.push(PacketRef {
                    block: b as u32,
                    esi,
                });
            }
        }
        out
    }

    /// Every packet, source-sequential then parity-sequential.
    pub fn all_packets(&self) -> Vec<PacketRef> {
        let mut out = self.source_sequential();
        out.extend(self.parity_sequential());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_layout() {
        let l = Layout::single_block(10, 25);
        assert_eq!(l.num_blocks(), 1);
        assert_eq!(l.total_packets(), 25);
        assert_eq!(l.total_source(), 10);
        assert_eq!(l.total_parity(), 15);
        assert!(l.is_source(PacketRef { block: 0, esi: 9 }));
        assert!(!l.is_source(PacketRef { block: 0, esi: 10 }));
    }

    #[test]
    fn multi_block_offsets() {
        let l = Layout::from_blocks([(3, 7), (2, 5)]);
        assert_eq!(l.total_packets(), 12);
        assert_eq!(l.global_index(PacketRef { block: 0, esi: 6 }), 6);
        assert_eq!(l.global_index(PacketRef { block: 1, esi: 0 }), 7);
        assert_eq!(l.global_index(PacketRef { block: 1, esi: 4 }), 11);
    }

    #[test]
    fn sequential_orders() {
        let l = Layout::from_blocks([(2, 4), (1, 2)]);
        let src: Vec<(u32, u32)> = l
            .source_sequential()
            .iter()
            .map(|r| (r.block, r.esi))
            .collect();
        assert_eq!(src, vec![(0, 0), (0, 1), (1, 0)]);
        let par: Vec<(u32, u32)> = l
            .parity_sequential()
            .iter()
            .map(|r| (r.block, r.esi))
            .collect();
        assert_eq!(par, vec![(0, 2), (0, 3), (1, 1)]);
        assert_eq!(l.all_packets().len(), 6);
    }

    #[test]
    fn contains_validates_bounds() {
        let l = Layout::from_blocks([(2, 4)]);
        assert!(l.contains(PacketRef { block: 0, esi: 3 }));
        assert!(!l.contains(PacketRef { block: 0, esi: 4 }));
        assert!(!l.contains(PacketRef { block: 1, esi: 0 }));
    }

    #[test]
    fn global_indices_are_dense_and_unique() {
        let l = Layout::from_blocks([(3, 8), (3, 7), (2, 4)]);
        let mut seen = vec![false; l.total_packets() as usize];
        for r in l.all_packets() {
            let g = l.global_index(r) as usize;
            assert!(!seen[g], "duplicate global index {g}");
            seen[g] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_layout_rejected() {
        let _ = Layout::from_blocks(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "n < k")]
    fn inverted_block_rejected() {
        let _ = Layout::from_blocks([(5, 4)]);
    }
}
