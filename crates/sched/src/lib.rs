//! Packet transmission scheduling (paper §4) and reception models (§5).
//!
//! The sender has `n` encoding packets — source and parity, possibly spread
//! over several blocks for a small-block code like RSE — and must pick a
//! transmission order. That order interacts strongly with the channel's loss
//! *pattern*, which is the paper's central observation: the same code can be
//! excellent under one schedule and useless under another.
//!
//! This crate is pure combinatorics: it knows nothing about FEC mathematics
//! or channels. A [`Layout`] describes the block structure (one block for
//! LDGM, many for blocked RSE); a [`TxModel`] turns a layout + seed into a
//! transmission order over [`PacketRef`]s; an [`RxModel`] does the same for
//! the §5 receiver-controlled experiments.
//!
//! The six paper models:
//!
//! | Model | Order |
//! |-------|-------|
//! | `Tx1` | source sequential, then parity sequential |
//! | `Tx2` | source sequential, then parity random |
//! | `Tx3` | parity sequential, then source random |
//! | `Tx4` | everything random |
//! | `Tx5` | interleaved (round-robin across blocks; 1-source-per-parity-run for single-block codes) |
//! | `Tx6` | a random fraction (20%) of source + all parity, shuffled together |
//!
//! plus the no-FEC repetition scheme of §4.2 (each source packet sent `x`
//! times, random order), and two **extension models** for the paper's §7
//! "new transmission schemes" future work, both parameterized by sender
//! memory:
//!
//! * [`TxModel::WindowShuffle`] — bounded-buffer randomization spanning the
//!   Tx1 → Tx4 continuum (`window` packets of shuffle memory);
//! * [`TxModel::GroupInterleaved`] — depth-limited interleaving spanning
//!   sequential → Tx5 (`depth` blocks of interleaver memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interleave;
mod layout;
mod model;
mod rx;

pub use interleave::{block_interleaved, group_interleaved, single_block_interleaved};
pub use layout::{Layout, PacketRef};
pub use model::TxModel;
pub use rx::RxModel;
