//! The six transmission models of paper §4, plus the §4.2 repetition scheme.

use core::fmt;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use rand::Rng;

use crate::{block_interleaved, group_interleaved, single_block_interleaved, Layout, PacketRef};

/// A transmission schedule generator.
///
/// `schedule(layout, seed)` returns the complete transmission order. All
/// randomness derives from the seed, so a schedule can be regenerated
/// exactly (the sender and the simulator must agree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TxModel {
    /// Tx_model_1: all source packets sequentially, then all parity packets
    /// sequentially. The paper's strawman — "definitively bad".
    SourceSeqParitySeq,
    /// Tx_model_2: source sequentially, then parity in random order.
    SourceSeqParityRandom,
    /// Tx_model_3: all parity sequentially first, then source in random
    /// order.
    ParitySeqSourceRandom,
    /// Tx_model_4: everything in one fully random order. The paper's
    /// "universal" recommendation when the channel is unknown.
    Random,
    /// Tx_model_5: interleaved — round-robin across blocks for blocked
    /// codes, proportional source/parity alternation for single-block codes.
    /// The mandatory scheme for RSE.
    Interleaved,
    /// Tx_model_6: a random `source_fraction` of the source packets mixed
    /// randomly with all parity packets (paper uses 20%). Requires a high
    /// enough expansion ratio to remain decodable.
    PartialSourceRandom {
        /// Fraction of source packets transmitted (paper: 0.2).
        source_fraction: f64,
    },
    /// The §4.2 baseline: no FEC at all; every source packet is sent
    /// `copies` times and the whole stream is shuffled.
    RepeatSource {
        /// Number of copies of each source packet (paper: 2).
        copies: u32,
    },
    /// **Extension (§7 "new transmission schemes")** — bounded-memory
    /// randomization: the sender walks the sequential Tx_model_1 stream
    /// through a `window`-packet shuffle buffer, each step emitting a
    /// uniformly-chosen buffered packet and refilling. `window = 1`
    /// degenerates to Tx_model_1; `window >= n` is exactly Tx_model_4.
    ///
    /// The point: Tx_model_4's robustness requires buffering the *whole*
    /// object. This model measures how much randomization memory is
    /// actually needed — and the `ablation_schedule_memory` bench's answer
    /// is sobering: a window only displaces parity by about its own
    /// length, so Tx_model_4 performance arrives only once `window` is a
    /// large fraction of `n`. Memory-constrained senders should prefer
    /// structured interleaving ([`TxModel::GroupInterleaved`]).
    WindowShuffle {
        /// Shuffle-buffer size in packets (≥ 1).
        window: usize,
    },
    /// **Extension (§7 "new transmission schemes")** — depth-limited block
    /// interleaving: round-robin across groups of `depth` blocks at a time
    /// (`depth` is the interleaver's buffer budget, one in-flight packet
    /// per block). `depth = 1` sends blocks back-to-back; `depth >=
    /// num_blocks` is exactly Tx_model_5. Single-block (LDGM) layouts have
    /// no blocks to trade off and fall back to the Tx_model_5 source/parity
    /// alternation regardless of `depth`.
    GroupInterleaved {
        /// Blocks interleaved together (≥ 1).
        depth: usize,
    },
}

impl TxModel {
    /// Tx_model_6 with the paper's 20% source fraction.
    pub fn tx6_paper() -> TxModel {
        TxModel::PartialSourceRandom {
            source_fraction: 0.2,
        }
    }

    /// The models evaluated in the paper's §4, in paper order (Tx1–Tx6).
    pub fn paper_models() -> [TxModel; 6] {
        [
            TxModel::SourceSeqParitySeq,
            TxModel::SourceSeqParityRandom,
            TxModel::ParitySeqSourceRandom,
            TxModel::Random,
            TxModel::Interleaved,
            TxModel::tx6_paper(),
        ]
    }

    /// The paper's name for this model (`tx_model_1` … `tx_model_6`).
    pub fn name(&self) -> &'static str {
        match self {
            TxModel::SourceSeqParitySeq => "tx_model_1",
            TxModel::SourceSeqParityRandom => "tx_model_2",
            TxModel::ParitySeqSourceRandom => "tx_model_3",
            TxModel::Random => "tx_model_4",
            TxModel::Interleaved => "tx_model_5",
            TxModel::PartialSourceRandom { .. } => "tx_model_6",
            TxModel::RepeatSource { .. } => "no_fec_repetition",
            TxModel::WindowShuffle { .. } => "window_shuffle",
            TxModel::GroupInterleaved { .. } => "group_interleaved",
        }
    }

    /// Generates the full transmission order for `layout`.
    ///
    /// Every packet appears exactly once, except under
    /// [`TxModel::PartialSourceRandom`] (a subset of source packets) and
    /// [`TxModel::RepeatSource`] (source packets repeated, no parity).
    pub fn schedule(&self, layout: &Layout, seed: u64) -> Vec<PacketRef> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match *self {
            TxModel::SourceSeqParitySeq => {
                let mut out = layout.source_sequential();
                out.extend(layout.parity_sequential());
                out
            }
            TxModel::SourceSeqParityRandom => {
                let mut out = layout.source_sequential();
                let mut parity = layout.parity_sequential();
                parity.shuffle(&mut rng);
                out.extend(parity);
                out
            }
            TxModel::ParitySeqSourceRandom => {
                let mut out = layout.parity_sequential();
                let mut source = layout.source_sequential();
                source.shuffle(&mut rng);
                out.extend(source);
                out
            }
            TxModel::Random => {
                let mut out = layout.all_packets();
                out.shuffle(&mut rng);
                out
            }
            TxModel::Interleaved => {
                if layout.num_blocks() == 1 {
                    single_block_interleaved(layout)
                } else {
                    block_interleaved(layout)
                }
            }
            TxModel::PartialSourceRandom { source_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&source_fraction),
                    "source fraction must be in [0, 1]"
                );
                let mut source = layout.source_sequential();
                source.shuffle(&mut rng);
                let keep = ((layout.total_source() as f64) * source_fraction).round() as usize;
                source.truncate(keep);
                let mut out = source;
                out.extend(layout.parity_sequential());
                out.shuffle(&mut rng);
                out
            }
            TxModel::RepeatSource { copies } => {
                assert!(copies > 0, "at least one copy of each packet");
                let source = layout.source_sequential();
                let mut out = Vec::with_capacity(source.len() * copies as usize);
                for _ in 0..copies {
                    out.extend(source.iter().copied());
                }
                out.shuffle(&mut rng);
                out
            }
            TxModel::WindowShuffle { window } => {
                assert!(window > 0, "shuffle window must be positive");
                let mut stream = layout.source_sequential();
                stream.extend(layout.parity_sequential());
                let mut out = Vec::with_capacity(stream.len());
                let mut buf: Vec<PacketRef> = Vec::with_capacity(window.min(stream.len()));
                for pkt in stream {
                    buf.push(pkt);
                    if buf.len() == window {
                        let i = rng.gen_range(0..buf.len());
                        out.push(buf.swap_remove(i));
                    }
                }
                // Stream exhausted: drain the buffer in random order.
                while !buf.is_empty() {
                    let i = rng.gen_range(0..buf.len());
                    out.push(buf.swap_remove(i));
                }
                out
            }
            TxModel::GroupInterleaved { depth } => {
                assert!(depth > 0, "interleaving depth must be positive");
                if layout.num_blocks() == 1 {
                    single_block_interleaved(layout)
                } else {
                    group_interleaved(layout, depth)
                }
            }
        }
    }
}

impl fmt::Display for TxModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn layouts() -> Vec<Layout> {
        vec![
            Layout::single_block(10, 25),
            Layout::from_blocks([(4, 10), (4, 10), (3, 7)]),
            Layout::from_blocks([(1, 2)]),
        ]
    }

    fn assert_permutation(layout: &Layout, order: &[PacketRef]) {
        let mut seen = HashSet::new();
        for &r in order {
            assert!(layout.contains(r), "unknown packet {r}");
            assert!(seen.insert(r), "duplicate packet {r}");
        }
        assert_eq!(seen.len() as u64, layout.total_packets());
    }

    #[test]
    fn full_models_emit_exact_permutations() {
        for layout in layouts() {
            for model in [
                TxModel::SourceSeqParitySeq,
                TxModel::SourceSeqParityRandom,
                TxModel::ParitySeqSourceRandom,
                TxModel::Random,
                TxModel::Interleaved,
            ] {
                let order = model.schedule(&layout, 42);
                assert_permutation(&layout, &order);
            }
        }
    }

    #[test]
    fn tx1_order_is_sequential() {
        let l = Layout::from_blocks([(2, 4), (2, 3)]);
        let order = TxModel::SourceSeqParitySeq.schedule(&l, 0);
        let got: Vec<(u32, u32)> = order.iter().map(|r| (r.block, r.esi)).collect();
        assert_eq!(
            got,
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (0, 2), (0, 3), (1, 2)]
        );
    }

    #[test]
    fn tx2_prefix_is_sequential_sources() {
        let l = Layout::single_block(20, 50);
        let order = TxModel::SourceSeqParityRandom.schedule(&l, 7);
        for (i, r) in order.iter().take(20).enumerate() {
            assert_eq!(r.esi as usize, i);
        }
        // Parity tail contains every parity ESI exactly once.
        let tail: HashSet<u32> = order[20..].iter().map(|r| r.esi).collect();
        assert_eq!(tail.len(), 30);
        assert!(tail.iter().all(|&e| e >= 20));
        // And is actually shuffled (astronomically unlikely to be sorted).
        let tail_vec: Vec<u32> = order[20..].iter().map(|r| r.esi).collect();
        assert!(tail_vec.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn tx3_prefix_is_sequential_parity() {
        let l = Layout::single_block(20, 50);
        let order = TxModel::ParitySeqSourceRandom.schedule(&l, 7);
        for (i, r) in order.iter().take(30).enumerate() {
            assert_eq!(r.esi as usize, 20 + i);
        }
        let tail: HashSet<u32> = order[30..].iter().map(|r| r.esi).collect();
        assert_eq!(tail.len(), 20);
        assert!(tail.iter().all(|&e| e < 20));
    }

    #[test]
    fn tx4_is_shuffled() {
        let l = Layout::single_block(100, 250);
        let order = TxModel::Random.schedule(&l, 3);
        let esis: Vec<u32> = order.iter().map(|r| r.esi).collect();
        assert!(esis.windows(2).any(|w| w[0] > w[1]));
        // Source packets are spread out: some parity appears in the first k.
        assert!(order.iter().take(100).any(|r| !l.is_source(*r)));
    }

    #[test]
    fn tx6_sends_fraction_of_source_plus_all_parity() {
        let l = Layout::single_block(100, 250);
        let order = TxModel::tx6_paper().schedule(&l, 11);
        let sources = order.iter().filter(|r| l.is_source(**r)).count();
        let parity = order.iter().filter(|r| !l.is_source(**r)).count();
        assert_eq!(sources, 20); // 20% of 100
        assert_eq!(parity, 150); // all of it
                                 // No duplicates.
        let set: HashSet<PacketRef> = order.iter().copied().collect();
        assert_eq!(set.len(), order.len());
    }

    #[test]
    fn tx6_fraction_extremes() {
        let l = Layout::single_block(10, 25);
        let none = TxModel::PartialSourceRandom {
            source_fraction: 0.0,
        }
        .schedule(&l, 1);
        assert_eq!(none.len(), 15);
        assert!(none.iter().all(|r| !l.is_source(*r)));
        let all = TxModel::PartialSourceRandom {
            source_fraction: 1.0,
        }
        .schedule(&l, 1);
        assert_eq!(all.len(), 25);
    }

    #[test]
    fn repetition_sends_each_source_x_times() {
        let l = Layout::single_block(50, 125);
        let order = TxModel::RepeatSource { copies: 2 }.schedule(&l, 9);
        assert_eq!(order.len(), 100);
        assert!(order.iter().all(|r| l.is_source(*r)));
        let mut counts = [0u32; 50];
        for r in &order {
            counts[r.esi as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn window_shuffle_window_one_is_tx1() {
        for layout in layouts() {
            let tx1 = TxModel::SourceSeqParitySeq.schedule(&layout, 5);
            let w1 = TxModel::WindowShuffle { window: 1 }.schedule(&layout, 5);
            assert_eq!(tx1, w1);
        }
    }

    #[test]
    fn window_shuffle_huge_window_is_a_shuffle() {
        let l = Layout::single_block(100, 250);
        let order = TxModel::WindowShuffle { window: 10_000 }.schedule(&l, 3);
        assert_permutation(&l, &order);
        let esis: Vec<u32> = order.iter().map(|r| r.esi).collect();
        assert!(esis.windows(2).any(|w| w[0] > w[1]), "must not be sorted");
    }

    #[test]
    fn window_shuffle_displacement_bound() {
        // A packet emitted at output position p entered the buffer among the
        // first p + window stream elements, so its stream index is at most
        // p + window - 1: bounded-memory shuffles cannot pull packets
        // arbitrarily far forward.
        let l = Layout::single_block(60, 150);
        let window = 8usize;
        let stream = TxModel::SourceSeqParitySeq.schedule(&l, 0);
        let stream_pos = |r: &PacketRef| stream.iter().position(|s| s == r).unwrap();
        for seed in 0..5u64 {
            let order = TxModel::WindowShuffle { window }.schedule(&l, seed);
            assert_permutation(&l, &order);
            for (p, r) in order.iter().enumerate() {
                assert!(
                    stream_pos(r) < p + window,
                    "seed {seed}: output pos {p} pulled stream pos {} with window {window}",
                    stream_pos(r)
                );
            }
        }
    }

    #[test]
    fn group_interleaved_model_dispatches() {
        // Multi-block: matches the free function; full depth == Tx5.
        let l = Layout::from_blocks([(3, 7), (3, 7), (2, 5)]);
        let order = TxModel::GroupInterleaved { depth: 2 }.schedule(&l, 0);
        assert_eq!(order, crate::group_interleaved(&l, 2));
        let full = TxModel::GroupInterleaved { depth: 3 }.schedule(&l, 0);
        assert_eq!(full, TxModel::Interleaved.schedule(&l, 0));
        // Single block: falls back to the Tx5 source/parity alternation.
        let single = Layout::single_block(10, 25);
        let got = TxModel::GroupInterleaved { depth: 1 }.schedule(&single, 0);
        assert_eq!(got, TxModel::Interleaved.schedule(&single, 0));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn window_shuffle_rejects_zero() {
        let l = Layout::single_block(4, 8);
        let _ = TxModel::WindowShuffle { window: 0 }.schedule(&l, 0);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let l = Layout::from_blocks([(10, 25), (10, 24)]);
        for model in TxModel::paper_models() {
            let a = model.schedule(&l, 1234);
            let b = model.schedule(&l, 1234);
            assert_eq!(a, b, "{model}");
        }
        // And seed-sensitive for the randomized ones.
        for model in [
            TxModel::SourceSeqParityRandom,
            TxModel::ParitySeqSourceRandom,
            TxModel::Random,
            TxModel::tx6_paper(),
            TxModel::WindowShuffle { window: 4 },
        ] {
            let a = model.schedule(&l, 1);
            let b = model.schedule(&l, 2);
            assert_ne!(a, b, "{model}");
        }
        // WindowShuffle is deterministic per seed too.
        let w = TxModel::WindowShuffle { window: 7 };
        assert_eq!(w.schedule(&l, 9), w.schedule(&l, 9));
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = TxModel::paper_models().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "tx_model_1",
                "tx_model_2",
                "tx_model_3",
                "tx_model_4",
                "tx_model_5",
                "tx_model_6"
            ]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn permutation_property_random_layouts(
            sizes in proptest::collection::vec((1usize..15, 1usize..15), 1..6),
            seed in any::<u64>(),
        ) {
            let l = Layout::from_blocks(sizes.iter().map(|&(k, extra)| (k, k + extra)));
            for model in [
                TxModel::SourceSeqParitySeq,
                TxModel::SourceSeqParityRandom,
                TxModel::ParitySeqSourceRandom,
                TxModel::Random,
                TxModel::Interleaved,
                TxModel::WindowShuffle { window: 5 },
                TxModel::GroupInterleaved { depth: 2 },
            ] {
                assert_permutation(&l, &model.schedule(&l, seed));
            }
        }

        #[test]
        fn tx6_source_count_is_rounded_fraction(
            k in 1usize..200,
            extra in 1usize..100,
            pct in 0u32..=100,
            seed in any::<u64>(),
        ) {
            let l = Layout::single_block(k, k + extra);
            let f = pct as f64 / 100.0;
            let order = TxModel::PartialSourceRandom { source_fraction: f }.schedule(&l, seed);
            let sources = order.iter().filter(|r| l.is_source(**r)).count();
            prop_assert_eq!(sources, ((k as f64) * f).round() as usize);
        }
    }
}
