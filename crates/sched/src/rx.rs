//! Reception models (paper §5): the receiver-side dual of a transmission
//! schedule, used to study code behaviour in a fully controlled setting
//! (no channel, no transmission model — just "which packets arrive, in
//! which order").

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{Layout, PacketRef};

/// A reception model: produces the exact packet arrival sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RxModel {
    /// Rx_model_1 (§5.1): the receiver first gets `num_source` distinct
    /// source packets (chosen uniformly), then all parity packets in random
    /// order. Fig. 14 sweeps `num_source` and finds a sweet spot around
    /// 400–1000 for k = 20000.
    SourceThenParityRandom {
        /// Number of source packets received up front.
        num_source: usize,
    },
    /// All parity packets in random order, no source at all — the limiting
    /// case of Rx_model_1 (useful to show LDGM cannot start from parity
    /// alone).
    ParityOnlyRandom,
}

impl RxModel {
    /// Generates the arrival order for `layout`.
    ///
    /// # Panics
    /// Panics if `num_source` exceeds the layout's source packet count.
    pub fn reception(&self, layout: &Layout, seed: u64) -> Vec<PacketRef> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match *self {
            RxModel::SourceThenParityRandom { num_source } => {
                assert!(
                    num_source as u64 <= layout.total_source(),
                    "cannot receive {num_source} source packets out of {}",
                    layout.total_source()
                );
                let mut source = layout.source_sequential();
                source.shuffle(&mut rng);
                source.truncate(num_source);
                let mut parity = layout.parity_sequential();
                parity.shuffle(&mut rng);
                source.extend(parity);
                source
            }
            RxModel::ParityOnlyRandom => {
                let mut parity = layout.parity_sequential();
                parity.shuffle(&mut rng);
                parity
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rx1_prefix_is_distinct_sources() {
        let l = Layout::single_block(100, 250);
        let order = RxModel::SourceThenParityRandom { num_source: 30 }.reception(&l, 5);
        assert_eq!(order.len(), 30 + 150);
        let prefix: HashSet<PacketRef> = order[..30].iter().copied().collect();
        assert_eq!(prefix.len(), 30);
        assert!(order[..30].iter().all(|r| l.is_source(*r)));
        assert!(order[30..].iter().all(|r| !l.is_source(*r)));
        let parity: HashSet<PacketRef> = order[30..].iter().copied().collect();
        assert_eq!(parity.len(), 150, "every parity packet exactly once");
    }

    #[test]
    fn rx1_zero_sources_is_parity_only() {
        let l = Layout::single_block(10, 30);
        let a = RxModel::SourceThenParityRandom { num_source: 0 }.reception(&l, 9);
        let b = RxModel::ParityOnlyRandom.reception(&l, 9);
        assert_eq!(a.len(), 20);
        assert_eq!(b.len(), 20);
        assert!(a.iter().all(|r| !l.is_source(*r)));
    }

    #[test]
    fn rx1_all_sources_allowed() {
        let l = Layout::single_block(10, 30);
        let order = RxModel::SourceThenParityRandom { num_source: 10 }.reception(&l, 9);
        assert_eq!(order.len(), 30);
    }

    #[test]
    #[should_panic(expected = "cannot receive")]
    fn rx1_too_many_sources_panics() {
        let l = Layout::single_block(10, 30);
        let _ = RxModel::SourceThenParityRandom { num_source: 11 }.reception(&l, 9);
    }

    #[test]
    fn deterministic_given_seed() {
        let l = Layout::single_block(50, 125);
        let m = RxModel::SourceThenParityRandom { num_source: 5 };
        assert_eq!(m.reception(&l, 1), m.reception(&l, 1));
        assert_ne!(m.reception(&l, 1), m.reception(&l, 2));
    }

    #[test]
    fn works_on_multi_block_layouts() {
        let l = Layout::from_blocks([(5, 12), (5, 13)]);
        let order = RxModel::SourceThenParityRandom { num_source: 7 }.reception(&l, 3);
        assert_eq!(order.len(), 7 + 15);
        assert!(order.iter().all(|r| l.contains(*r)));
    }
}
