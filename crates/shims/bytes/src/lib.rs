//! Offline stand-in for the subset of the `bytes` crate this workspace uses:
//! cheaply-cloneable immutable byte buffers ([`Bytes`]), a growable builder
//! ([`BytesMut`]) and the [`BufMut`] write trait.
//!
//! [`Bytes`] here is an `Arc<[u8]>` — clones are reference-count bumps, as
//! with the real crate; sub-slicing without copying is not provided because
//! the workspace never slices shared buffers.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Wraps a static slice (copied here; the real crate borrows it, an
    /// optimisation this workspace does not depend on).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        Bytes::from(b.buf)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// Write interface for growable byte buffers.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, c);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn builder_writes_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"AB");
        m.put_u8(7);
        m.put_u32(0x0102_0304);
        let b = m.freeze();
        assert_eq!(&b[..], &[b'A', b'B', 7, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_default() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default(), Bytes::new());
        assert_eq!(Bytes::from_static(b"x").len(), 1);
    }
}
