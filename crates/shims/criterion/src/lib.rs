//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the structural API (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `Bencher::iter`, throughput annotation) with a simple
//! measurement loop: warm up briefly, then time `sample_size` batches and
//! report the best batch mean (the least-noise estimator for short
//! deterministic kernels). No statistics, plots or comparisons — run the
//! real criterion for those; this keeps `cargo bench` meaningful offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            best_per_iter: None,
        };
        f(&mut bencher);
        match bencher.best_per_iter {
            Some(per_iter) => {
                let mut line = format!("  {:<40} {:>12}/iter", id.label, fmt_duration(per_iter));
                if let Some(t) = self.throughput {
                    let secs = per_iter.as_secs_f64();
                    if secs > 0.0 {
                        match t {
                            Throughput::Bytes(n) => {
                                let gib = n as f64 / secs / (1024.0 * 1024.0 * 1024.0);
                                line.push_str(&format!("  {gib:>8.3} GiB/s"));
                            }
                            Throughput::Elements(n) => {
                                let meps = n as f64 / secs / 1e6;
                                line.push_str(&format!("  {meps:>8.3} Melem/s"));
                            }
                        }
                    }
                }
                println!("{line}");
            }
            None => println!("  {:<40} (no measurement)", id.label),
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    best_per_iter: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, storing the best observed batch mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until it costs ~5 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut best: Option<Duration> = None;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = start.elapsed() / batch as u32;
            best = Some(best.map_or(per_iter, |b| b.min(per_iter)));
        }
        self.best_per_iter = best;
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim-self-test");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop-sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("with-input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
