//! Offline stand-in for the subset of `crossbeam-channel` this workspace
//! uses: an unbounded MPMC channel with disconnect-aware blocking `recv`.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` — a few hundred nanoseconds per
//! operation instead of crossbeam's lock-free fast path, which is
//! irrelevant here: the sweep work queue moves thousands of messages while
//! each message triggers milliseconds of simulation.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the queue is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

struct Shared<T> {
    queue: Mutex<State<T>>,
    available: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message; fails only when every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.items.push_back(value);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.queue.lock().expect("channel lock").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.shared.available.notify_all();
        }
    }
}

/// The receiving half; clonable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Dequeues, blocking until a message arrives or every sender is
    /// dropped with the queue drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = state.items.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.available.wait(state).expect("channel lock");
        }
    }

    /// Non-blocking variant: `None` when currently empty (regardless of
    /// sender liveness).
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .expect("channel lock")
            .items
            .pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.queue.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.queue.lock().expect("channel lock").receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn multi_producer_multi_consumer_accounts_for_everything() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }
}
