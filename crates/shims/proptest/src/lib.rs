//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   unshrunk; every workspace property is cheap enough to debug directly.
//! * **Deterministic.** Each test derives its RNG seed from its module
//!   path and name, so failures reproduce exactly across runs; set
//!   `PROPTEST_SEED` to explore a different stream.
//! * Strategies generate values directly (no value trees).
//!
//! Covered API: the [`proptest!`] macro (with `#![proptest_config]`),
//! range and [`Just`] strategies, [`strategy::Strategy::prop_map`],
//! `prop_oneof!`, `any::<T>()`, `collection::vec` / `collection::hash_set`,
//! and `prop_assert!` / `prop_assert_eq!`.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            use rand::Rng as _;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// String-literal patterns act as generation regexes, as in the real
    /// proptest. This shim supports the subset the workspace uses: a
    /// sequence of atoms, each a character class (`[ -~]`, with ranges and
    /// `\`-escapes) or a literal character, optionally repeated by
    /// `{n}` / `{lo,hi}`.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            use rand::Rng as _;
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0usize;
            while i < chars.len() {
                // One atom: a class or a single (possibly escaped) char.
                let mut set = Vec::new();
                if chars[i] == '[' {
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // `a-b` range (a `-` just before `]` is literal).
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            for v in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern {self:?}");
                    i += 1; // consume ']'
                } else {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    set.push(c);
                    i += 1;
                }
                // Optional repetition.
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated repetition")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.parse::<usize>().expect("repetition bound"),
                            b.parse::<usize>().expect("repetition bound"),
                        ),
                        None => {
                            let n = body.parse::<usize>().expect("repetition count");
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                assert!(!set.is_empty(), "empty class in pattern {self:?}");
                let count = rng.gen_range(lo..=hi);
                for _ in 0..count {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
            out
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws from the full domain of the type.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    use rand::Rng as _;
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, bool);

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut SmallRng) -> i32 {
            use rand::Rng as _;
            rng.gen::<u32>() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut SmallRng) -> i64 {
            use rand::Rng as _;
            rng.gen::<u64>() as i64
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> f64 {
            use rand::Rng as _;
            // Finite floats only; the workspace never relies on NaN/inf
            // generation.
            rng.gen::<f64>() * 2e9 - 1e9
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng as _;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// An element-count specification: a fixed size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Generates `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `HashSet`s of values from `element`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            // The element domain may be smaller than the target; cap the
            // attempts so generation always terminates.
            let mut attempts = 0usize;
            while out.len() < target && attempts < 50 + target * 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Subset of proptest's config: the number of cases per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// `proptest::prop_oneof!` etc. also resolve at the crate root, as with the
// real crate.
pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Derives the deterministic RNG for one property (seeded from the test
/// path; `PROPTEST_SEED` perturbs every stream for exploration).
pub fn rng_for(test_path: &str) -> rand::rngs::SmallRng {
    use rand::SeedableRng as _;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = extra.parse::<u64>() {
            h ^= n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    rand::rngs::SmallRng::seed_from_u64(h)
}

/// Property assertion; identical to `assert!` here (no shrinking phase to
/// abort, so panicking directly is correct).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

/// The property-test macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg_pat:pat in $arg_strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg_pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($arg_strategy), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::rng_for("shim::ranges");
        for _ in 0..1000 {
            let v = (1usize..10).generate(&mut rng);
            assert!((1..10).contains(&v));
            let f = (0.5f64..0.75).generate(&mut rng);
            assert!((0.5..0.75).contains(&f));
            let t = (1u32.., 0u8..=3).generate(&mut rng);
            assert!(t.0 >= 1 && t.1 <= 3);
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = crate::rng_for("shim::collections");
        for _ in 0..200 {
            let v = collection::vec(0u8..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = collection::hash_set(0usize..64, 2..8).generate(&mut rng);
            assert!((2..8).contains(&s.len()));
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = crate::rng_for("shim::compose");
        let doubled = (1u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
            let pick: u8 = prop_oneof![Just(1u8), Just(2u8)].generate(&mut rng);
            assert!(pick == 1 || pick == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 1usize..10, mut b in 0u8..4, seed in any::<u64>()) {
            b += 1;
            prop_assert!(a < 10);
            prop_assert!(b <= 4);
            let _ = seed;
            prop_assert_eq!(a + 1, a + 1);
        }
    }
}
