//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The container building this workspace has no crates.io access, so the
//! external dependencies are provided as small in-tree shims (see
//! `crates/shims/README.md`). This one covers:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator seeded via SplitMix64
//!   (the same algorithm family the real `SmallRng` uses on 64-bit targets);
//! * the [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`,
//!   `gen_bool`;
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Streams are deterministic per seed but are **not** bit-identical to the
//! real `rand` crate; all workspace tests assert statistical properties or
//! same-process determinism, never specific stream values.

#![forbid(unsafe_code)]

/// Random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range from which a uniform value can be drawn.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                lo + draw as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; seeded by
    /// expanding the `u64` seed through SplitMix64 (the standard procedure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.windows(2).any(|w| w[0] > w[1]), "must actually shuffle");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(11);
        let v = [1u8, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
