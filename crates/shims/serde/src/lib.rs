//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde is a zero-copy visitor framework; this shim is a simple
//! value-tree model: [`Serialize`] renders a type into a [`Value`],
//! [`Deserialize`] rebuilds it from one. The derive macros (re-exported
//! from the in-tree `serde_derive` proc-macro crate) generate those two
//! impls for structs and enums, using serde's standard externally-tagged
//! JSON representation, and `serde_json` (also in-tree) converts [`Value`]
//! to and from JSON text. Workspace code only ever round-trips through
//! `serde_json::to_string` / `from_str`, which this covers exactly.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so serialization is
    /// deterministic.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its most faithful representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything with a fractional part or exponent.
    F64(f64),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(u)) => Some(*u),
            Value::Number(Number::I64(i)) if *i >= 0 => Some(*i as u64),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(i)) => Some(*i),
            Value::Number(Number::U64(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(u)) => Some(*u as f64),
            Value::Number(Number::I64(i)) => Some(*i as f64),
            Value::Number(Number::F64(f)) => Some(*f),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            message: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders a value tree for this type.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds this type from a value tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in an object, yielding `null` when absent (so
/// `Option` fields tolerate omission). Used by derive-generated code.
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> &'v Value {
    static NULL: Value = Value::Null;
    obj.iter()
        .find_map(|(k, v)| (k == name).then_some(v))
        .unwrap_or(&NULL)
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(Error::custom)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(Error::custom)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // Integral floats stay F64 so the round trip preserves typing of
        // the *value tree*; text formatting handles presentation.
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if a.len() != N {
            return Err(Error::custom("array length mismatch"));
        }
        let mut items = a.iter().map(T::from_value);
        // try_map is unstable; build through a Vec of exactly N elements.
        let collected: Result<Vec<T>, Error> = items.by_ref().collect();
        collected?
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                const LEN: usize = [$($idx),+].len();
                if a.len() != LEN {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&5u8.to_value()).unwrap(), Some(5));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u8, -2i32, 0.5f64);
        assert_eq!(<(u8, i32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = vec![("a".to_string(), Value::Bool(true))];
        assert!(field(&obj, "a").as_bool().unwrap());
        assert!(field(&obj, "b").is_null());
    }

    #[test]
    fn numeric_coercions_are_bounded() {
        assert!(u8::from_value(&300u32.to_value()).is_err());
        assert!(u64::from_value(&Value::Number(Number::I64(-1))).is_err());
        assert_eq!(Value::Number(Number::F64(3.0)).as_u64(), Some(3));
        assert_eq!(Value::Number(Number::F64(3.5)).as_u64(), None);
    }
}
