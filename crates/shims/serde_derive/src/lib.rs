//! Derive macros for the in-tree `serde` shim.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` — the
//! build is fully offline). Supports exactly the shapes this workspace
//! derives on:
//!
//! * structs with named fields;
//! * enums whose variants are unit, newtype (single unnamed field), or
//!   struct-like (named fields);
//! * no generics, no lifetimes, no `#[serde(...)]` attributes.
//!
//! The generated representation matches serde's externally-tagged JSON
//! default: structs and struct variants become objects, unit variants
//! become strings, newtype variants become `{"Variant": value}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named struct fields.
    Struct(Vec<String>),
    /// Enum variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("literal parses")
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor; returns the next significant token index.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);

    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "{name}: generic types are not supported by the serde shim"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("{name}: expected braced body, got {other:?}")),
    };

    let kind = match item_kind.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)?),
        "enum" => Kind::Enum(parse_variants(body)?),
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, kind })
}

/// Parses `field: Type, ...` out of a brace group, returning field names.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("field {field}: expected `:`, got {other:?}")),
        }
        // Skip the type: everything up to a top-level comma. Track `<...>`
        // nesting so `Vec<(f64, f64)>`-style types do not split early.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Parses enum variants: `Name`, `Name(Type)`, or `Name { f: T, ... }`.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                // Newtype only: a top-level comma would mean a multi-field
                // tuple variant, which the workspace never uses.
                let mut depth = 0i32;
                for t in g.stream() {
                    match &t {
                        TokenTree::Group(_) => {}
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            return Err(format!(
                                "variant {name}: multi-field tuple variants unsupported"
                            ));
                        }
                        _ => {}
                    }
                }
                Shape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Optional trailing comma between variants.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut entries = String::new();
            for f in fields {
                entries.push_str(&format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                ));
            }
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),"
                    )),
                    Shape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(__x) => ::serde::Value::Object(::std::vec![(\
                            ::std::string::String::from({vn:?}), \
                            ::serde::Serialize::to_value(__x))]),"
                    )),
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut entries = String::new();
                        for f in fields {
                            entries.push_str(&format!(
                                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f})),"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                                ::std::string::String::from({vn:?}), \
                                ::serde::Value::Object(::std::vec![{entries}]))]),"
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, {f:?}))\
                         .map_err(|e| ::serde::Error::custom(\
                             ::std::format!(\"{name}.{f}: {{e}}\")))?,"
                ));
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Shape::Newtype => tagged_arms.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner).map_err(|e| \
                                 ::serde::Error::custom(::std::format!(\"{name}::{vn}: {{e}}\")))?)),"
                    )),
                    Shape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::field(__iobj, {f:?}))\
                                     .map_err(|e| ::serde::Error::custom(\
                                         ::std::format!(\"{name}::{vn}.{f}: {{e}}\")))?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __iobj = __inner.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"{name}::{vn}: expected object\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vn} {{ {inits} }});\n\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     match __s {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                     if __obj.len() == 1 {{\n\
                         let (__tag, __inner) = &__obj[0];\n\
                         match __tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                     \"{name}: no matching variant\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
