//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], implemented over
//! the in-tree `serde` shim's [`Value`] tree.
//!
//! Numbers print via Rust's shortest-round-trip float formatting, so
//! `to_string → from_str → to_string` is a fixed point — the property the
//! workspace's serialization tests assert.

#![forbid(unsafe_code)]

pub use serde::{Error, Number, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        })?,
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (k, item) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)
            })?
        }
    }
    Ok(())
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i)?;
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
    Ok(())
}

fn write_number(out: &mut String, n: Number) -> Result<(), Error> {
    use std::fmt::Write as _;
    match n {
        Number::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F64(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // `{}` on f64 is the shortest string that parses back exactly.
            let _ = write!(out, "{f}");
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::custom)?,
                                16,
                            )
                            .map_err(Error::custom)?;
                            // Surrogate pairs are not needed by this
                            // workspace's data (plain ASCII identifiers).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_textually() {
        assert_eq!(to_string(&1u32).unwrap(), "1");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u32>("1").unwrap(), 1);
        assert_eq!(from_str::<f64>("0.25").unwrap(), 0.25);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.5f64, 2.0, -0.125];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
        let opt: Option<u8> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_serialization_is_a_fixed_point() {
        for f in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789, 2e300] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
            assert_eq!(to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn integral_floats_survive_the_round_trip() {
        // 1.0 prints as "1", parses as U64(1); deserializing f64 accepts it.
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1");
        assert_eq!(from_str::<f64>(&json).unwrap(), 1.0);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("\"x").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
