//! Monte-Carlo simulation engine for the paper's methodology (§4.1).
//!
//! An [`Experiment`] fixes a (FEC code, object size, expansion ratio,
//! transmission model, channel) tuple. A [`Runner`] executes independent
//! randomized runs of it: generate the transmission schedule, walk it
//! through the Gilbert channel, feed survivors to a *structural* decoder,
//! and record when decoding completed ([`RunResult`]). A [`GridSweep`]
//! repeats that over the paper's 14×14 `(p, q)` grid with `runs` trials per
//! cell, in parallel, and aggregates with the paper's strict rule: **a cell
//! where any run failed is masked** (printed as `-`), because a scheme that
//! sometimes fails outright is not acceptable in a feedback-free system.
//!
//! The headline metric is the **average inefficiency ratio**
//! `inef_ratio = n_necessary_for_decoding / k`; the secondary curve
//! `n_received / k` (everything the channel delivered, even after decoding
//! finished) bounds it from above and reproduces the paper's
//! `nreceived/k` surfaces.
//!
//! Parallelism follows the workspace guides: scoped threads (structured
//! concurrency, panics propagate) fed by a `crossbeam` work queue; no async
//! runtime, because this is pure CPU-bound work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
mod run;
mod seed;
mod spec;
mod sweep;

pub use run::{RunResult, Runner};
pub use seed::mix_seed;
pub use spec::{layout_for, CodeKind, CodecHandle, ExpansionRatio, SimError};
pub use sweep::{
    finalize_cells, CellAccum, CellStats, GridSweep, SweepConfig, SweepResult, WorkUnit,
    DEFAULT_RUNS_PER_UNIT,
};

use fec_channel::GilbertParams;
use fec_sched::TxModel;
use serde::{Deserialize, Serialize};

/// A fully-specified simulation experiment (one curve/cell family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Which FEC code to simulate (any registered codec).
    pub code: CodecHandle,
    /// Number of source packets in the object (paper: 20000).
    pub k: usize,
    /// FEC expansion ratio `n/k` (paper: 1.5 and 2.5).
    pub ratio: ExpansionRatio,
    /// Transmission model.
    pub tx: TxModel,
    /// Channel parameters (overridden per cell by grid sweeps).
    pub channel: GilbertParams,
}

impl Experiment {
    /// Convenience constructor with a perfect channel (grid sweeps replace
    /// the channel per cell anyway). Accepts a codec handle, a `&`-ref to
    /// one, or a deprecated [`CodeKind`] shorthand.
    pub fn new(
        code: impl Into<CodecHandle>,
        k: usize,
        ratio: ExpansionRatio,
        tx: TxModel,
    ) -> Experiment {
        Experiment {
            code: code.into(),
            k,
            ratio,
            tx,
            channel: GilbertParams::perfect(),
        }
    }

    /// Same experiment with different channel parameters.
    pub fn with_channel(mut self, channel: GilbertParams) -> Experiment {
        self.channel = channel;
        self
    }
}
