//! Report generation: the paper's appendix-style tables, CSV, gnuplot
//! surfaces and ASCII heat maps.

use std::fmt::Write as _;

use crate::SweepResult;

/// Formats a sweep like the paper's appendix tables: rows are `p` values,
/// columns are `q` values, cells show the mean inefficiency with three
/// decimals, and `-` marks cells where at least one run failed.
pub fn paper_table(result: &SweepResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "p \\ q ");
    for q in &result.config.grid_q {
        let _ = write!(out, "{:>7}", format_pct(*q));
    }
    let _ = writeln!(out);
    for (pi, p) in result.config.grid_p.iter().enumerate() {
        let _ = write!(out, "{:>5} ", format_pct(*p));
        for qi in 0..result.config.grid_q.len() {
            let cell = result.cell_at(pi, qi).expect("cell on grid");
            match cell.mean_inefficiency {
                Some(m) => {
                    let _ = write!(out, "{m:>7.3}");
                }
                None => {
                    let _ = write!(out, "{:>7}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// CSV export: `p,q,runs,failures,mean_inef,min,max,std,mean_received_ratio`.
pub fn to_csv(result: &SweepResult) -> String {
    let mut out = String::from(
        "p,q,runs,failures,mean_inef,min_inef,max_inef,std_inef,mean_received_ratio\n",
    );
    for c in &result.cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            c.p,
            c.q,
            c.runs,
            c.failures,
            opt(c.mean_inefficiency),
            opt(c.min_inefficiency),
            opt(c.max_inefficiency),
            opt(c.std_inefficiency),
            opt(c.mean_received_ratio),
        );
    }
    out
}

/// Gnuplot `splot`-ready surface: blocks of `p q value` lines separated by
/// blank lines per `p` row; masked cells are omitted (exactly how the paper
/// leaves holes in its 3-D plots).
pub fn to_dat(result: &SweepResult) -> String {
    let mut out = String::new();
    for pi in 0..result.config.grid_p.len() {
        for qi in 0..result.config.grid_q.len() {
            let cell = result.cell_at(pi, qi).expect("cell on grid");
            if let Some(m) = cell.mean_inefficiency {
                let _ = writeln!(out, "{} {} {m:.6}", cell.p, cell.q);
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// A terminal heat map of the masked/unmasked structure: `#` = decodable
/// cell (all runs succeeded), `.` = masked. Rows are `p` (top = 0), columns
/// `q` (left = 0) — visually matching Fig. 6's feasibility region.
pub fn ascii_mask(result: &SweepResult) -> String {
    let mut out = String::new();
    for pi in 0..result.config.grid_p.len() {
        for qi in 0..result.config.grid_q.len() {
            let cell = result.cell_at(pi, qi).expect("cell on grid");
            out.push(if cell.is_masked() { '.' } else { '#' });
        }
        out.push('\n');
    }
    out
}

fn format_pct(v: f64) -> String {
    let pct = v * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("{}", pct.round() as i64)
    } else {
        format!("{pct:.1}")
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or(String::new(), |x| format!("{x:.6}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExpansionRatio, Experiment, GridSweep, SweepConfig};
    use fec_codec::builtin;
    use fec_sched::TxModel;

    fn sample() -> SweepResult {
        let exp = Experiment::new(
            builtin::ldgm_staircase(),
            150,
            ExpansionRatio::R2_5,
            TxModel::Random,
        );
        let cfg = SweepConfig {
            runs: 3,
            grid_p: vec![0.0, 0.9],
            grid_q: vec![0.1, 1.0],
            seed: 2,
            matrix_pool: 1,
            track_total: false,
            threads: Some(1),
        };
        GridSweep::new(exp, cfg).unwrap().execute()
    }

    #[test]
    fn paper_table_shape() {
        let t = paper_table(&sample());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 p-rows
        assert!(lines[0].contains("10"));
        assert!(lines[0].contains("100"));
        // p=0 row has numeric cells with 3 decimals.
        assert!(lines[1].trim_start().starts_with('0'));
        assert!(lines[1].contains("1."), "numeric cell in {:?}", lines[1]);
        // p=0.9,q=0.1 is hopeless → a dash somewhere in the last row.
        assert!(lines[2].contains('-'));
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let r = sample();
        let csv = to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.cells.len());
        assert!(lines[0].starts_with("p,q,runs"));
        // Masked cells leave the mean column empty.
        assert!(lines.iter().any(|l| l.contains(",,")));
    }

    #[test]
    fn dat_omits_masked_cells_and_separates_rows() {
        let r = sample();
        let dat = to_dat(&r);
        let data_lines = dat.lines().filter(|l| !l.is_empty()).count();
        let unmasked = r.cells.iter().filter(|c| !c.is_masked()).count();
        assert_eq!(data_lines, unmasked);
        assert!(dat.contains("\n\n"), "blank separators between p-rows");
    }

    #[test]
    fn ascii_mask_dimensions() {
        let r = sample();
        let map = ascii_mask(&r);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.len() == 2));
        assert!(map.contains('#'));
        assert!(map.contains('.'));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(format_pct(0.0), "0");
        assert_eq!(format_pct(0.05), "5");
        assert_eq!(format_pct(1.0), "100");
        assert_eq!(format_pct(0.0109), "1.1");
    }
}
