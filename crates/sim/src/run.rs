//! Single-experiment execution: schedule → channel → structural decode.

use fec_channel::{GilbertChannel, GilbertParams, LossModel};
use fec_codec::{StructuralFactory, StructuralSession};
use fec_sched::{Layout, PacketRef, RxModel, TxModel};

use crate::seed::mix_seed;
use crate::spec::SimError;
use crate::Experiment;

/// Sub-seed stream tags (see [`mix_seed`]).
const TAG_SCHED: u64 = 1;
const TAG_CHAN: u64 = 2;
const TAG_MATRIX: u64 = 3;

/// Outcome of one simulated transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Whether the receiver decoded the full object before the transmission
    /// ended.
    pub decoded: bool,
    /// Number of packets received when decoding completed (the paper's
    /// `n_necessary_for_decoding`); `None` if decoding never completed.
    pub n_necessary: Option<u64>,
    /// Total packets the channel delivered over the whole transmission.
    /// Only meaningful when the run was executed with `track_total`
    /// (otherwise it stops counting at decode completion).
    pub n_received: u64,
    /// Packets the sender transmitted (the schedule length).
    pub n_sent: u64,
}

impl RunResult {
    /// The paper's inefficiency ratio `n_necessary / k` (`None` on failure).
    pub fn inefficiency(&self, k: usize) -> Option<f64> {
        self.n_necessary.map(|n| n as f64 / k as f64)
    }

    /// The paper's `n_received / k` upper-bound curve.
    pub fn received_ratio(&self, k: usize) -> f64 {
        self.n_received as f64 / k as f64
    }
}

/// The §4.2 repetition baseline: no FEC at all, completion is "collected
/// all k distinct source packets". This is a transmission-model property,
/// not a codec, so it lives here rather than behind [`fec_codec`].
struct CouponCounting<'l> {
    layout: &'l Layout,
    seen: Vec<bool>,
    missing: usize,
}

impl StructuralSession for CouponCounting<'_> {
    fn add(&mut self, r: PacketRef) -> bool {
        let g = self.layout.global_index(r) as usize;
        if self.layout.is_source(r) && !self.seen[g] {
            self.seen[g] = true;
            self.missing -= 1;
        }
        self.missing == 0
    }
}

/// Prepared executor for one experiment: owns the layout and the codec's
/// [`StructuralFactory`] (matrix pools, partitions) so repeated runs
/// amortise construction.
///
/// `Runner` is immutable after construction and can be shared across sweep
/// threads (`&Runner` is `Sync`).
pub struct Runner {
    experiment: Experiment,
    layout: Layout,
    structural: Box<dyn StructuralFactory>,
}

impl Runner {
    /// Default number of independently-seeded code structures (LDGM
    /// matrices) per runner.
    ///
    /// The paper regenerates the graph per test; re-using a small pool
    /// round-robin keeps that variability at a fraction of the build cost.
    pub const DEFAULT_MATRIX_POOL: usize = 4;

    /// Prepares a runner, building a pool of `matrix_pool` code structures
    /// if the code needs them (pass [`Runner::DEFAULT_MATRIX_POOL`]
    /// normally).
    pub fn new(experiment: Experiment, matrix_pool: usize) -> Result<Runner, SimError> {
        let ratio = experiment.ratio.as_f64();
        let layout = experiment.code.layout(experiment.k, ratio)?;
        // Fixed base so every runner with equal (code, k, ratio) uses the
        // same structure pool — comparisons across transmission models
        // then hold the code instance constant.
        let seeds: Vec<u64> = (0..matrix_pool)
            .map(|i| mix_seed(0x5EED_BA5E, &[TAG_MATRIX, i as u64]))
            .collect();
        let structural = experiment
            .code
            .structural_factory(experiment.k, ratio, &seeds)?;
        Ok(Runner {
            experiment,
            layout,
            structural,
        })
    }

    /// The experiment this runner executes.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The packet layout (block structure).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Executes run number `run_idx` with the experiment's own channel.
    ///
    /// With `track_total = false` the walk stops at decode completion
    /// (faster); with `true` it consumes the whole schedule so
    /// [`RunResult::n_received`] reflects the full transmission.
    pub fn run(&self, master_seed: u64, run_idx: u64, track_total: bool) -> RunResult {
        self.run_with_channel(self.experiment.channel, master_seed, run_idx, track_total)
    }

    /// Executes run number `run_idx` against an explicit channel (used by
    /// grid sweeps, which vary the channel per cell).
    pub fn run_with_channel(
        &self,
        channel: GilbertParams,
        master_seed: u64,
        run_idx: u64,
        track_total: bool,
    ) -> RunResult {
        let sched_seed = mix_seed(master_seed, &[TAG_SCHED, run_idx]);
        let chan_seed = mix_seed(master_seed, &[TAG_CHAN, run_idx]);
        let schedule = self.experiment.tx.schedule(&self.layout, sched_seed);
        let mut gilbert = GilbertChannel::new(channel, chan_seed);
        self.walk(&schedule, |_| gilbert.next_is_lost(), run_idx, track_total)
    }

    /// Executes run number `run_idx` against any [`LossModel`] — a
    /// [`DriftingChannel`](fec_channel::DriftingChannel), a replayed
    /// [`TraceChannel`](fec_channel::TraceChannel), an n-state chain…
    ///
    /// Unlike [`Runner::run_with_channel`] the model is **stateful and
    /// external**: consecutive runs against the same model see consecutive
    /// stretches of one loss process, which is exactly what a closed
    /// adaptive loop needs (the channel does not reset between objects).
    pub fn run_with_model(
        &self,
        model: &mut dyn LossModel,
        master_seed: u64,
        run_idx: u64,
        track_total: bool,
    ) -> RunResult {
        let sched_seed = mix_seed(master_seed, &[TAG_SCHED, run_idx]);
        let schedule = self.experiment.tx.schedule(&self.layout, sched_seed);
        if track_total {
            // The whole schedule is consumed regardless, so batching the
            // session calls cannot change how far the external model
            // advances.
            self.walk(&schedule, |_| model.next_is_lost(), run_idx, true)
        } else {
            // An external model's state is shared across runs and the
            // per-packet walk stops consuming it exactly at decode
            // completion — batching would overdraw the loss process, so
            // this path stays scalar.
            self.walk_scalar(&schedule, |_| model.next_is_lost(), run_idx, false)
        }
    }

    /// Like [`Runner::run_with_model`], but also returns the per-packet
    /// loss observations a receiver would infer from schedule gaps
    /// (`observed[i]` is the fate of the `i`-th *transmitted* packet), and
    /// optionally truncates the transmission to `n_sent` packets — the
    /// §6.2 planned-transmission mode.
    ///
    /// The whole (truncated) schedule is always consumed, so the
    /// observation vector covers every transmitted packet even after
    /// decoding completes; [`RunResult::n_received`] is correspondingly
    /// exact.
    pub fn run_observed(
        &self,
        model: &mut dyn LossModel,
        master_seed: u64,
        run_idx: u64,
        n_sent: Option<u64>,
    ) -> (RunResult, Vec<bool>) {
        let sched_seed = mix_seed(master_seed, &[TAG_SCHED, run_idx]);
        let mut schedule = self.experiment.tx.schedule(&self.layout, sched_seed);
        if let Some(limit) = n_sent {
            schedule.truncate(limit as usize);
        }
        let mut observed = Vec::with_capacity(schedule.len());
        let result = self.walk(
            &schedule,
            |_| {
                let lost = model.next_is_lost();
                observed.push(lost);
                lost
            },
            run_idx,
            true,
        );
        (result, observed)
    }

    /// Executes a §5 reception-model run: the arrival sequence is given
    /// directly, nothing is lost.
    pub fn run_reception(&self, rx: RxModel, master_seed: u64, run_idx: u64) -> RunResult {
        let rx_seed = mix_seed(master_seed, &[TAG_SCHED, run_idx]);
        let arrivals = rx.reception(&self.layout, rx_seed);
        self.walk(&arrivals, |_| false, run_idx, false)
    }

    /// Survivor-window size for the batched walk: big enough to amortise
    /// the per-call dispatch, small enough that an early-stopping run does
    /// not decode far past its completion point.
    const WALK_BATCH: usize = 128;

    /// Walks a packet sequence through a loss predicate into a fresh
    /// structural decoding session, feeding the surviving packets down in
    /// [`Runner::WALK_BATCH`]-sized windows
    /// ([`StructuralSession::add_batch`]).
    ///
    /// Produces exactly the [`RunResult`] of the per-packet walk: the loss
    /// predicate is still consumed once per transmitted packet, in order,
    /// and the completion index inside a window pins `n_necessary` to the
    /// packet. With `track_total = false` the walk stops at the window in
    /// which decoding completed (the predicate may then be consumed up to
    /// one window past the completing packet — callers whose predicate
    /// state outlives the run use [`Runner::walk_scalar`] instead).
    fn walk(
        &self,
        sequence: &[PacketRef],
        mut is_lost: impl FnMut(usize) -> bool,
        run_idx: u64,
        track_total: bool,
    ) -> RunResult {
        let mut session = self.make_session(run_idx);
        let mut n_received = 0u64;
        let mut n_necessary = None;
        let mut batch: Vec<PacketRef> = Vec::with_capacity(Self::WALK_BATCH);
        let mut idx = 0;
        while idx < sequence.len() {
            batch.clear();
            while idx < sequence.len() && batch.len() < Self::WALK_BATCH {
                if !is_lost(idx) {
                    batch.push(sequence[idx]);
                }
                idx += 1;
            }
            if let Some(done) = session.add_batch(&batch) {
                if n_necessary.is_none() {
                    n_necessary = Some(n_received + done as u64 + 1);
                    if !track_total {
                        // The per-packet walk stops receiving at the
                        // completing packet; mirror its count exactly.
                        n_received = n_necessary.expect("just set");
                        break;
                    }
                }
            }
            n_received += batch.len() as u64;
        }
        RunResult {
            decoded: n_necessary.is_some(),
            n_necessary,
            n_received,
            n_sent: sequence.len() as u64,
        }
    }

    /// The per-packet reference walk: identical results to [`Runner::walk`],
    /// but the loss predicate is never consumed past the completing packet.
    /// Used when the predicate drives an external stateful [`LossModel`]
    /// whose position must stay exact across runs.
    fn walk_scalar(
        &self,
        sequence: &[PacketRef],
        mut is_lost: impl FnMut(usize) -> bool,
        run_idx: u64,
        track_total: bool,
    ) -> RunResult {
        let mut session = self.make_session(run_idx);
        let mut n_received = 0u64;
        let mut n_necessary = None;
        for (i, &r) in sequence.iter().enumerate() {
            if is_lost(i) {
                continue;
            }
            n_received += 1;
            if session.add(r) && n_necessary.is_none() {
                n_necessary = Some(n_received);
                if !track_total {
                    break;
                }
            }
        }
        RunResult {
            decoded: n_necessary.is_some(),
            n_necessary,
            n_received,
            n_sent: sequence.len() as u64,
        }
    }

    fn make_session(&self, run_idx: u64) -> Box<dyn StructuralSession + '_> {
        if matches!(self.experiment.tx, TxModel::RepeatSource { .. }) {
            // No FEC: parity never enters the schedule; completion is
            // "collected all k distinct source packets".
            return Box::new(CouponCounting {
                layout: &self.layout,
                seen: vec![false; self.layout.total_packets() as usize],
                missing: self.experiment.k,
            });
        }
        self.structural.session(run_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExpansionRatio;
    use fec_codec::{builtin, registry, CodecHandle};

    fn exp(code: CodecHandle, k: usize, ratio: ExpansionRatio, tx: TxModel) -> Experiment {
        Experiment::new(code, k, ratio, tx)
    }

    #[test]
    fn perfect_channel_tx1_is_exactly_k() {
        // Paper §4.3: "without loss (p = 0) the inefficiency ratio is 1.0
        // with all codes" under Tx_model_1.
        for code in registry::candidates() {
            let r = Runner::new(
                exp(
                    code.clone(),
                    500,
                    ExpansionRatio::R2_5,
                    TxModel::SourceSeqParitySeq,
                ),
                2,
            )
            .unwrap();
            let out = r.run(7, 0, false);
            assert!(out.decoded);
            assert_eq!(out.n_necessary, Some(500), "{code}");
            assert_eq!(out.inefficiency(500), Some(1.0));
        }
    }

    #[test]
    fn tx2_perfect_channel_also_exactly_k() {
        for code in registry::candidates() {
            let r = Runner::new(
                exp(
                    code.clone(),
                    300,
                    ExpansionRatio::R1_5,
                    TxModel::SourceSeqParityRandom,
                ),
                2,
            )
            .unwrap();
            let out = r.run(11, 0, false);
            assert_eq!(out.n_necessary, Some(300), "{code}");
        }
    }

    #[test]
    fn tx3_perfect_channel_matches_paper_section_4_5() {
        // Paper: with p = 0 under Tx_model_3 the inefficiency is ~1.5 at
        // ratio 2.5 for both families (parity is sent first; LDGM needs one
        // source packet, RSE needs k_b of the last block).
        let k = 500;
        for code in [builtin::ldgm_staircase(), builtin::ldgm_triangle()] {
            let r = Runner::new(
                exp(
                    code.clone(),
                    k,
                    ExpansionRatio::R2_5,
                    TxModel::ParitySeqSourceRandom,
                ),
                2,
            )
            .unwrap();
            let out = r.run(3, 0, false);
            // All n-k = 750 parity packets + exactly one source packet.
            assert_eq!(out.n_necessary, Some(751), "{code}");
        }
        let r = Runner::new(
            exp(
                builtin::rse(),
                k,
                ExpansionRatio::R2_5,
                TxModel::ParitySeqSourceRandom,
            ),
            2,
        )
        .unwrap();
        let out = r.run(3, 0, false);
        let inef = out.inefficiency(k).unwrap();
        assert!((1.4..=1.6).contains(&inef), "RSE Tx3 inefficiency {inef}");
    }

    #[test]
    fn lossy_channel_needs_more_than_k() {
        let ch = GilbertParams::new(0.05, 0.5).unwrap();
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                1000,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        let out = r.run_with_channel(ch, 5, 0, false);
        assert!(out.decoded);
        assert!(out.n_necessary.unwrap() > 1000);
    }

    #[test]
    fn hopeless_channel_fails() {
        // q = 0: after the first loss, everything is lost. With p = 0.5 the
        // receiver gets only a handful of packets.
        let ch = GilbertParams::new(0.5, 0.0).unwrap();
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                200,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        let out = r.run_with_channel(ch, 5, 0, true);
        assert!(!out.decoded);
        assert_eq!(out.n_necessary, None);
        assert!(out.n_received < 200);
    }

    #[test]
    fn track_total_consumes_whole_schedule() {
        let r = Runner::new(
            exp(
                builtin::rse(),
                100,
                ExpansionRatio::R1_5,
                TxModel::Interleaved,
            ),
            1,
        )
        .unwrap();
        let full = r.run(1, 0, true);
        assert_eq!(full.n_received, full.n_sent); // perfect channel
        let short = r.run(1, 0, false);
        assert!(short.n_received <= full.n_received);
    }

    #[test]
    fn repetition_baseline_decodes_only_when_all_coupons_collected() {
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                100,
                ExpansionRatio::R2_5,
                TxModel::RepeatSource { copies: 2 },
            ),
            1,
        )
        .unwrap();
        let out = r.run(9, 0, false);
        assert!(out.decoded, "no loss: all coupons arrive");
        assert_eq!(out.n_sent, 200);
        // Must wait for the last distinct coupon; with 2 copies shuffled the
        // expected completion is deep into the stream.
        assert!(out.n_necessary.unwrap() > 100);
    }

    #[test]
    fn repetition_fails_with_any_burst_loss() {
        // fig 7's point: with p > 0 some source packet loses both copies.
        let ch = GilbertParams::new(0.2, 0.3).unwrap();
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                500,
                ExpansionRatio::R2_5,
                TxModel::RepeatSource { copies: 2 },
            ),
            1,
        )
        .unwrap();
        let failures = (0..10)
            .filter(|&i| !r.run_with_channel(ch, 3, i, true).decoded)
            .count();
        assert!(failures >= 8, "only {failures}/10 failed");
    }

    #[test]
    fn reception_model_runs_without_channel() {
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                200,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        let out = r.run_reception(RxModel::SourceThenParityRandom { num_source: 20 }, 5, 0);
        assert!(out.decoded);
        assert_eq!(out.n_sent, 20 + 300);
    }

    #[test]
    fn ldgm_parity_only_reception_fails() {
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                200,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        let out = r.run_reception(RxModel::ParityOnlyRandom, 5, 0);
        assert!(!out.decoded, "LDGM cannot decode from parity alone");
    }

    #[test]
    fn rse_parity_only_reception_succeeds_at_ratio_2_5() {
        // n - k >= k per block at ratio 2.5, so RSE decodes from parity only
        // (paper §4.5: RSE can be used as a non-systematic code).
        let r = Runner::new(
            exp(builtin::rse(), 200, ExpansionRatio::R2_5, TxModel::Random),
            1,
        )
        .unwrap();
        let out = r.run_reception(RxModel::ParityOnlyRandom, 5, 0);
        assert!(out.decoded);
    }

    #[test]
    fn run_with_model_matches_run_with_channel() {
        // A fresh GilbertChannel driven via the dyn path must reproduce the
        // dedicated Gilbert path exactly (same seed derivation).
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                300,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        let params = GilbertParams::new(0.1, 0.5).unwrap();
        let direct = r.run_with_channel(params, 42, 3, true);
        let chan_seed = crate::mix_seed(42, &[2 /* TAG_CHAN */, 3]);
        let mut model = GilbertChannel::new(params, chan_seed);
        let via_model = r.run_with_model(&mut model, 42, 3, true);
        assert_eq!(direct, via_model);
    }

    #[test]
    fn observed_losses_cover_every_transmitted_packet() {
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                200,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        let mut model = GilbertChannel::new(GilbertParams::new(0.1, 0.5).unwrap(), 9);
        let (out, observed) = r.run_observed(&mut model, 5, 0, None);
        assert_eq!(observed.len() as u64, out.n_sent);
        let delivered = observed.iter().filter(|&&l| !l).count() as u64;
        assert_eq!(delivered, out.n_received);
        assert!(out.decoded);
    }

    #[test]
    fn observed_run_honours_the_transmission_plan() {
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                200,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        // Truncate to 260 of the 500 packets: decodes on a perfect channel
        // (needs ~k), and the observation stream stops at the plan.
        let mut model = GilbertChannel::new(GilbertParams::perfect(), 1);
        let (out, observed) = r.run_observed(&mut model, 5, 0, Some(260));
        assert_eq!(out.n_sent, 260);
        assert_eq!(observed.len(), 260);
        assert!(out.decoded);
        // An impossible plan (fewer than k packets) must fail the run.
        let mut model = GilbertChannel::new(GilbertParams::perfect(), 1);
        let (out, _) = r.run_observed(&mut model, 5, 0, Some(150));
        assert!(!out.decoded);
    }

    #[test]
    fn external_model_state_carries_across_runs() {
        // Two consecutive runs against one absorbing channel: the first run
        // triggers the absorbing Loss state, so the second receives nothing.
        let r = Runner::new(
            exp(
                builtin::ldgm_staircase(),
                100,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            1,
        )
        .unwrap();
        let mut model = GilbertChannel::new(GilbertParams::new(0.5, 0.0).unwrap(), 3);
        let first = r.run_with_model(&mut model, 1, 0, true);
        assert!(first.n_received < first.n_sent);
        let second = r.run_with_model(&mut model, 1, 1, true);
        assert_eq!(second.n_received, 0, "absorbing state persisted");
    }

    #[test]
    fn batched_walk_matches_scalar_walk() {
        // `run_with_channel` goes through the batched walk;
        // `run_with_model` with `track_total = false` stays on the scalar
        // walk. Same seed derivation → the two must produce identical
        // results for every code family.
        for code in [builtin::ldgm_staircase(), builtin::rse()] {
            let r = Runner::new(
                exp(code.clone(), 300, ExpansionRatio::R2_5, TxModel::Random),
                2,
            )
            .unwrap();
            let params = GilbertParams::new(0.15, 0.4).unwrap();
            for run_idx in 0..5 {
                let batched = r.run_with_channel(params, 21, run_idx, false);
                let chan_seed = crate::mix_seed(21, &[TAG_CHAN, run_idx]);
                let mut model = GilbertChannel::new(params, chan_seed);
                let scalar = r.run_with_model(&mut model, 21, run_idx, false);
                assert_eq!(batched, scalar, "{code} run {run_idx}");
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let r = Runner::new(
            exp(
                builtin::ldgm_triangle(),
                300,
                ExpansionRatio::R2_5,
                TxModel::Random,
            ),
            2,
        )
        .unwrap();
        let ch = GilbertParams::new(0.1, 0.5).unwrap();
        let a = r.run_with_channel(ch, 42, 3, true);
        let b = r.run_with_channel(ch, 42, 3, true);
        assert_eq!(a, b);
        let c = r.run_with_channel(ch, 43, 3, true);
        assert_ne!(a, c);
    }

    #[test]
    fn runner_validation() {
        assert!(Runner::new(
            exp(
                builtin::ldgm_staircase(),
                10,
                ExpansionRatio::Custom(1.1),
                TxModel::Random
            ),
            2
        )
        .is_err()); // only 1 check equation
        assert!(Runner::new(
            exp(
                builtin::ldgm_staircase(),
                100,
                ExpansionRatio::R2_5,
                TxModel::Random
            ),
            0
        )
        .is_err()); // empty matrix pool
    }
}
