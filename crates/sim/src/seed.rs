//! Deterministic seed derivation.
//!
//! Every random decision in a sweep (matrix construction, schedule shuffle,
//! channel path) must be reproducible from one master seed, and the streams
//! must be statistically independent across (cell, run, purpose). We derive
//! sub-seeds with SplitMix64 — the standard seeding mixer (Steele et al.),
//! whose output is a bijection of its input with full avalanche.

/// Mixes a master seed with distinguishing coordinates into a fresh seed.
///
/// Typical use: `mix_seed(master, &[cell_index, run_index, STREAM_TAG])`.
pub fn mix_seed(master: u64, coords: &[u64]) -> u64 {
    let mut h = master;
    for &c in coords {
        // absorb the coordinate, then apply the SplitMix64 finalizer
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(c);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix_seed(1, &[2, 3]), mix_seed(1, &[2, 3]));
    }

    #[test]
    fn sensitive_to_every_coordinate() {
        let base = mix_seed(1, &[2, 3, 4]);
        assert_ne!(base, mix_seed(9, &[2, 3, 4]));
        assert_ne!(base, mix_seed(1, &[9, 3, 4]));
        assert_ne!(base, mix_seed(1, &[2, 9, 4]));
        assert_ne!(base, mix_seed(1, &[2, 3, 9]));
    }

    #[test]
    fn order_matters() {
        assert_ne!(mix_seed(1, &[2, 3]), mix_seed(1, &[3, 2]));
    }

    #[test]
    fn no_obvious_collisions_on_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..50u64 {
            for b in 0..50u64 {
                assert!(seen.insert(mix_seed(42, &[a, b])), "collision at {a},{b}");
            }
        }
    }
}
