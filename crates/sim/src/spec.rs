//! Experiment vocabulary: codec handles, expansion ratios, errors.
//!
//! The codes themselves live in [`fec_codec`]; this module re-exports the
//! vocabulary (`CodeKind` stays available as the deprecated closed
//! shorthand) and keeps the simulation-facing error type.

use core::fmt;

use fec_sched::Layout;

// Re-exported so `fec_sim::{CodeKind, ExpansionRatio}` keeps working for
// the whole workspace.
pub use fec_codec::{CodeKind, CodecHandle, ExpansionRatio};

/// Errors from experiment validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Invalid experiment parameters.
    BadExperiment {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadExperiment { reason } => write!(f, "invalid experiment: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<fec_codec::CodecError> for SimError {
    fn from(e: fec_codec::CodecError) -> SimError {
        SimError::BadExperiment {
            reason: e.to_string(),
        }
    }
}

/// Builds the packet [`Layout`] for a `(code, k, ratio)` triple.
///
/// Compatibility wrapper: the layout is a codec property now — this simply
/// resolves the code (a `CodeKind` or any codec handle) and asks it.
pub fn layout_for(code: impl Into<CodecHandle>, k: usize, ratio: f64) -> Result<Layout, SimError> {
    Ok(code.into().layout(k, ratio)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fec_codec::builtin;

    #[test]
    fn paper_vocabulary() {
        assert_eq!(ExpansionRatio::R1_5.as_f64(), 1.5);
        assert_eq!(ExpansionRatio::R2_5.as_f64(), 2.5);
        assert_eq!(builtin::rse().name(), "RSE");
        assert!(!builtin::rse().is_large_block());
        assert!(builtin::ldgm_triangle().is_large_block());
    }

    #[test]
    fn ldgm_layout_is_single_block() {
        let l = layout_for(builtin::ldgm_staircase(), 1000, 2.5).unwrap();
        assert_eq!(l.num_blocks(), 1);
        assert_eq!(l.total_packets(), 2500);
        assert_eq!(l.total_source(), 1000);
    }

    #[test]
    fn rse_layout_is_blocked() {
        let l = layout_for(builtin::rse(), 1000, 2.5).unwrap();
        assert!(l.num_blocks() > 1);
        assert_eq!(l.total_source(), 1000);
        // Every block fits the GF(2^8) bound.
        for b in 0..l.num_blocks() {
            assert!(l.block(b).1 <= 255);
        }
    }

    #[test]
    fn paper_scale_rse_layout() {
        let l = layout_for(builtin::rse(), 20_000, 2.5).unwrap();
        assert_eq!(l.num_blocks(), 197);
        assert_eq!(l.total_packets(), 49_953);
    }

    #[test]
    fn paper_scale_ldgm_layout() {
        let l = layout_for(builtin::ldgm_triangle(), 20_000, 2.5).unwrap();
        assert_eq!(l.total_packets(), 50_000);
    }

    #[test]
    fn validation_errors() {
        assert!(layout_for(builtin::rse(), 0, 2.5).is_err());
        assert!(layout_for(builtin::ldgm_staircase(), 10, 0.5).is_err());
        assert!(layout_for(builtin::ldgm_staircase(), 10, 1.0).is_err());
        assert!(layout_for(builtin::rse(), 10, f64::NAN).is_err());
    }
}
