//! Experiment vocabulary: the codes and expansion ratios under study.

use core::fmt;

use fec_ldgm::RightSide;
use fec_rse::Partition;
use fec_sched::Layout;
use serde::{Deserialize, Serialize};

/// The FEC codes compared by the paper (plus plain LDGM for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeKind {
    /// Reed-Solomon erasure over GF(2^8), blocked per RFC 5052 when the
    /// object exceeds one block.
    Rse,
    /// LDGM Staircase (large block).
    LdgmStaircase,
    /// LDGM Triangle (large block).
    LdgmTriangle,
    /// Plain LDGM (identity right side) — the ablation baseline; the paper
    /// introduces it (§2.3.1) but does not evaluate it.
    LdgmPlain,
}

impl CodeKind {
    /// The three codes evaluated in the paper, in paper order.
    pub fn paper_codes() -> [CodeKind; 3] {
        [
            CodeKind::Rse,
            CodeKind::LdgmStaircase,
            CodeKind::LdgmTriangle,
        ]
    }

    /// Short name used in reports (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            CodeKind::Rse => "RSE",
            CodeKind::LdgmStaircase => "LDGM Staircase",
            CodeKind::LdgmTriangle => "LDGM Triangle",
            CodeKind::LdgmPlain => "LDGM",
        }
    }

    /// Whether this is a single-block (large block) code.
    pub fn is_large_block(&self) -> bool {
        !matches!(self, CodeKind::Rse)
    }

    /// The LDGM right-side shape, if this is an LDGM variant.
    pub fn ldgm_right_side(&self) -> Option<RightSide> {
        match self {
            CodeKind::Rse => None,
            CodeKind::LdgmStaircase => Some(RightSide::Staircase),
            CodeKind::LdgmTriangle => Some(RightSide::Triangle),
            CodeKind::LdgmPlain => Some(RightSide::Identity),
        }
    }
}

impl fmt::Display for CodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// FEC expansion ratio `n/k` (§2.1; the inverse of the code rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExpansionRatio {
    /// `n/k = 1.5` (code rate 2/3).
    R1_5,
    /// `n/k = 2.5` (code rate 2/5).
    R2_5,
    /// Any other ratio `>= 1` (used by ablations).
    Custom(f64),
}

impl ExpansionRatio {
    /// The two ratios studied throughout the paper.
    pub fn paper_ratios() -> [ExpansionRatio; 2] {
        [ExpansionRatio::R1_5, ExpansionRatio::R2_5]
    }

    /// The numeric value.
    pub fn as_f64(&self) -> f64 {
        match *self {
            ExpansionRatio::R1_5 => 1.5,
            ExpansionRatio::R2_5 => 2.5,
            ExpansionRatio::Custom(r) => r,
        }
    }
}

impl fmt::Display for ExpansionRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_f64())
    }
}

/// Errors from experiment validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Invalid experiment parameters.
    BadExperiment {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadExperiment { reason } => write!(f, "invalid experiment: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Builds the packet [`Layout`] for a `(code, k, ratio)` triple: RFC 5052
/// blocking for RSE, one big block for LDGM-*.
pub fn layout_for(code: CodeKind, k: usize, ratio: f64) -> Result<Layout, SimError> {
    if k == 0 {
        return Err(SimError::BadExperiment {
            reason: "k must be positive".into(),
        });
    }
    if ratio < 1.0 || !ratio.is_finite() {
        return Err(SimError::BadExperiment {
            reason: format!("expansion ratio {ratio} must be >= 1"),
        });
    }
    match code {
        CodeKind::Rse => {
            let part = Partition::for_ratio(k, ratio);
            Ok(Layout::from_blocks(
                part.blocks().iter().map(|b| (b.k, b.n)),
            ))
        }
        _ => {
            let n = ((k as f64) * ratio).floor() as usize;
            if n <= k {
                return Err(SimError::BadExperiment {
                    reason: format!("ratio {ratio} yields no parity for k = {k}"),
                });
            }
            Ok(Layout::single_block(k, n))
        }
    }
}

/// Builds the RSE partition for an experiment (None for LDGM codes).
pub fn partition_for(code: CodeKind, k: usize, ratio: f64) -> Option<Partition> {
    matches!(code, CodeKind::Rse).then(|| Partition::for_ratio(k, ratio))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vocabulary() {
        assert_eq!(CodeKind::paper_codes().len(), 3);
        assert_eq!(ExpansionRatio::R1_5.as_f64(), 1.5);
        assert_eq!(ExpansionRatio::R2_5.as_f64(), 2.5);
        assert_eq!(CodeKind::Rse.name(), "RSE");
        assert!(!CodeKind::Rse.is_large_block());
        assert!(CodeKind::LdgmTriangle.is_large_block());
    }

    #[test]
    fn ldgm_layout_is_single_block() {
        let l = layout_for(CodeKind::LdgmStaircase, 1000, 2.5).unwrap();
        assert_eq!(l.num_blocks(), 1);
        assert_eq!(l.total_packets(), 2500);
        assert_eq!(l.total_source(), 1000);
    }

    #[test]
    fn rse_layout_is_blocked() {
        let l = layout_for(CodeKind::Rse, 1000, 2.5).unwrap();
        assert!(l.num_blocks() > 1);
        assert_eq!(l.total_source(), 1000);
        // Every block fits the GF(2^8) bound.
        for b in 0..l.num_blocks() {
            assert!(l.block(b).1 <= 255);
        }
    }

    #[test]
    fn paper_scale_rse_layout() {
        let l = layout_for(CodeKind::Rse, 20_000, 2.5).unwrap();
        assert_eq!(l.num_blocks(), 197);
        assert_eq!(l.total_packets(), 49_953);
    }

    #[test]
    fn paper_scale_ldgm_layout() {
        let l = layout_for(CodeKind::LdgmTriangle, 20_000, 2.5).unwrap();
        assert_eq!(l.total_packets(), 50_000);
    }

    #[test]
    fn validation_errors() {
        assert!(layout_for(CodeKind::Rse, 0, 2.5).is_err());
        assert!(layout_for(CodeKind::LdgmStaircase, 10, 0.5).is_err());
        assert!(layout_for(CodeKind::LdgmStaircase, 10, 1.0).is_err());
        assert!(layout_for(CodeKind::Rse, 10, f64::NAN).is_err());
    }

    #[test]
    fn partition_only_for_rse() {
        assert!(partition_for(CodeKind::Rse, 100, 1.5).is_some());
        assert!(partition_for(CodeKind::LdgmStaircase, 100, 1.5).is_none());
    }
}
