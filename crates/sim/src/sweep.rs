//! Grid sweeps over the `(p, q)` channel space, with the paper's
//! failure-masking aggregation (§4.1).

use std::num::NonZeroUsize;

use fec_channel::{grid, GilbertParams};
use serde::{Deserialize, Serialize};

use crate::seed::mix_seed;
use crate::{Experiment, Runner, SimError};

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Trials per grid cell (paper: 100).
    pub runs: u32,
    /// Values of `p` to sweep (paper: [`grid::PAPER_GRID`]).
    pub grid_p: Vec<f64>,
    /// Values of `q` to sweep.
    pub grid_q: Vec<f64>,
    /// Master seed; every run derives deterministically from it.
    pub seed: u64,
    /// Number of independently-seeded LDGM matrices to rotate through.
    pub matrix_pool: usize,
    /// Whether to consume the whole schedule per run so the
    /// `n_received / k` curve is exact (slower; needed for Figs. 8 and 10).
    pub track_total: bool,
    /// Worker threads (`None` = all available cores).
    pub threads: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            runs: 100,
            grid_p: grid::GridKind::Paper.to_vec(),
            grid_q: grid::GridKind::Paper.to_vec(),
            seed: 0x0C0_FFEE,
            matrix_pool: Runner::DEFAULT_MATRIX_POOL,
            track_total: false,
            threads: None,
        }
    }
}

impl SweepConfig {
    /// The paper's configuration: 14×14 grid, 100 runs per cell.
    pub fn paper() -> SweepConfig {
        SweepConfig::default()
    }

    /// A smaller configuration for quick exploration and tests.
    pub fn quick(runs: u32) -> SweepConfig {
        SweepConfig {
            runs,
            grid_p: grid::GridKind::Coarse.to_vec(),
            grid_q: grid::GridKind::Coarse.to_vec(),
            ..SweepConfig::default()
        }
    }
}

/// Aggregated statistics for one `(p, q)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Channel parameter `p` of this cell.
    pub p: f64,
    /// Channel parameter `q` of this cell.
    pub q: f64,
    /// Trials executed.
    pub runs: u32,
    /// Trials where decoding never completed.
    pub failures: u32,
    /// Mean inefficiency ratio over *successful* runs, masked to `None` if
    /// any run failed (the paper's plotting rule) or no run succeeded.
    pub mean_inefficiency: Option<f64>,
    /// Mean inefficiency over successful runs even when some failed
    /// (diagnostic; the paper hides these points).
    pub mean_inefficiency_unmasked: Option<f64>,
    /// Min/max inefficiency over successful runs.
    pub min_inefficiency: Option<f64>,
    /// Maximum inefficiency over successful runs.
    pub max_inefficiency: Option<f64>,
    /// Sample standard deviation of the inefficiency over successful runs.
    pub std_inefficiency: Option<f64>,
    /// Mean `n_received / k` over all runs (only if `track_total`).
    pub mean_received_ratio: Option<f64>,
}

impl CellStats {
    /// The paper's "plot nothing here" predicate.
    pub fn is_masked(&self) -> bool {
        self.mean_inefficiency.is_none()
    }
}

/// Result of a full grid sweep: cells in row-major order, `p` outer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The experiment swept (its `channel` field is ignored/replaced).
    pub experiment: Experiment,
    /// The configuration used.
    pub config: SweepConfig,
    /// One entry per `(p, q)` pair, `p` outer, `q` inner.
    pub cells: Vec<CellStats>,
}

impl SweepResult {
    /// Looks up the cell for `(p, q)` (exact float match on grid values).
    pub fn cell(&self, p: f64, q: f64) -> Option<&CellStats> {
        self.cells.iter().find(|c| c.p == p && c.q == q)
    }

    /// Iterates over non-masked `(p, q, mean_inefficiency)` triples.
    pub fn surface(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.cells
            .iter()
            .filter_map(|c| c.mean_inefficiency.map(|m| (c.p, c.q, m)))
    }

    /// Overall mean of the non-masked cell means (a scalar summary used by
    /// shape tests: "model A beats model B on this channel family").
    pub fn grand_mean(&self) -> Option<f64> {
        let vals: Vec<f64> = self.surface().map(|(_, _, m)| m).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Number of masked cells.
    pub fn masked_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.is_masked()).count()
    }
}

/// A prepared grid sweep.
pub struct GridSweep {
    runner: Runner,
    config: SweepConfig,
}

impl GridSweep {
    /// Validates and prepares the sweep.
    pub fn new(experiment: Experiment, config: SweepConfig) -> Result<GridSweep, SimError> {
        if config.runs == 0 {
            return Err(SimError::BadExperiment {
                reason: "sweep needs at least one run per cell".into(),
            });
        }
        for (name, g) in [("p", &config.grid_p), ("q", &config.grid_q)] {
            if g.is_empty() {
                return Err(SimError::BadExperiment {
                    reason: format!("empty {name} grid"),
                });
            }
            if g.iter().any(|v| !(0.0..=1.0).contains(v)) {
                return Err(SimError::BadExperiment {
                    reason: format!("{name} grid contains non-probability values"),
                });
            }
        }
        let runner = Runner::new(experiment, config.matrix_pool)?;
        Ok(GridSweep { runner, config })
    }

    /// Runs the sweep across worker threads and aggregates per cell.
    ///
    /// Structured concurrency: workers are scoped, a panic in any worker
    /// propagates to the caller, and every cell's result is accounted for.
    pub fn execute(&self) -> SweepResult {
        let cells: Vec<(usize, f64, f64)> = self
            .config
            .grid_p
            .iter()
            .flat_map(|&p| self.config.grid_q.iter().map(move |&q| (p, q)))
            .enumerate()
            .map(|(i, (p, q))| (i, p, q))
            .collect();

        let threads = self
            .config
            .threads
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1)
            .max(1)
            .min(cells.len().max(1));

        let (work_tx, work_rx) = crossbeam_channel::unbounded::<(usize, f64, f64)>();
        let (done_tx, done_rx) = crossbeam_channel::unbounded::<(usize, CellStats)>();
        for cell in &cells {
            work_tx.send(*cell).expect("queue open");
        }
        drop(work_tx);

        let mut results: Vec<Option<CellStats>> = vec![None; cells.len()];
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    while let Ok((idx, p, q)) = work_rx.recv() {
                        let stats = self.sweep_cell(idx, p, q);
                        done_tx.send((idx, stats)).expect("collector open");
                    }
                });
            }
            drop(done_tx);
            while let Ok((idx, stats)) = done_rx.recv() {
                results[idx] = Some(stats);
            }
        });

        SweepResult {
            experiment: self.runner.experiment().clone(),
            config: self.config.clone(),
            cells: results
                .into_iter()
                .map(|c| c.expect("every cell completed"))
                .collect(),
        }
    }

    /// Runs all trials for one cell and aggregates.
    fn sweep_cell(&self, cell_idx: usize, p: f64, q: f64) -> CellStats {
        let k = self.runner.experiment().k;
        let channel = GilbertParams::new(p, q).expect("grid probabilities validated");
        let cell_seed = mix_seed(self.config.seed, &[cell_idx as u64]);

        let mut failures = 0u32;
        let mut ineffs: Vec<f64> = Vec::with_capacity(self.config.runs as usize);
        let mut received_sum = 0.0f64;
        for run_idx in 0..self.config.runs {
            let out = self.runner.run_with_channel(
                channel,
                cell_seed,
                run_idx as u64,
                self.config.track_total,
            );
            match out.inefficiency(k) {
                Some(i) => ineffs.push(i),
                None => failures += 1,
            }
            received_sum += out.received_ratio(k);
        }

        let mean_unmasked = if ineffs.is_empty() {
            None
        } else {
            Some(ineffs.iter().sum::<f64>() / ineffs.len() as f64)
        };
        let std = if ineffs.len() > 1 {
            let m = mean_unmasked.expect("non-empty");
            Some(
                (ineffs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (ineffs.len() - 1) as f64)
                    .sqrt(),
            )
        } else {
            None
        };
        CellStats {
            p,
            q,
            runs: self.config.runs,
            failures,
            mean_inefficiency: if failures == 0 { mean_unmasked } else { None },
            mean_inefficiency_unmasked: mean_unmasked,
            min_inefficiency: ineffs.iter().copied().reduce(f64::min),
            max_inefficiency: ineffs.iter().copied().reduce(f64::max),
            std_inefficiency: std,
            mean_received_ratio: self
                .config
                .track_total
                .then(|| received_sum / self.config.runs as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExpansionRatio;
    use fec_codec::{builtin, CodecHandle};
    use fec_sched::TxModel;

    fn tiny_sweep(code: CodecHandle, tx: TxModel) -> SweepResult {
        let exp = Experiment::new(code, 200, ExpansionRatio::R2_5, tx);
        let cfg = SweepConfig {
            runs: 5,
            grid_p: vec![0.0, 0.1, 0.9],
            grid_q: vec![0.1, 0.9],
            seed: 1,
            matrix_pool: 2,
            track_total: false,
            threads: Some(2),
        };
        GridSweep::new(exp, cfg).unwrap().execute()
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        assert_eq!(r.cells.len(), 6);
        let coords: Vec<(f64, f64)> = r.cells.iter().map(|c| (c.p, c.q)).collect();
        assert_eq!(
            coords,
            vec![
                (0.0, 0.1),
                (0.0, 0.9),
                (0.1, 0.1),
                (0.1, 0.9),
                (0.9, 0.1),
                (0.9, 0.9)
            ]
        );
    }

    #[test]
    fn perfect_channel_cells_never_fail() {
        let r = tiny_sweep(builtin::rse(), TxModel::Interleaved);
        for c in r.cells.iter().filter(|c| c.p == 0.0) {
            assert_eq!(c.failures, 0);
            assert!(c.mean_inefficiency.is_some());
        }
    }

    #[test]
    fn hopeless_cells_are_masked() {
        // p=0.9, q=0.1 → 90% loss: impossible at ratio 2.5.
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        let c = r.cell(0.9, 0.1).unwrap();
        assert_eq!(c.failures, c.runs);
        assert!(c.is_masked());
        assert!(c.mean_inefficiency_unmasked.is_none());
        assert!(r.masked_cells() >= 1);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let exp = Experiment::new(
            builtin::ldgm_triangle(),
            150,
            ExpansionRatio::R2_5,
            TxModel::Random,
        );
        let mk = |threads| {
            let exp = exp.clone();
            let cfg = SweepConfig {
                runs: 4,
                grid_p: vec![0.0, 0.2],
                grid_q: vec![0.3, 0.8],
                seed: 9,
                matrix_pool: 2,
                track_total: true,
                threads: Some(threads),
            };
            GridSweep::new(exp, cfg).unwrap().execute().cells
        };
        assert_eq!(mk(1), mk(4), "results must not depend on scheduling");
    }

    #[test]
    fn track_total_populates_received_ratio() {
        let exp = Experiment::new(builtin::rse(), 100, ExpansionRatio::R1_5, TxModel::Random);
        let cfg = SweepConfig {
            runs: 3,
            grid_p: vec![0.1],
            grid_q: vec![0.5],
            track_total: true,
            threads: Some(1),
            ..SweepConfig::default()
        };
        let r = GridSweep::new(exp, cfg).unwrap().execute();
        let ratio = r.cells[0].mean_received_ratio.unwrap();
        // ~78% delivery of 1.5k packets ≈ 1.17k received.
        assert!(ratio > 0.9 && ratio < 1.5, "received ratio {ratio}");
    }

    #[test]
    fn config_validation() {
        let exp = Experiment::new(builtin::rse(), 10, ExpansionRatio::R1_5, TxModel::Random);
        let bad_runs = SweepConfig {
            runs: 0,
            ..SweepConfig::default()
        };
        assert!(GridSweep::new(exp.clone(), bad_runs).is_err());
        let bad_grid = SweepConfig {
            grid_p: vec![1.5],
            ..SweepConfig::default()
        };
        assert!(GridSweep::new(exp.clone(), bad_grid).is_err());
        let empty_grid = SweepConfig {
            grid_q: vec![],
            ..SweepConfig::default()
        };
        assert!(GridSweep::new(exp, empty_grid).is_err());
    }

    #[test]
    fn grand_mean_and_surface() {
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        let gm = r.grand_mean().unwrap();
        assert!(gm >= 1.0, "inefficiency is at least 1, got {gm}");
        for (_, _, m) in r.surface() {
            assert!(m >= 1.0);
        }
    }

    #[test]
    fn sweep_result_serializes() {
        // Float text formatting may differ in the last ulp, so compare the
        // JSON fixed point: deserialize -> serialize must be idempotent.
        let r = tiny_sweep(builtin::rse(), TxModel::Random);
        let json = serde_json::to_string(&r).unwrap();
        let back: SweepResult = serde_json::from_str(&json).unwrap();
        let json2 = serde_json::to_string(&back).unwrap();
        assert_eq!(json, json2);
        assert_eq!(back.cells.len(), r.cells.len());
        assert_eq!(back.masked_cells(), r.masked_cells());
    }
}
