//! Grid sweeps over the `(p, q)` channel space, with the paper's
//! failure-masking aggregation (§4.1).
//!
//! Since the sharded-sweep refactor the sweep is an explicit
//! *plan → execute → merge* pipeline even in-process:
//!
//! 1. the configuration canonically enumerates [`WorkUnit`]s (cell ×
//!    run-range slices, [`SweepConfig::units`]);
//! 2. each unit executes independently into a mergeable [`CellAccum`]
//!    ([`GridSweep::execute_unit`]) — seeds derive from
//!    `(master seed, cell index, absolute run index)` so results do not
//!    depend on execution order or partitioning;
//! 3. accumulators reduce associatively in canonical unit order into the
//!    public [`CellStats`] ([`finalize_cells`]).
//!
//! [`GridSweep::execute`] is the degenerate single-process path over that
//! pipeline; the `fec-distrib` crate drives the same three stages across
//! shards, subprocesses and hosts and merges byte-identical results.

use std::num::NonZeroUsize;

use fec_channel::{grid, GilbertParams};
use serde::{Deserialize, Serialize};

use crate::seed::mix_seed;
use crate::{Experiment, Runner, SimError};

/// Default run-range slice size for [`SweepConfig::units`]: small enough
/// that the paper's 100-runs cells split four ways, large enough that one
/// unit amortises its cell's channel setup.
pub const DEFAULT_RUNS_PER_UNIT: u32 = 25;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Trials per grid cell (paper: 100).
    pub runs: u32,
    /// Values of `p` to sweep (paper: [`grid::PAPER_GRID`]).
    pub grid_p: Vec<f64>,
    /// Values of `q` to sweep.
    pub grid_q: Vec<f64>,
    /// Master seed; every run derives deterministically from it.
    pub seed: u64,
    /// Number of independently-seeded LDGM matrices to rotate through.
    pub matrix_pool: usize,
    /// Whether to consume the whole schedule per run so the
    /// `n_received / k` curve is exact (slower; needed for Figs. 8 and 10).
    pub track_total: bool,
    /// Worker threads (`None` = all available cores).
    pub threads: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            runs: 100,
            grid_p: grid::GridKind::Paper.to_vec(),
            grid_q: grid::GridKind::Paper.to_vec(),
            seed: 0x0C0_FFEE,
            matrix_pool: Runner::DEFAULT_MATRIX_POOL,
            track_total: false,
            threads: None,
        }
    }
}

impl SweepConfig {
    /// The paper's configuration: 14×14 grid, 100 runs per cell.
    pub fn paper() -> SweepConfig {
        SweepConfig::default()
    }

    /// A smaller configuration for quick exploration and tests.
    pub fn quick(runs: u32) -> SweepConfig {
        SweepConfig {
            runs,
            grid_p: grid::GridKind::Coarse.to_vec(),
            grid_q: grid::GridKind::Coarse.to_vec(),
            ..SweepConfig::default()
        }
    }

    /// Number of `(p, q)` grid cells.
    pub fn cell_count(&self) -> usize {
        self.grid_p.len() * self.grid_q.len()
    }

    /// The `(p, q)` values of a row-major cell index (`p` outer).
    pub fn cell_coords(&self, cell_idx: u32) -> Option<(f64, f64)> {
        let cols = self.grid_q.len();
        if cols == 0 {
            return None;
        }
        let p = self.grid_p.get(cell_idx as usize / cols)?;
        let q = self.grid_q.get(cell_idx as usize % cols)?;
        Some((*p, *q))
    }

    /// Canonically enumerates this configuration's work units: for every
    /// cell in row-major order, its `runs` trials sliced into ranges of at
    /// most `runs_per_unit`, unit ids ascending.
    ///
    /// This enumeration **is** the unit of work distribution: two processes
    /// given the same configuration and `runs_per_unit` agree on every
    /// unit's id, cell, run range and (via [`mix_seed`]) random stream.
    pub fn units(&self, runs_per_unit: u32) -> Vec<WorkUnit> {
        let per_unit = runs_per_unit.max(1);
        let slices_per_cell = self.runs.div_ceil(per_unit);
        let mut units = Vec::with_capacity(self.cell_count() * slices_per_cell as usize);
        for cell_idx in 0..self.cell_count() as u32 {
            let mut run_start = 0;
            while run_start < self.runs {
                let run_len = per_unit.min(self.runs - run_start);
                units.push(WorkUnit {
                    unit_id: units.len() as u32,
                    cell_idx,
                    run_start,
                    run_len,
                });
                run_start += run_len;
            }
        }
        units
    }
}

/// One independently-executable slice of a sweep: `run_len` trials of one
/// grid cell starting at absolute run index `run_start`.
///
/// Units are enumerated canonically by [`SweepConfig::units`]; a unit's
/// random streams depend only on `(seed, cell_idx, absolute run index)`,
/// never on which process executes it or in what order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Position in the canonical enumeration (also the merge fold order).
    pub unit_id: u32,
    /// Row-major grid cell index (`p` outer, `q` inner).
    pub cell_idx: u32,
    /// First absolute run index of this slice.
    pub run_start: u32,
    /// Number of runs in this slice.
    pub run_len: u32,
}

/// Mergeable accumulator for one cell (or a run-range slice of one):
/// run/failure counts, inefficiency sum, Welford mean/M2, min/max and the
/// `n_received / k` sum.
///
/// [`CellAccum::merge`] is the parallel Welford combination (Chan et al.),
/// so partial accumulators reduce into exactly the statistics a sequential
/// pass over the same runs produces — up to float rounding, which is why
/// merging is always performed in canonical unit order (ascending
/// `unit_id`, see [`finalize_cells`]): the fold tree is then identical for
/// every partitioning and the result byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellAccum {
    /// Row-major index of the cell these runs belong to.
    pub cell_idx: u32,
    /// Trials accumulated.
    pub runs: u32,
    /// Trials where decoding never completed.
    pub failures: u32,
    /// Sum of the inefficiency ratio over successful runs.
    pub sum: f64,
    /// Welford running mean of the inefficiency over successful runs.
    pub mean: f64,
    /// Welford M2 (sum of squared deviations) over successful runs.
    pub m2: f64,
    /// Minimum inefficiency over successful runs.
    pub min: Option<f64>,
    /// Maximum inefficiency over successful runs.
    pub max: Option<f64>,
    /// Sum of `n_received / k` over all runs.
    pub received_sum: f64,
}

impl CellAccum {
    /// An empty accumulator for one cell.
    pub fn new(cell_idx: u32) -> CellAccum {
        CellAccum {
            cell_idx,
            runs: 0,
            failures: 0,
            sum: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: None,
            max: None,
            received_sum: 0.0,
        }
    }

    /// Successful trials accumulated so far.
    pub fn successes(&self) -> u32 {
        self.runs - self.failures
    }

    /// Absorbs one run's outcome (`None` inefficiency = decode failure).
    pub fn record(&mut self, inefficiency: Option<f64>, received_ratio: f64) {
        self.runs += 1;
        self.received_sum += received_ratio;
        match inefficiency {
            Some(x) => {
                self.sum += x;
                let n = self.successes() as f64;
                let delta = x - self.mean;
                self.mean += delta / n;
                self.m2 += delta * (x - self.mean);
                self.min = Some(self.min.map_or(x, |m| m.min(x)));
                self.max = Some(self.max.map_or(x, |m| m.max(x)));
            }
            None => self.failures += 1,
        }
    }

    /// Absorbs another accumulator for the same cell (`other`'s runs are
    /// treated as coming after `self`'s).
    ///
    /// # Panics
    /// Panics if the accumulators belong to different cells.
    pub fn merge(&mut self, other: &CellAccum) {
        assert_eq!(
            self.cell_idx, other.cell_idx,
            "merging accumulators of different cells"
        );
        let na = self.successes() as f64;
        let nb = other.successes() as f64;
        self.runs += other.runs;
        self.failures += other.failures;
        self.sum += other.sum;
        self.received_sum += other.received_sum;
        if nb > 0.0 {
            if na == 0.0 {
                self.mean = other.mean;
                self.m2 = other.m2;
            } else {
                let n = na + nb;
                let delta = other.mean - self.mean;
                self.mean += delta * (nb / n);
                self.m2 += other.m2 + delta * delta * (na * nb / n);
            }
        }
        self.min = merge_extreme(self.min, other.min, f64::min);
        self.max = merge_extreme(self.max, other.max, f64::max);
    }

    /// Reduces the accumulated runs into the public per-cell statistics.
    ///
    /// The mean comes from `sum / successes` and the standard deviation
    /// from the Welford M2 (numerically stable even at paper scale, where
    /// inefficiencies cluster tightly above 1.0).
    pub fn finalize(&self, p: f64, q: f64, track_total: bool) -> CellStats {
        let successes = self.successes();
        let mean_unmasked = (successes > 0).then(|| self.sum / successes as f64);
        CellStats {
            p,
            q,
            runs: self.runs,
            failures: self.failures,
            mean_inefficiency: if self.failures == 0 {
                mean_unmasked
            } else {
                None
            },
            mean_inefficiency_unmasked: mean_unmasked,
            min_inefficiency: self.min,
            max_inefficiency: self.max,
            std_inefficiency: (successes > 1).then(|| (self.m2 / (successes - 1) as f64).sqrt()),
            mean_received_ratio: (track_total && self.runs > 0)
                .then(|| self.received_sum / self.runs as f64),
        }
    }
}

fn merge_extreme(a: Option<f64>, b: Option<f64>, pick: fn(f64, f64) -> f64) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(pick(x, y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Reduces per-unit accumulators into the final row-major cell statistics.
///
/// `accums` must be in canonical unit order (ascending `unit_id`) and
/// cover every cell's full run count — exactly the completeness a merged
/// shard set guarantees. Keeping the fold order canonical makes the result
/// byte-identical across every partitioning and execution order.
///
/// # Panics
/// Panics if a cell's accumulated run count differs from `config.runs`
/// (an incomplete or duplicated shard set; `fec-distrib` checks
/// completeness before calling).
pub fn finalize_cells(config: &SweepConfig, accums: &[CellAccum]) -> Vec<CellStats> {
    let mut cells = Vec::with_capacity(config.cell_count());
    let mut it = accums.iter().peekable();
    for cell_idx in 0..config.cell_count() as u32 {
        let (p, q) = config.cell_coords(cell_idx).expect("cell on grid");
        let mut acc = CellAccum::new(cell_idx);
        while let Some(a) = it.peek() {
            if a.cell_idx != cell_idx {
                break;
            }
            acc.merge(a);
            it.next();
        }
        assert_eq!(
            acc.runs, config.runs,
            "accumulators cover {} of {} runs for cell {cell_idx}",
            acc.runs, config.runs
        );
        cells.push(acc.finalize(p, q, config.track_total));
    }
    assert!(it.next().is_none(), "accumulators past the last cell");
    cells
}

/// Aggregated statistics for one `(p, q)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Channel parameter `p` of this cell.
    pub p: f64,
    /// Channel parameter `q` of this cell.
    pub q: f64,
    /// Trials executed.
    pub runs: u32,
    /// Trials where decoding never completed.
    pub failures: u32,
    /// Mean inefficiency ratio over *successful* runs, masked to `None` if
    /// any run failed (the paper's plotting rule) or no run succeeded.
    pub mean_inefficiency: Option<f64>,
    /// Mean inefficiency over successful runs even when some failed
    /// (diagnostic; the paper hides these points).
    pub mean_inefficiency_unmasked: Option<f64>,
    /// Min/max inefficiency over successful runs.
    pub min_inefficiency: Option<f64>,
    /// Maximum inefficiency over successful runs.
    pub max_inefficiency: Option<f64>,
    /// Sample standard deviation of the inefficiency over successful runs.
    pub std_inefficiency: Option<f64>,
    /// Mean `n_received / k` over all runs (only if `track_total`).
    pub mean_received_ratio: Option<f64>,
}

impl CellStats {
    /// The paper's "plot nothing here" predicate.
    pub fn is_masked(&self) -> bool {
        self.mean_inefficiency.is_none()
    }
}

/// Result of a full grid sweep: cells in row-major order, `p` outer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The experiment swept (its `channel` field is ignored/replaced).
    pub experiment: Experiment,
    /// The configuration used.
    pub config: SweepConfig,
    /// One entry per `(p, q)` pair, `p` outer, `q` inner.
    pub cells: Vec<CellStats>,
}

impl SweepResult {
    /// Looks up the cell for `(p, q)` by resolving both values against the
    /// grid axes with an epsilon tolerance ([`grid::index_of`]), so values
    /// that went through parsing or arithmetic still land on their cell.
    pub fn cell(&self, p: f64, q: f64) -> Option<&CellStats> {
        let pi = grid::index_of(&self.config.grid_p, p)?;
        let qi = grid::index_of(&self.config.grid_q, q)?;
        self.cell_at(pi, qi)
    }

    /// Looks up a cell by grid indices (`p_idx` into `grid_p`, `q_idx`
    /// into `grid_q`) — the exact accessor reports iterate with.
    pub fn cell_at(&self, p_idx: usize, q_idx: usize) -> Option<&CellStats> {
        if p_idx >= self.config.grid_p.len() || q_idx >= self.config.grid_q.len() {
            return None;
        }
        self.cells.get(p_idx * self.config.grid_q.len() + q_idx)
    }

    /// Iterates over non-masked `(p, q, mean_inefficiency)` triples.
    pub fn surface(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        self.cells
            .iter()
            .filter_map(|c| c.mean_inefficiency.map(|m| (c.p, c.q, m)))
    }

    /// Overall mean of the non-masked cell means (a scalar summary used by
    /// shape tests: "model A beats model B on this channel family").
    pub fn grand_mean(&self) -> Option<f64> {
        let vals: Vec<f64> = self.surface().map(|(_, _, m)| m).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Number of masked cells.
    pub fn masked_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.is_masked()).count()
    }
}

/// A prepared grid sweep.
pub struct GridSweep {
    runner: Runner,
    config: SweepConfig,
}

impl GridSweep {
    /// Validates and prepares the sweep.
    pub fn new(experiment: Experiment, config: SweepConfig) -> Result<GridSweep, SimError> {
        if config.runs == 0 {
            return Err(SimError::BadExperiment {
                reason: "sweep needs at least one run per cell".into(),
            });
        }
        for (name, g) in [("p", &config.grid_p), ("q", &config.grid_q)] {
            if g.is_empty() {
                return Err(SimError::BadExperiment {
                    reason: format!("empty {name} grid"),
                });
            }
            if g.iter().any(|v| !(0.0..=1.0).contains(v)) {
                return Err(SimError::BadExperiment {
                    reason: format!("{name} grid contains non-probability values"),
                });
            }
        }
        let runner = Runner::new(experiment, config.matrix_pool)?;
        Ok(GridSweep { runner, config })
    }

    /// The sweep's configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// The underlying runner (its experiment is the one swept).
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Runs the sweep across worker threads and aggregates per cell — the
    /// degenerate single-process path through the plan → execute → merge
    /// pipeline: every [`WorkUnit`] of the canonical enumeration executes
    /// locally and reduces through the same [`finalize_cells`] fold the
    /// distributed merge uses, so the output is byte-identical to any
    /// sharded execution of the same configuration.
    ///
    /// Structured concurrency: workers are scoped, a panic in any worker
    /// propagates to the caller, and every unit's result is accounted for.
    pub fn execute(&self) -> SweepResult {
        let units = self.config.units(DEFAULT_RUNS_PER_UNIT);
        let accums = self.execute_units(&units);
        SweepResult {
            experiment: self.runner.experiment().clone(),
            config: self.config.clone(),
            cells: finalize_cells(&self.config, &accums),
        }
    }

    /// Executes a set of work units across the configured worker threads,
    /// returning one accumulator per unit in the same order as `units`.
    pub fn execute_units(&self, units: &[WorkUnit]) -> Vec<CellAccum> {
        let threads = self
            .config
            .threads
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1)
            .max(1)
            .min(units.len().max(1));

        let (work_tx, work_rx) = crossbeam_channel::unbounded::<(usize, WorkUnit)>();
        let (done_tx, done_rx) = crossbeam_channel::unbounded::<(usize, CellAccum)>();
        for (i, unit) in units.iter().enumerate() {
            work_tx.send((i, *unit)).expect("queue open");
        }
        drop(work_tx);

        let mut results: Vec<Option<CellAccum>> = vec![None; units.len()];
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    while let Ok((i, unit)) = work_rx.recv() {
                        let accum = self.execute_unit(&unit);
                        done_tx.send((i, accum)).expect("collector open");
                    }
                });
            }
            drop(done_tx);
            while let Ok((i, accum)) = done_rx.recv() {
                results[i] = Some(accum);
            }
        });

        results
            .into_iter()
            .map(|a| a.expect("every unit completed"))
            .collect()
    }

    /// Executes one work unit: `run_len` trials of its cell starting at
    /// absolute run index `run_start`, accumulated in run order.
    ///
    /// Every random stream derives from `(config.seed, cell_idx, absolute
    /// run index)`, so the accumulator is identical no matter which
    /// process, thread or shard executes the unit.
    pub fn execute_unit(&self, unit: &WorkUnit) -> CellAccum {
        let (p, q) = self
            .config
            .cell_coords(unit.cell_idx)
            .expect("unit cell on grid");
        let k = self.runner.experiment().k;
        let channel = GilbertParams::new(p, q).expect("grid probabilities validated");
        let cell_seed = mix_seed(self.config.seed, &[unit.cell_idx as u64]);
        let mut acc = CellAccum::new(unit.cell_idx);
        for run_idx in unit.run_start..unit.run_start + unit.run_len {
            let out = self.runner.run_with_channel(
                channel,
                cell_seed,
                run_idx as u64,
                self.config.track_total,
            );
            acc.record(out.inefficiency(k), out.received_ratio(k));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExpansionRatio;
    use fec_codec::{builtin, CodecHandle};
    use fec_sched::TxModel;

    fn tiny_sweep(code: CodecHandle, tx: TxModel) -> SweepResult {
        let exp = Experiment::new(code, 200, ExpansionRatio::R2_5, tx);
        let cfg = SweepConfig {
            runs: 5,
            grid_p: vec![0.0, 0.1, 0.9],
            grid_q: vec![0.1, 0.9],
            seed: 1,
            matrix_pool: 2,
            track_total: false,
            threads: Some(2),
        };
        GridSweep::new(exp, cfg).unwrap().execute()
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        assert_eq!(r.cells.len(), 6);
        let coords: Vec<(f64, f64)> = r.cells.iter().map(|c| (c.p, c.q)).collect();
        assert_eq!(
            coords,
            vec![
                (0.0, 0.1),
                (0.0, 0.9),
                (0.1, 0.1),
                (0.1, 0.9),
                (0.9, 0.1),
                (0.9, 0.9)
            ]
        );
    }

    #[test]
    fn perfect_channel_cells_never_fail() {
        let r = tiny_sweep(builtin::rse(), TxModel::Interleaved);
        for c in r.cells.iter().filter(|c| c.p == 0.0) {
            assert_eq!(c.failures, 0);
            assert!(c.mean_inefficiency.is_some());
        }
    }

    #[test]
    fn hopeless_cells_are_masked() {
        // p=0.9, q=0.1 → 90% loss: impossible at ratio 2.5.
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        let c = r.cell(0.9, 0.1).unwrap();
        assert_eq!(c.failures, c.runs);
        assert!(c.is_masked());
        assert!(c.mean_inefficiency_unmasked.is_none());
        assert!(r.masked_cells() >= 1);
    }

    #[test]
    fn cell_lookup_tolerates_float_noise() {
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        // A value that went through arithmetic: 0.1 is not exactly
        // representable, so 1.0 - 0.9 != 0.1 bit-for-bit.
        let noisy_p = 1.0 - 0.9;
        assert!(noisy_p != 0.1, "test premise: the values differ in bits");
        let c = r.cell(noisy_p, 0.9).unwrap();
        assert_eq!((c.p, c.q), (0.1, 0.9));
        assert!(r.cell(0.05, 0.9).is_none(), "off-grid p stays a miss");
    }

    #[test]
    fn cell_at_is_row_major() {
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        for (pi, &p) in r.config.grid_p.clone().iter().enumerate() {
            for (qi, &q) in r.config.grid_q.clone().iter().enumerate() {
                let c = r.cell_at(pi, qi).unwrap();
                assert_eq!((c.p, c.q), (p, q));
            }
        }
        assert!(r.cell_at(3, 0).is_none());
        assert!(r.cell_at(0, 2).is_none());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let exp = Experiment::new(
            builtin::ldgm_triangle(),
            150,
            ExpansionRatio::R2_5,
            TxModel::Random,
        );
        let mk = |threads| {
            let exp = exp.clone();
            let cfg = SweepConfig {
                runs: 4,
                grid_p: vec![0.0, 0.2],
                grid_q: vec![0.3, 0.8],
                seed: 9,
                matrix_pool: 2,
                track_total: true,
                threads: Some(threads),
            };
            GridSweep::new(exp, cfg).unwrap().execute().cells
        };
        assert_eq!(mk(1), mk(4), "results must not depend on scheduling");
    }

    #[test]
    fn unit_enumeration_is_canonical() {
        let cfg = SweepConfig {
            runs: 10,
            grid_p: vec![0.0, 0.5],
            grid_q: vec![0.1, 0.9],
            ..SweepConfig::default()
        };
        let units = cfg.units(4);
        // 4 cells × ceil(10/4)=3 slices.
        assert_eq!(units.len(), 12);
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.unit_id as usize, i);
        }
        // Per-cell slices are [0..4), [4..8), [8..10).
        let cell0: Vec<(u32, u32)> = units
            .iter()
            .filter(|u| u.cell_idx == 0)
            .map(|u| (u.run_start, u.run_len))
            .collect();
        assert_eq!(cell0, vec![(0, 4), (4, 4), (8, 2)]);
        // Total runs per cell is exact.
        for cell in 0..4 {
            let total: u32 = units
                .iter()
                .filter(|u| u.cell_idx == cell)
                .map(|u| u.run_len)
                .sum();
            assert_eq!(total, 10);
        }
    }

    #[test]
    fn unit_slicing_does_not_change_results() {
        // The same sweep executed over 1-run units and whole-cell units
        // must agree on everything except float fold order — and because
        // the fold is canonical, even the floats must agree with the
        // default execute() path only when the slicing matches. Here we
        // check statistical equality: counts exactly, floats to 1e-12.
        let exp = Experiment::new(
            builtin::ldgm_staircase(),
            150,
            ExpansionRatio::R2_5,
            TxModel::Random,
        );
        let cfg = SweepConfig {
            runs: 6,
            grid_p: vec![0.1],
            grid_q: vec![0.5],
            seed: 77,
            matrix_pool: 2,
            track_total: true,
            threads: Some(1),
        };
        let sweep = GridSweep::new(exp, cfg.clone()).unwrap();
        let fine: Vec<CellAccum> = sweep.execute_units(&cfg.units(1));
        let coarse: Vec<CellAccum> = sweep.execute_units(&cfg.units(100));
        let fine_cells = finalize_cells(&cfg, &fine);
        let coarse_cells = finalize_cells(&cfg, &coarse);
        assert_eq!(fine_cells[0].runs, coarse_cells[0].runs);
        assert_eq!(fine_cells[0].failures, coarse_cells[0].failures);
        let close = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (Some(x), Some(y)) => (x - y).abs() < 1e-12,
            (None, None) => true,
            _ => false,
        };
        assert!(close(
            fine_cells[0].mean_inefficiency,
            coarse_cells[0].mean_inefficiency
        ));
        assert!(close(
            fine_cells[0].std_inefficiency,
            coarse_cells[0].std_inefficiency
        ));
        assert!(close(
            fine_cells[0].mean_received_ratio,
            coarse_cells[0].mean_received_ratio
        ));
    }

    #[test]
    fn accum_merge_matches_sequential_record() {
        let samples = [
            (Some(1.02), 1.1),
            (None, 0.4),
            (Some(1.10), 1.2),
            (Some(1.05), 1.15),
            (None, 0.2),
            (Some(1.30), 1.4),
        ];
        let mut whole = CellAccum::new(3);
        for (inef, rr) in samples {
            whole.record(inef, rr);
        }
        for split in 0..=samples.len() {
            let mut a = CellAccum::new(3);
            let mut b = CellAccum::new(3);
            for (inef, rr) in &samples[..split] {
                a.record(*inef, *rr);
            }
            for (inef, rr) in &samples[split..] {
                b.record(*inef, *rr);
            }
            a.merge(&b);
            assert_eq!(a.runs, whole.runs);
            assert_eq!(a.failures, whole.failures);
            assert!((a.sum - whole.sum).abs() < 1e-12);
            assert!((a.mean - whole.mean).abs() < 1e-12);
            assert!((a.m2 - whole.m2).abs() < 1e-12);
            assert_eq!(a.min, whole.min);
            assert_eq!(a.max, whole.max);
            assert!((a.received_sum - whole.received_sum).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "different cells")]
    fn accum_merge_rejects_cell_mismatch() {
        let mut a = CellAccum::new(0);
        a.merge(&CellAccum::new(1));
    }

    #[test]
    fn cell_stats_serde_layout_is_golden() {
        // The on-disk contract: partial files and merged results from older
        // builds must keep loading, so the field set and order are frozen.
        let stats = CellStats {
            p: 0.5,
            q: 0.25,
            runs: 4,
            failures: 1,
            mean_inefficiency: None,
            mean_inefficiency_unmasked: Some(1.5),
            min_inefficiency: Some(1.25),
            max_inefficiency: Some(1.75),
            std_inefficiency: Some(0.25),
            mean_received_ratio: None,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert_eq!(
            json,
            "{\"p\":0.5,\"q\":0.25,\"runs\":4,\"failures\":1,\
             \"mean_inefficiency\":null,\"mean_inefficiency_unmasked\":1.5,\
             \"min_inefficiency\":1.25,\"max_inefficiency\":1.75,\
             \"std_inefficiency\":0.25,\"mean_received_ratio\":null}"
        );
        let back: CellStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn track_total_populates_received_ratio() {
        let exp = Experiment::new(builtin::rse(), 100, ExpansionRatio::R1_5, TxModel::Random);
        let cfg = SweepConfig {
            runs: 3,
            grid_p: vec![0.1],
            grid_q: vec![0.5],
            track_total: true,
            threads: Some(1),
            ..SweepConfig::default()
        };
        let r = GridSweep::new(exp, cfg).unwrap().execute();
        let ratio = r.cells[0].mean_received_ratio.unwrap();
        // ~78% delivery of 1.5k packets ≈ 1.17k received.
        assert!(ratio > 0.9 && ratio < 1.5, "received ratio {ratio}");
    }

    #[test]
    fn config_validation() {
        let exp = Experiment::new(builtin::rse(), 10, ExpansionRatio::R1_5, TxModel::Random);
        let bad_runs = SweepConfig {
            runs: 0,
            ..SweepConfig::default()
        };
        assert!(GridSweep::new(exp.clone(), bad_runs).is_err());
        let bad_grid = SweepConfig {
            grid_p: vec![1.5],
            ..SweepConfig::default()
        };
        assert!(GridSweep::new(exp.clone(), bad_grid).is_err());
        let empty_grid = SweepConfig {
            grid_q: vec![],
            ..SweepConfig::default()
        };
        assert!(GridSweep::new(exp, empty_grid).is_err());
    }

    #[test]
    fn grand_mean_and_surface() {
        let r = tiny_sweep(builtin::ldgm_staircase(), TxModel::Random);
        let gm = r.grand_mean().unwrap();
        assert!(gm >= 1.0, "inefficiency is at least 1, got {gm}");
        for (_, _, m) in r.surface() {
            assert!(m >= 1.0);
        }
    }

    #[test]
    fn sweep_result_serializes() {
        // Float text formatting may differ in the last ulp, so compare the
        // JSON fixed point: deserialize -> serialize must be idempotent.
        let r = tiny_sweep(builtin::rse(), TxModel::Random);
        let json = serde_json::to_string(&r).unwrap();
        let back: SweepResult = serde_json::from_str(&json).unwrap();
        let json2 = serde_json::to_string(&back).unwrap();
        assert_eq!(json, json2);
        assert_eq!(back.cells.len(), r.cells.len());
        assert_eq!(back.masked_cells(), r.masked_cells());
    }
}
