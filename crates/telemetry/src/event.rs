//! Structured session events: a bounded in-memory log plus a JSONL sink.
//!
//! Instrumented layers *record* events (cheap: one mutex push, never
//! blocking on I/O or a full buffer — the oldest record is dropped and
//! counted instead). The session driver *drains* records whenever it
//! likes and ships them to a [`JsonlSink`], one serde-framed JSON object
//! per line, for offline analysis and replay.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// One structured occurrence inside a live session.
///
/// Externally tagged: `{"DigestReceived":{"report_seq":3,…}}` on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A sender session began streaming.
    SessionStart {
        /// Transport Session Identifier.
        tsi: u64,
        /// Number of objects queued in the session.
        objects: u32,
        /// Static worst-case schedule length (packets), before any
        /// feedback-driven truncation.
        full_schedule: u64,
    },
    /// A sender session finished.
    SessionEnd {
        /// Transport Session Identifier.
        tsi: u64,
        /// Data datagrams actually emitted.
        datagrams: u64,
        /// Planned packets at the end (after amendments).
        planned: u64,
        /// Objects confirmed complete by feedback.
        completed: u32,
    },
    /// A receiver (or feedback digest) confirmed an object decoded.
    ObjectComplete {
        /// Transport Object Identifier.
        toi: u32,
    },
    /// The sender ingested a reception report.
    DigestReceived {
        /// Report sequence number from the receiver.
        report_seq: u64,
        /// Loss observations carried by the report.
        observations: u64,
        /// Whether the report advanced state (false: stale/foreign).
        applied: bool,
    },
    /// The receiver emitted a reception report.
    DigestEmitted {
        /// Report sequence number.
        report_seq: u64,
        /// Loss observations carried.
        observations: u64,
    },
    /// The sender-side channel estimator absorbed new observations.
    EstimateUpdated {
        /// Estimated loss-entry probability `p`.
        p: f64,
        /// Estimated loss-exit probability `q`.
        q: f64,
        /// Conservative (Wilson upper bound) loss estimate.
        p_upper: f64,
        /// Observation window length behind the estimate.
        window: u64,
    },
    /// The controller re-planned an in-flight object.
    ReplanIssued {
        /// Object the new plan applies to.
        toi: u32,
        /// New target packet count for the object.
        target: u64,
        /// New schedule length.
        schedule: u64,
    },
    /// The controller entered failure backoff and reverted a plan.
    BackoffTriggered {
        /// Object whose plan was reverted to the full schedule.
        reverted: u32,
    },
    /// The sender turned receiver NACKs into targeted repair symbols.
    RepairQueued {
        /// Object the repairs belong to.
        toi: u32,
        /// Distinct missing symbols the population requested.
        requested: u64,
        /// Symbols actually queued (deduped against packets in flight).
        queued: u64,
    },
    /// Periodic link-emulator impairment snapshot.
    LinkImpairment {
        /// Datagrams offered to the link.
        offered: u64,
        /// Datagrams dropped.
        dropped: u64,
        /// Datagrams duplicated.
        duplicated: u64,
        /// Datagrams delivered out of order.
        reordered: u64,
    },
    /// Distributed sweep progress.
    SweepProgress {
        /// Work units merged so far.
        units_done: u64,
        /// Work units planned in total.
        units_total: u64,
    },
}

/// An [`Event`] plus its position in the session's event stream.
///
/// `seq` is assigned at record time and never reused, so gaps in a drained
/// stream reveal exactly how many records were dropped under pressure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotone sequence number (0-based) within the log's lifetime.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

#[derive(Debug)]
struct LogInner {
    records: VecDeque<EventRecord>,
    next_seq: u64,
    dropped: u64,
    capacity: usize,
}

/// A bounded, thread-safe event log.
///
/// Clones share the same buffer. Recording never blocks and never
/// allocates beyond the event itself: when the buffer is full the oldest
/// record is evicted and counted in [`EventLog::dropped`].
#[derive(Debug, Clone)]
pub struct EventLog {
    inner: Arc<Mutex<LogInner>>,
}

impl EventLog {
    /// A log holding at most `capacity` undrained records.
    pub fn bounded(capacity: usize) -> EventLog {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog {
            inner: Arc::new(Mutex::new(LogInner {
                records: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 0,
                dropped: 0,
                capacity,
            })),
        }
    }

    /// Appends an event, evicting the oldest record if full.
    pub fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        if inner.records.len() == inner.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.records.push_back(EventRecord { seq, event });
    }

    /// Removes and returns every buffered record, oldest first.
    pub fn drain(&self) -> Vec<EventRecord> {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.records.drain(..).collect()
    }

    /// Records buffered right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log poisoned").records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted (lost) because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event log poisoned").dropped
    }

    /// Total events ever recorded (including later-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("event log poisoned").next_seq
    }
}

/// Writes drained [`EventRecord`]s as JSON Lines: one object per line.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    written: u64,
}

impl JsonlSink {
    /// Creates (truncating) the sink file.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Appends one record per line.
    pub fn write_all(&mut self, records: &[EventRecord]) -> std::io::Result<()> {
        for record in records {
            let line = serde_json::to_string(record).map_err(std::io::Error::other)?;
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.written += 1;
        }
        Ok(())
    }

    /// Drains `log` into the sink.
    pub fn drain_from(&mut self, log: &EventLog) -> std::io::Result<usize> {
        let records = log.drain();
        self.write_all(&records)?;
        Ok(records.len())
    }

    /// Flushes buffered lines to the file.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_drain_in_order_with_monotone_seq() {
        let log = EventLog::bounded(16);
        log.record(Event::ObjectComplete { toi: 1 });
        log.record(Event::ObjectComplete { toi: 2 });
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seq, 0);
        assert_eq!(drained[1].seq, 1);
        assert!(log.is_empty());
        // seq keeps counting across drains.
        log.record(Event::ObjectComplete { toi: 3 });
        assert_eq!(log.drain()[0].seq, 2);
    }

    #[test]
    fn full_log_drops_oldest_and_counts() {
        let log = EventLog::bounded(2);
        for toi in 0..5u32 {
            log.record(Event::ObjectComplete { toi });
        }
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.recorded(), 5);
        let drained = log.drain();
        let seqs: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn events_roundtrip_through_json() {
        let event = Event::EstimateUpdated {
            p: 0.05,
            q: 0.6,
            p_upper: 0.09,
            window: 512,
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let dir = std::env::temp_dir().join("fec_telemetry_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let log = EventLog::bounded(8);
        log.record(Event::SessionStart {
            tsi: 7,
            objects: 1,
            full_schedule: 100,
        });
        log.record(Event::ObjectComplete { toi: 0 });
        let mut sink = JsonlSink::create(&path).unwrap();
        assert_eq!(sink.drain_from(&log).unwrap(), 2);
        sink.flush().unwrap();
        assert_eq!(sink.written(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let record: EventRecord = serde_json::from_str(line).unwrap();
            assert!(record.seq < 2);
        }
        std::fs::remove_file(&path).ok();
    }
}
