//! A tiny blocking HTTP responder that serves the registry's Prometheus
//! exposition.
//!
//! This is deliberately not a web framework: it answers **any** HTTP
//! request on its socket with the current metrics snapshot, closing the
//! connection after each response. That is all a Prometheus scraper (or
//! `curl`) needs, and it keeps the whole server at one std `TcpListener`
//! plus one background thread — no async runtime, no external crates.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// Serves `GET /metrics` (and every other path) with the registry's
/// current Prometheus text exposition.
///
/// The listener runs on a background thread; dropping the server stops
/// the thread and releases the port.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port, then read
    /// [`local_addr`](MetricsServer::local_addr)) and starts serving
    /// snapshots of `registry`.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fec-metrics".to_string())
            .spawn(move || serve(listener, registry, stop_flag))
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn serve(listener: TcpListener, registry: Registry, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare and tiny, and a
                // single-threaded responder cannot be connection-bombed
                // into spawning threads.
                let _ = respond(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn respond(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or timeout). The request
    // line/headers are ignored — every path gets the metrics page.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_current_snapshot_per_request() {
        let registry = Registry::new();
        let hits = registry.counter("hits_total", "Scrape test counter.");
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        hits.add(2);
        let first = scrape(server.local_addr());
        assert!(first.starts_with("HTTP/1.1 200 OK\r\n"), "{first}");
        assert!(first.contains("text/plain; version=0.0.4"));
        assert!(first.contains("hits_total 2"));
        // The server snapshots at request time, not bind time.
        hits.add(3);
        assert!(scrape(server.local_addr()).contains("hits_total 5"));
    }

    #[test]
    fn drop_releases_the_port() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::new()).unwrap();
        let addr = server.local_addr();
        drop(server);
        // The port must be rebindable once the thread has exited.
        TcpListener::bind(addr).unwrap();
    }
}
