//! Session-wide telemetry for the live adaptive stack.
//!
//! Every other crate in this workspace *does* something — encodes,
//! schedules, estimates, re-plans. This one only *watches*: it is the ops
//! surface that makes a live session observable from the outside without
//! perturbing the hot paths being observed. Three pieces:
//!
//! * **Metrics** — a [`Registry`] of named counters, gauges and
//!   fixed-bucket histograms. Handles are plain atomics behind an `Arc`,
//!   so instrumented code pays one relaxed atomic op per update — and one
//!   predictable branch (and nothing else) when the registry was built
//!   with [`Registry::disabled`]. Registration allocates; updates never
//!   do. The whole registry renders to Prometheus text exposition format
//!   via [`Registry::render_prometheus`] (byte layout golden-tested) and
//!   is served over HTTP by [`MetricsServer`].
//! * **Events** — a bounded, thread-safe structured [`EventLog`] of
//!   [`Event`]s (session start/end, object completion, digests, estimator
//!   updates, re-plans, backoffs, link impairments). Drained records
//!   serialize one-per-line into a JSONL sink ([`JsonlSink`]) for offline
//!   analysis/replay; when the log is full the oldest records are dropped
//!   and counted, never blocking the emitter.
//! * **Summary** — a [`SessionSummary`] struct (goodput, overhead versus
//!   the static worst case, re-plan churn, estimator trajectory) the CLI
//!   prints as a single JSON document on exit.
//!
//! The crate depends only on the (shimmed) `serde` stack — it sits at the
//! bottom of the workspace graph so every layer can be instrumented.
//!
//! ```
//! use fec_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let sent = registry.counter("demo_datagrams_total", "Datagrams sent.");
//! sent.add(3);
//! let text = registry.render_prometheus();
//! assert!(text.contains("demo_datagrams_total 3"));
//!
//! // A disabled registry hands out inert handles: same call sites, no
//! // work, no output.
//! let off = Registry::disabled();
//! let noop = off.counter("demo_datagrams_total", "Datagrams sent.");
//! noop.inc();
//! assert_eq!(off.render_prometheus(), "");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod http;
mod path;
mod registry;
mod summary;

pub use event::{Event, EventLog, EventRecord, JsonlSink};
pub use http::MetricsServer;
pub use path::PathMetrics;
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use summary::{EstimatorSample, SessionSummary};
