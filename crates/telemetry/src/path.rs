//! Per-path metric family for bonded (multipath) transport.
//!
//! A bonded sender stripes one emission across N paths; operators need
//! to see, *per path*, how much rate the controller allocated, what the
//! estimator thinks the path's loss is, how much traffic actually went
//! out, and whether the path has been declared dead. One
//! [`PathMetrics`] bundle per path keeps those series under a single
//! `fec_path_*` family, distinguished by a `path` label, so a
//! Prometheus scrape shows the whole bond side by side.

use crate::registry::{Counter, Gauge, Registry};

/// Handles for one bonded path's metric series.
#[derive(Debug, Clone)]
pub struct PathMetrics {
    /// `fec_path_share` — packet-rate share (datagrams/s) the controller
    /// currently allocates to this path (0 during an outage).
    pub share: Gauge,
    /// `fec_path_loss_upper` — the path estimator's conservative
    /// stationary loss bound.
    pub loss_upper: Gauge,
    /// `fec_path_datagrams_total` — datagrams handed to this path's
    /// socket/emulator.
    pub datagrams: Counter,
    /// `fec_path_outages_total` — times the bond declared this path dead
    /// and routed around it.
    pub outages: Counter,
}

impl PathMetrics {
    /// Registers (or retrieves) the `fec_path_*` series for path index
    /// `path` in `registry`.
    pub fn register(registry: &Registry, path: usize) -> PathMetrics {
        let idx = path.to_string();
        let labels: &[(&str, &str)] = &[("path", idx.as_str())];
        PathMetrics {
            share: registry.gauge_with(
                "fec_path_share",
                "Packet-rate share (datagrams/s) allocated to the path.",
                labels,
            ),
            loss_upper: registry.gauge_with(
                "fec_path_loss_upper",
                "Conservative stationary loss bound estimated for the path.",
                labels,
            ),
            datagrams: registry.counter_with(
                "fec_path_datagrams_total",
                "Datagrams emitted on the path.",
                labels,
            ),
            outages: registry.counter_with(
                "fec_path_outages_total",
                "Times the path was declared dead and routed around.",
                labels,
            ),
        }
    }

    /// Registers bundles for paths `0..count`.
    pub fn register_all(registry: &Registry, count: usize) -> Vec<PathMetrics> {
        (0..count)
            .map(|p| PathMetrics::register(registry, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_family_renders_with_labels() {
        let registry = Registry::new();
        let paths = PathMetrics::register_all(&registry, 2);
        paths[0].share.set(150.0);
        paths[0].datagrams.add(7);
        paths[1].loss_upper.set(0.25);
        paths[1].outages.inc();
        let text = registry.render_prometheus();
        assert!(text.contains("fec_path_share{path=\"0\"} 150"));
        assert!(text.contains("fec_path_datagrams_total{path=\"0\"} 7"));
        assert!(text.contains("fec_path_loss_upper{path=\"1\"} 0.25"));
        assert!(text.contains("fec_path_outages_total{path=\"1\"} 1"));
    }

    #[test]
    fn disabled_registry_hands_out_inert_bundles() {
        let off = Registry::disabled();
        let paths = PathMetrics::register_all(&off, 3);
        paths[2].datagrams.inc();
        paths[2].share.set(10.0);
        assert_eq!(off.render_prometheus(), "");
        assert_eq!(paths[2].datagrams.get(), 0);
    }
}
