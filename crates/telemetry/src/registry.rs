//! The metric registry: cheap atomic counters/gauges/histograms plus the
//! Prometheus text-format encoder.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path must stay hot.** A metric update is one relaxed
//!    atomic RMW on an `Arc`'d cell — no locks, no allocation, no
//!    formatting. A handle from a [`Registry::disabled`] registry is an
//!    `Option::None` inside, so instrumented code pays exactly one
//!    well-predicted branch when telemetry is off.
//! 2. **Registration is setup-time.** Creating a metric takes a mutex and
//!    allocates; do it once (session start), keep the handle, update it
//!    forever after. Registering the same `(name, labels)` twice returns
//!    the *same* underlying cell, so independent components can share a
//!    series safely.
//! 3. **Exposition is deterministic.** [`Registry::render_prometheus`]
//!    sorts families by name and series by label signature, so the byte
//!    layout is stable and golden-testable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
///
/// Handles are cheap to clone and safe to update from any thread. A handle
/// from a disabled registry ignores updates.
#[derive(Debug, Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert counter (what disabled registries hand out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            // audit:allow(relaxed) -- single independent cell, monotone RMW;
            // scrapes are statistical snapshots with no cross-cell invariant.
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for inert handles).
    pub fn get(&self) -> u64 {
        // audit:allow(relaxed) -- reads one monotone cell; the value is a
        // point-in-time sample, not a synchronisation signal.
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge: a single settable `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// An inert gauge.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            // audit:allow(relaxed) -- last-write-wins on a single cell; the
            // bits are a complete f64, so no torn read is observable.
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for inert handles).
    pub fn get(&self) -> f64 {
        // audit:allow(relaxed) -- point-in-time sample of one cell.
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCells {
    /// Finite upper bounds, ascending; the implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One cell per finite bound plus the `+Inf` overflow, NON-cumulative
    /// (cumulated at render time).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, as `f64` bits (CAS loop — observation is
    /// not the decode hot path).
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram. Buckets are chosen at registration; observing
/// is a linear scan over a handful of bounds plus two atomic adds — no
/// allocation ever.
#[derive(Debug, Clone)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// An inert histogram.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let Some(cells) = &self.0 else {
            return;
        };
        let idx = cells
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(cells.bounds.len());
        // audit:allow(relaxed) -- bucket, count and sum are deliberately
        // NOT updated atomically as a group: a concurrent scrape may see
        // count ahead of the bucket row (documented in render_prometheus).
        // Each cell on its own is a monotone counter, so Relaxed suffices.
        cells.buckets[idx].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed); // audit:allow(relaxed) -- see above
        let mut current = cells.sum_bits.load(Ordering::Relaxed); // audit:allow(relaxed) -- CAS retry loop re-reads
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match cells.sum_bits.compare_exchange_weak(
                current,
                next,
                // audit:allow(relaxed) -- the loop only publishes the sum
                // bits themselves; failure re-reads, success needs no
                // release because no other data is guarded by this cell.
                Ordering::Relaxed,
                Ordering::Relaxed, // audit:allow(relaxed) -- see above
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total observations (0 for inert handles).
    pub fn count(&self) -> u64 {
        // audit:allow(relaxed) -- point-in-time sample of one cell.
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of observations (0.0 for inert handles).
    pub fn sum(&self) -> f64 {
        // audit:allow(relaxed) -- point-in-time sample of one cell.
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.sum_bits.load(Ordering::Relaxed)))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Cells {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

#[derive(Debug)]
struct Series {
    /// Pre-rendered `{label="value",…}` signature ("" for no labels); also
    /// the dedup key within a family.
    signature: String,
    cells: Cells,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Mutex<Vec<Family>>,
}

/// A registry of named metrics.
///
/// Clones share the same underlying metric store (it is an `Arc` inside),
/// so one registry can be handed to every instrumented layer and to the
/// exposition server at once. [`Registry::disabled`] builds a no-op
/// registry whose handles ignore updates and whose exposition is empty.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A live registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A no-op registry: every handle it returns is inert, and
    /// [`render_prometheus`](Registry::render_prometheus) returns `""`.
    /// This is the default for instrumented types, so un-observed
    /// sessions pay one branch per would-be update.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with the given label pairs.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels, &[]) {
            Some(Cells::Counter(cell)) => Counter(Some(cell)),
            None => Counter(None),
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with the given label pairs.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels, &[]) {
            Some(Cells::Gauge(cell)) => Gauge(Some(cell)),
            None => Gauge(None),
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram with the given
    /// finite bucket bounds (ascending; the `+Inf` bucket is implicit).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or retrieves) a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, help, Kind::Histogram, labels, bounds) {
            Some(Cells::Histogram(cells)) => Histogram(Some(cells)),
            None => Histogram(None),
            _ => unreachable!("kind checked in register"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Option<Cells> {
        let inner = self.inner.as_ref()?;
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let signature = render_labels(labels);
        let mut families = inner.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name:?} registered as {} and {}",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.signature == signature) {
            return Some(clone_cells(&existing.cells));
        }
        let cells = match kind {
            Kind::Counter => Cells::Counter(Arc::new(AtomicU64::new(0))),
            Kind::Gauge => Cells::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
            Kind::Histogram => Cells::Histogram(Arc::new(HistogramCells {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })),
        };
        let handle = clone_cells(&cells);
        family.series.push(Series { signature, cells });
        Some(handle)
    }

    /// Renders every metric in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, one sample line
    /// per series, families sorted by name and series by label signature.
    /// A disabled registry renders as the empty string.
    pub fn render_prometheus(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let families = inner.families.lock().expect("registry poisoned");
        let mut order: Vec<&Family> = families.iter().collect();
        order.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::new();
        for family in order {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            let mut series: Vec<&Series> = family.series.iter().collect();
            series.sort_by(|a, b| a.signature.cmp(&b.signature));
            for s in series {
                render_series(&mut out, &family.name, s);
            }
        }
        out
    }
}

fn clone_cells(cells: &Cells) -> Cells {
    match cells {
        Cells::Counter(c) => Cells::Counter(Arc::clone(c)),
        Cells::Gauge(g) => Cells::Gauge(Arc::clone(g)),
        Cells::Histogram(h) => Cells::Histogram(Arc::clone(h)),
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a float the Prometheus way: integral values without a trailing
/// `.0`, everything else via Rust's shortest-roundtrip `Display`.
fn render_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.cells {
        Cells::Counter(c) => {
            out.push_str(name);
            out.push_str(&series.signature);
            out.push(' ');
            // audit:allow(relaxed) -- exposition samples each cell once; a
            // scrape racing an update sees either value, both valid.
            out.push_str(&c.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
        Cells::Gauge(g) => {
            out.push_str(name);
            out.push_str(&series.signature);
            out.push(' ');
            // audit:allow(relaxed) -- same sampling argument as counters.
            out.push_str(&render_float(f64::from_bits(g.load(Ordering::Relaxed))));
            out.push('\n');
        }
        Cells::Histogram(h) => {
            let mut cumulative = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                // audit:allow(relaxed) -- bucket/count/sum may be mutually
                // skewed by in-flight observe() calls (each cell is exact);
                // Prometheus tolerates this between scrapes by design.
                cumulative += bucket.load(Ordering::Relaxed);
                let le = h
                    .bounds
                    .get(i)
                    .map_or_else(|| "+Inf".to_string(), |b| render_float(*b));
                out.push_str(name);
                out.push_str("_bucket");
                out.push_str(&merge_label(&series.signature, "le", &le));
                out.push(' ');
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_sum");
            out.push_str(&series.signature);
            out.push(' ');
            out.push_str(&render_float(f64::from_bits(
                h.sum_bits.load(Ordering::Relaxed), // audit:allow(relaxed) -- see bucket note
            )));
            out.push('\n');
            out.push_str(name);
            out.push_str("_count");
            out.push_str(&series.signature);
            out.push(' ');
            // audit:allow(relaxed) -- see the bucket note above.
            out.push_str(&h.count.load(Ordering::Relaxed).to_string());
            out.push('\n');
        }
    }
}

/// Appends `extra="value"` to an existing `{…}` signature (or starts one).
fn merge_label(signature: &str, extra: &str, value: &str) -> String {
    if signature.is_empty() {
        format!("{{{extra}=\"{value}\"}}")
    } else {
        let body = &signature[1..signature.len() - 1];
        format!("{{{body},{extra}=\"{value}\"}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_register_and_update() {
        let r = Registry::new();
        let c = r.counter("t_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        let c2 = r.counter("t_total", "a counter");
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = r.gauge("t_gauge", "a gauge");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);

        let h = r.histogram("t_hist", "a histogram", &[1.0, 4.0]);
        for v in [0.5, 2.0, 2.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 13.5);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("t_total", "labelled", &[("toi", "1")]);
        let b = r.counter_with("t_total", "labelled", &[("toi", "2")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 2);
        let text = r.render_prometheus();
        assert!(text.contains("t_total{toi=\"1\"} 1"));
        assert!(text.contains("t_total{toi=\"2\"} 2"));
        // HELP/TYPE appear once per family, not per series.
        assert_eq!(text.matches("# TYPE t_total").count(), 1);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x_total", "nope");
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = r.gauge("x", "nope");
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = r.histogram("x_hist", "nope", &[1.0]);
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(r.render_prometheus(), "");
    }

    #[test]
    fn clones_share_the_store() {
        let r = Registry::new();
        let c = r.counter("shared_total", "one cell");
        let r2 = r.clone();
        let c2 = r2.counter("shared_total", "one cell");
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
        assert!(r2.render_prometheus().contains("shared_total 2"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("9bad name", "nope");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.counter("twice", "as counter");
        r.gauge("twice", "as gauge");
    }
}
