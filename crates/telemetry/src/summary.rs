//! End-of-session roll-up: the single JSON document a CLI session prints
//! on exit.
//!
//! The summary answers the paper-level questions about a finished run:
//! how fast did useful bytes move (goodput), how much of the static
//! worst-case schedule did feedback let us skip (overhead ratio), how
//! often did the controller re-plan or back off, and what trajectory did
//! the Gilbert estimator trace while doing it.

use serde::{Deserialize, Serialize};

/// One point on the estimator's trajectory through the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorSample {
    /// Loss observations absorbed when the sample was taken.
    pub observations: u64,
    /// Estimated loss-entry probability `p`.
    pub p: f64,
    /// Estimated loss-exit probability `q`.
    pub q: f64,
    /// Conservative (Wilson upper bound) loss estimate the planner used.
    pub p_upper: f64,
}

/// Final statistics for one live session, printed as JSON on exit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Transport Session Identifier.
    pub tsi: u64,
    /// Wall-clock session duration in seconds.
    pub elapsed_secs: f64,
    /// Data datagrams emitted (excludes FDT refreshes).
    pub datagrams_sent: u64,
    /// Payload bytes emitted on the wire.
    pub bytes_sent: u64,
    /// Source object bytes the session carried.
    pub object_bytes: u64,
    /// `object_bytes / elapsed_secs` (0 when the clock reads zero).
    pub goodput_bytes_per_sec: f64,
    /// Static worst-case schedule length (packets) before feedback.
    pub full_schedule: u64,
    /// `datagrams_sent / full_schedule`: < 1.0 means feedback saved
    /// transmissions versus the static plan.
    pub overhead_ratio: f64,
    /// Plans issued by the adaptive controller.
    pub replans: u64,
    /// Failure backoffs (plan reverted to worst case).
    pub backoffs: u64,
    /// Reception reports that advanced sender state.
    pub digests_applied: u64,
    /// Objects confirmed complete via feedback.
    pub objects_completed: u32,
    /// Estimator trajectory, oldest sample first.
    pub estimator: Vec<EstimatorSample>,
}

impl SessionSummary {
    /// A zeroed summary for session `tsi`; fill fields as the session
    /// closes out.
    pub fn new(tsi: u64) -> SessionSummary {
        SessionSummary {
            tsi,
            elapsed_secs: 0.0,
            datagrams_sent: 0,
            bytes_sent: 0,
            object_bytes: 0,
            goodput_bytes_per_sec: 0.0,
            full_schedule: 0,
            overhead_ratio: 0.0,
            replans: 0,
            backoffs: 0,
            digests_applied: 0,
            objects_completed: 0,
            estimator: Vec::new(),
        }
    }

    /// Recomputes the derived rates (`goodput_bytes_per_sec`,
    /// `overhead_ratio`) from the raw fields.
    pub fn finalize(&mut self) {
        self.goodput_bytes_per_sec = if self.elapsed_secs > 0.0 {
            self.object_bytes as f64 / self.elapsed_secs
        } else {
            0.0
        };
        self.overhead_ratio = if self.full_schedule > 0 {
            self.datagrams_sent as f64 / self.full_schedule as f64
        } else {
            0.0
        };
    }

    /// Serializes the summary as a single pretty JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_derives_rates() {
        let mut s = SessionSummary::new(42);
        s.elapsed_secs = 2.0;
        s.object_bytes = 4096;
        s.datagrams_sent = 75;
        s.full_schedule = 100;
        s.finalize();
        assert_eq!(s.goodput_bytes_per_sec, 2048.0);
        assert_eq!(s.overhead_ratio, 0.75);
    }

    #[test]
    fn finalize_tolerates_zero_denominators() {
        let mut s = SessionSummary::new(0);
        s.finalize();
        assert_eq!(s.goodput_bytes_per_sec, 0.0);
        assert_eq!(s.overhead_ratio, 0.0);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let mut s = SessionSummary::new(7);
        s.datagrams_sent = 10;
        s.estimator.push(EstimatorSample {
            observations: 100,
            p: 0.05,
            q: 0.5,
            p_upper: 0.08,
        });
        s.finalize();
        let json = s.to_json();
        let back: SessionSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
