//! Property tests for the structured event layer, plus the
//! concurrent-counter soundness check.

use std::sync::Arc;

use fec_telemetry::{Event, EventLog, JsonlSink, Registry};
use proptest::prelude::*;

/// Builds one of every [`Event`] variant from generated primitives; the
/// selector wraps, so every variant is reachable from any `u8`.
fn build_event(variant: u8, a: u64, b: u64, c: u64, x: f64, y: f64, flag: bool) -> Event {
    match variant % 11 {
        0 => Event::SessionStart {
            tsi: a,
            objects: b as u32,
            full_schedule: c,
        },
        1 => Event::SessionEnd {
            tsi: a,
            datagrams: b,
            planned: c,
            completed: a as u32,
        },
        2 => Event::ObjectComplete { toi: a as u32 },
        3 => Event::DigestReceived {
            report_seq: a,
            observations: b,
            applied: flag,
        },
        4 => Event::DigestEmitted {
            report_seq: a,
            observations: b,
        },
        5 => Event::EstimateUpdated {
            p: x,
            q: y,
            p_upper: x,
            window: c,
        },
        6 => Event::ReplanIssued {
            toi: a as u32,
            target: b,
            schedule: c,
        },
        7 => Event::BackoffTriggered { reverted: a as u32 },
        8 => Event::RepairQueued {
            toi: a as u32,
            requested: b,
            queued: c,
        },
        9 => Event::LinkImpairment {
            offered: a,
            dropped: b,
            duplicated: c,
            reordered: a.wrapping_add(b),
        },
        _ => Event::SweepProgress {
            units_done: a,
            units_total: b,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every event variant survives a JSON round trip bit-exactly — the
    /// guarantee the JSONL sink and its consumers rely on.
    #[test]
    fn event_json_roundtrip(
        variant in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        flag in any::<bool>(),
    ) {
        let event = build_event(variant, a, b, c, x, y, flag);
        let json = serde_json::to_string(&event).expect("serialize");
        let back: Event = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, event);
    }
}

/// The JSONL sink writes exactly one parseable line per record, and the
/// parsed lines reproduce the recorded sequence.
#[test]
fn jsonl_sink_roundtrips_a_session() {
    let dir = std::env::temp_dir().join(format!("fec-telemetry-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");

    let log = EventLog::bounded(64);
    let recorded: Vec<Event> = (0..20u8)
        .map(|i| build_event(i, i as u64 * 3, i as u64 + 7, 2, 0.25, 0.5, i % 2 == 0))
        .collect();
    for event in &recorded {
        log.record(event.clone());
    }
    let mut sink = JsonlSink::create(&path).unwrap();
    assert_eq!(sink.drain_from(&log).unwrap(), 20);
    sink.flush().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 20);
    for (i, (line, expected)) in lines.iter().zip(&recorded).enumerate() {
        let record: fec_telemetry::EventRecord = serde_json::from_str(line).unwrap();
        assert_eq!(record.seq, i as u64);
        assert_eq!(&record.event, expected);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Counter increments from many threads must all land: the whole point of
/// handing `Clone`d atomic handles to worker threads.
#[test]
fn concurrent_counter_increments_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let registry = Registry::new();
    let counter = Arc::new(registry.counter(
        "demo_contended_total",
        "Counter hammered from many threads.",
    ));
    let histogram = Arc::new(registry.histogram(
        "demo_contended_values",
        "Histogram hammered from many threads.",
        &[0.5, 1.5],
    ));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = Arc::clone(&counter);
            let histogram = Arc::clone(&histogram);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // Alternate buckets so bucket cells and the CAS-looped
                    // float sum both see contention.
                    histogram.observe(if (i + t as u64).is_multiple_of(2) {
                        0.0
                    } else {
                        1.0
                    });
                }
            });
        }
    });

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total);
    assert_eq!(histogram.count(), total);
    assert_eq!(histogram.sum(), (total / 2) as f64);
    let rendered = registry.render_prometheus();
    assert!(
        rendered.contains(&format!("demo_contended_total {total}")),
        "rendered total drifted:\n{rendered}"
    );
}
