//! Golden test for the Prometheus text exposition: the rendered bytes are
//! pinned exactly, so any drift in ordering, escaping, or number
//! formatting — all of which scrape consumers depend on — fails loudly.

use fec_telemetry::Registry;

#[test]
fn exposition_format_is_stable() {
    let registry = Registry::new();

    // Families registered deliberately out of alphabetical order: the
    // renderer must sort them.
    let gauge = registry.gauge("demo_planned_packets", "Packets currently planned.");
    gauge.set(512.0);

    let data = registry.counter_with(
        "demo_datagrams_total",
        "Datagrams emitted, by kind.",
        &[("kind", "data")],
    );
    let fdt = registry.counter_with(
        "demo_datagrams_total",
        "Datagrams emitted, by kind.",
        &[("kind", "fdt")],
    );
    data.add(41);
    data.inc();
    fdt.inc();

    let runs = registry.histogram(
        "demo_run_length",
        "Loss run lengths in packets.",
        &[1.0, 2.0, 5.0],
    );
    runs.observe(1.0); // first bucket
    runs.observe(2.0); // second bucket (le is inclusive)
    runs.observe(3.5); // third bucket
    runs.observe(9.0); // +Inf only

    let fraction = registry.gauge("demo_estimate", "Estimated loss fraction.");
    fraction.set(0.0625);

    let expected = "\
# HELP demo_datagrams_total Datagrams emitted, by kind.
# TYPE demo_datagrams_total counter
demo_datagrams_total{kind=\"data\"} 42
demo_datagrams_total{kind=\"fdt\"} 1
# HELP demo_estimate Estimated loss fraction.
# TYPE demo_estimate gauge
demo_estimate 0.0625
# HELP demo_planned_packets Packets currently planned.
# TYPE demo_planned_packets gauge
demo_planned_packets 512
# HELP demo_run_length Loss run lengths in packets.
# TYPE demo_run_length histogram
demo_run_length_bucket{le=\"1\"} 1
demo_run_length_bucket{le=\"2\"} 2
demo_run_length_bucket{le=\"5\"} 3
demo_run_length_bucket{le=\"+Inf\"} 4
demo_run_length_sum 15.5
demo_run_length_count 4
";
    assert_eq!(registry.render_prometheus(), expected);
}

#[test]
fn label_values_are_escaped() {
    let registry = Registry::new();
    registry
        .counter_with(
            "demo_odd_labels_total",
            "Counter with label values needing escapes.",
            &[("path", "a\\b\"c\nd")],
        )
        .inc();
    let rendered = registry.render_prometheus();
    assert!(
        rendered.contains("demo_odd_labels_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
        "escaping drifted:\n{rendered}"
    );
}

#[test]
fn disabled_registry_renders_nothing() {
    let registry = Registry::disabled();
    registry.counter("demo_total", "Never registered.").inc();
    assert_eq!(registry.render_prometheus(), "");
}
