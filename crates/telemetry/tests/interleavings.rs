//! Hand-rolled schedule-permutation tests for the registry's atomics.
//!
//! The `Ordering::Relaxed` sites in `registry.rs` are justified by a
//! specification: a counter cell is an independent monotone scalar, so a
//! scraper may observe any point in the update sequence, but never a
//! value that decreases or overshoots the writes that happened. With no
//! `loom` in the tree, this is checked the pedestrian way:
//!
//! 1. every interleaving of one writer's update sequence with one
//!    scraper's snapshot sequence is enumerated and executed
//!    deterministically (a 2-thread schedule of `n + m` operations is
//!    exactly an `n`-of-`n + m` bitmask), asserting the monotonicity and
//!    bounds invariants in each schedule — the loom-style state-space
//!    walk, minus the fancy memory-model part;
//! 2. a real two-thread run re-checks the same invariants under genuine
//!    concurrency, with the scraper reading through `render_prometheus`
//!    (the path ops dashboards take) while a cloned handle writes.
//!
//! GF(2^8)-style exhaustiveness is the point: 70 schedules is small
//! enough to walk completely, so a regression in the snapshot invariant
//! cannot hide behind scheduler luck.

use std::sync::Arc;
use std::thread;

use fec_telemetry::Registry;

/// The writer's update sequence (deltas applied via a cloned handle).
const WRITES: [u64; 4] = [1, 2, 3, 5];

/// Extracts the sample value of an unlabeled counter from a Prometheus
/// exposition.
fn scrape_value(exposition: &str, name: &str) -> u64 {
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Ok(v) = rest.trim().parse::<u64>() {
                return v;
            }
        }
    }
    panic!("counter {name} not found in exposition:\n{exposition}");
}

/// Every way to interleave `n_writes` writer steps with `n_snaps`
/// scraper steps, as bitmasks (bit set = writer moves).
fn schedules(n_writes: u32, n_snaps: u32) -> Vec<u32> {
    let total = n_writes + n_snaps;
    (0u32..1 << total)
        .filter(|mask| mask.count_ones() == n_writes)
        .collect()
}

#[test]
fn every_two_thread_schedule_keeps_snapshots_monotone_and_bounded() {
    let all = schedules(WRITES.len() as u32, 4);
    // C(8, 4) distinct schedules — the whole space, not a sample.
    assert_eq!(all.len(), 70);

    for mask in all {
        let registry = Registry::new();
        let counter = registry.counter("sched_ops_total", "Schedule-walk counter.");
        let writer_handle = counter.clone();

        let mut written = 0u64;
        let mut writes = WRITES.iter();
        let mut snapshots = Vec::new();
        for step in 0..(WRITES.len() + 4) {
            if mask >> step & 1 == 1 {
                let delta = *writes.next().expect("mask has exactly 4 writer steps");
                writer_handle.add(delta);
                written += delta;
            } else {
                let seen = scrape_value(&registry.render_prometheus(), "sched_ops_total");
                // A snapshot reflects exactly the writes scheduled before it.
                assert_eq!(seen, written, "schedule {mask:#010b}");
                snapshots.push(seen);
            }
        }
        assert!(
            snapshots.windows(2).all(|w| w[0] <= w[1]),
            "snapshots decreased in schedule {mask:#010b}: {snapshots:?}"
        );
        assert_eq!(counter.get(), WRITES.iter().sum::<u64>());
    }
}

#[test]
fn concurrent_writer_and_scraper_agree_on_the_invariants() {
    const INCREMENTS: u64 = 20_000;
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("live_ops_total", "Concurrency-test counter.");
    let writer_handle = counter.clone();

    let writer = thread::spawn(move || {
        for _ in 0..INCREMENTS {
            writer_handle.inc();
        }
    });
    let scraper = {
        let registry = Arc::clone(&registry);
        thread::spawn(move || {
            let mut last = 0u64;
            let mut seen = Vec::new();
            while last < INCREMENTS {
                let v = scrape_value(&registry.render_prometheus(), "live_ops_total");
                assert!(v >= last, "scrape went backwards: {v} < {last}");
                assert!(v <= INCREMENTS, "scrape overshot: {v}");
                last = v;
                seen.push(v);
            }
            seen
        })
    };

    writer.join().expect("writer");
    let seen = scraper.join().expect("scraper");
    assert_eq!(*seen.last().expect("at least one scrape"), INCREMENTS);
    assert_eq!(counter.get(), INCREMENTS);
}
