//! The batched datagram engine: burst send and receive behind one API.
//!
//! On Linux the hot paths are single `sendmmsg`/`recvmmsg` syscalls
//! moving up to [`MAX_BURST`] datagrams; everywhere else (or under
//! `FEC_FORCE_WIRE=portable`) the same API runs a loop of plain
//! `send`/`recv` calls, so callers never branch on platform. Receive
//! bursts land in pooled buffers ([`crate::pool::BufferPool`]) and feed
//! the downstream batched decode paths (`FluteReceiver::push_datagrams`,
//! `Receiver::push_batch`) — one syscall's worth of datagrams becomes one
//! deferred block solve.
//!
//! Error discipline for live loops lives in [`classify_recv_error`]: an
//! interrupted syscall is retried, an idle timeout may end a session, and
//! anything else is a transient to log and survive — a drain loop must
//! never die to a stray `EINTR` or an ICMP-reflected `ECONNREFUSED`.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use fec_telemetry::Registry;

use crate::metrics::DirectionMetrics;
use crate::pacing::Pacer;
use crate::pool::{BufferPool, PoolBuf};

/// Datagrams per syscall burst (the `vlen` cap for mmsg calls and the
/// chunk size for portable loops).
pub const MAX_BURST: usize = 64;

/// Kernel cap on segments per GSO super-datagram (`UDP_MAX_SEGMENTS`).
const MAX_GSO_SEGMENTS: usize = 64;

/// Byte cap per GSO super-datagram, held under the 65,507-byte UDP
/// payload limit with margin.
const MAX_GSO_BYTES: usize = 65_000;

/// Largest possible UDP payload — the pool buffer size GRO needs, since
/// a coalesced super-datagram can be this big.
const MAX_UDP_PAYLOAD: usize = 65_507;

/// How a receive-loop should react to an `io::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvDisposition {
    /// `EINTR`: retry immediately, nothing happened.
    Retry,
    /// `WouldBlock`/`TimedOut`: the read timeout expired with no traffic —
    /// the only errors allowed to end a session.
    SessionIdle,
    /// Anything else (e.g. ICMP-reflected `ECONNREFUSED` on a connected
    /// UDP socket): log, count, keep receiving.
    Transient,
}

/// Classifies a receive error for a live session loop.
pub fn classify_recv_error(err: &io::Error) -> RecvDisposition {
    match err.kind() {
        io::ErrorKind::Interrupted => RecvDisposition::Retry,
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RecvDisposition::SessionIdle,
        _ => RecvDisposition::Transient,
    }
}

/// Which syscall strategy an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `sendmmsg`/`recvmmsg` bursts (Linux only; falls back to
    /// [`Backend::Portable`] elsewhere at the call site).
    Batched,
    /// A loop of plain `send`/`recv` calls — works on any platform.
    Portable,
}

impl Backend {
    /// Picks the platform default, honouring `FEC_FORCE_WIRE`
    /// (`portable`/`fallback` forces the loop; `batched`/`mmsg` asks for
    /// bursts, granted only where the syscalls exist).
    pub fn detect() -> Backend {
        match std::env::var("FEC_FORCE_WIRE") {
            Ok(v) if matches!(v.to_ascii_lowercase().as_str(), "portable" | "fallback") => {
                Backend::Portable
            }
            _ => Backend::platform_default(),
        }
    }

    /// The best backend this platform supports.
    pub fn platform_default() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Batched
        } else {
            Backend::Portable
        }
    }

    /// Stable name for logs and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Batched => "batched",
            Backend::Portable => "portable",
        }
    }
}

/// Anything that accepts a burst of datagrams for transmission: the real
/// [`BatchSender`], or an impairment stage wrapping one (see
/// `fec-channel`'s `EmulatedSink`). Returns how many datagrams were
/// forwarded to the wire (an impairment stage reports survivors).
pub trait BurstSink {
    fn send_burst(&mut self, datagrams: &[&[u8]]) -> io::Result<usize>;
}

/// Burst sender over a connected UDP socket, with token-bucket pacing.
pub struct BatchSender {
    socket: UdpSocket,
    backend: Backend,
    pacer: Pacer,
    metrics: DirectionMetrics,
    #[cfg(target_os = "linux")]
    scratch: crate::sys::MmsgScratch,
    /// UDP GSO: when on, bursts of same-size datagrams are coalesced
    /// into super-datagrams the kernel segments late (or never, when the
    /// peer socket has GRO on — the loopback fast path).
    #[cfg(target_os = "linux")]
    gso_enabled: bool,
    /// The `UDP_SEGMENT` value currently set on the socket (0 = none).
    #[cfg(target_os = "linux")]
    gso_segment: usize,
}

impl BatchSender {
    /// Connects `socket` to `dest` and wraps it.
    pub fn connect(
        socket: UdpSocket,
        dest: SocketAddr,
        backend: Backend,
        pacer: Pacer,
    ) -> io::Result<BatchSender> {
        socket.connect(dest)?;
        Ok(BatchSender::from_connected(socket, backend, pacer))
    }

    /// Wraps an already-connected socket.
    pub fn from_connected(socket: UdpSocket, backend: Backend, pacer: Pacer) -> BatchSender {
        BatchSender {
            socket,
            backend,
            pacer,
            metrics: DirectionMetrics::noop(),
            #[cfg(target_os = "linux")]
            scratch: crate::sys::MmsgScratch::new(),
            #[cfg(target_os = "linux")]
            gso_enabled: false,
            #[cfg(target_os = "linux")]
            gso_segment: 0,
        }
    }

    /// Opportunistically enables UDP GSO (`UDP_SEGMENT`): subsequent
    /// bursts coalesce runs of equal-size datagrams into super-datagrams
    /// that traverse the kernel once and are segmented at the very end —
    /// the wire format is unchanged. Errors (and stays off) on kernels
    /// without UDP GSO and on the portable backend (which must behave
    /// exactly like the non-Linux fallback, where GSO does not exist);
    /// callers typically ignore the result.
    pub fn enable_gso(&mut self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            if self.backend != Backend::Batched {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "UDP GSO needs the batched backend",
                ));
            }
            // `UDP_SEGMENT = 0` is a valid no-op set: it proves kernel
            // support without committing to a segment size (each burst
            // picks its own).
            crate::sys::set_udp_segment(&self.socket, 0)?;
            self.gso_enabled = true;
            self.gso_segment = 0;
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "UDP GSO is Linux-only",
        ))
    }

    /// Whether GSO coalescing is active.
    pub fn gso_active(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            self.gso_enabled
        }
        #[cfg(not(target_os = "linux"))]
        false
    }

    /// Registers send-side engine metrics.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = DirectionMetrics::attach(registry, "send");
    }

    /// The underlying socket (e.g. for reading the local address).
    pub fn socket(&self) -> &UdpSocket {
        &self.socket
    }

    /// The backend actually in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Replaces the pacing policy.
    pub fn set_pacer(&mut self, pacer: Pacer) {
        self.pacer = pacer;
    }

    /// Sends every datagram, pacing and chunking into [`MAX_BURST`]
    /// syscall bursts; blocks until all are handed to the kernel.
    pub fn send_burst(&mut self, datagrams: &[&[u8]]) -> io::Result<usize> {
        let mut sent = 0usize;
        for chunk in datagrams.chunks(MAX_BURST) {
            self.pacer.acquire(chunk.len() as u32);
            sent += self.send_chunk(chunk)?;
        }
        Ok(sent)
    }

    fn send_chunk(&mut self, chunk: &[&[u8]]) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        {
            if self.gso_enabled {
                return self.send_chunk_gso(chunk);
            }
            if self.backend == Backend::Batched {
                return self.send_wire_mmsg(chunk, chunk.len());
            }
        }
        self.send_wire_portable(chunk, chunk.len())
    }

    /// Coalesces the chunk into GSO super-datagrams — runs of
    /// `seg`-size datagrams (the last of a run may be shorter) packed
    /// nose to tail — and ships each same-`seg` run of super-datagrams
    /// through the wire path. The kernel re-segments on the way out, so
    /// the peer sees the identical datagram sequence.
    #[cfg(target_os = "linux")]
    fn send_chunk_gso(&mut self, chunk: &[&[u8]]) -> io::Result<usize> {
        struct Group {
            buf: Vec<u8>,
            seg: usize,
            count: usize,
            /// Closed once a shorter-than-`seg` datagram lands (it can
            /// only be the final segment).
            open: bool,
        }
        let mut groups: Vec<Group> = Vec::new();
        for dg in chunk {
            let joined = match groups.last_mut() {
                Some(g)
                    if g.open
                        && dg.len() <= g.seg
                        && g.count < MAX_GSO_SEGMENTS
                        && g.buf.len() + dg.len() <= MAX_GSO_BYTES =>
                {
                    g.buf.extend_from_slice(dg);
                    g.count += 1;
                    if dg.len() < g.seg {
                        g.open = false;
                    }
                    true
                }
                _ => false,
            };
            if !joined {
                groups.push(Group {
                    buf: dg.to_vec(),
                    seg: dg.len().max(1),
                    count: 1,
                    open: !dg.is_empty(),
                });
            }
        }
        let mut i = 0;
        while i < groups.len() {
            let seg = match groups.get(i) {
                Some(g) => g.seg,
                None => break,
            };
            let mut j = i + 1;
            while groups.get(j).is_some_and(|g| g.seg == seg) {
                j += 1;
            }
            let run = groups.get(i..j).unwrap_or_default();
            self.ensure_gso_segment(seg)?;
            let refs: Vec<&[u8]> = run.iter().map(|g| g.buf.as_slice()).collect();
            let logical: usize = run.iter().map(|g| g.count).sum();
            // GSO only enables on the batched backend, so the run always
            // goes out as one `sendmmsg` of super-datagrams.
            self.send_wire_mmsg(&refs, logical)?;
            i = j;
        }
        Ok(chunk.len())
    }

    /// Points `UDP_SEGMENT` at `seg` if it is not already there (one
    /// cheap setsockopt per size change; uniform traffic pays once).
    #[cfg(target_os = "linux")]
    fn ensure_gso_segment(&mut self, seg: usize) -> io::Result<()> {
        if self.gso_segment != seg {
            let clamped = seg.min(u16::MAX as usize) as u16;
            crate::sys::set_udp_segment(&self.socket, clamped)?;
            self.gso_segment = seg;
        }
        Ok(())
    }

    /// One mmsg pass over `bufs` (wire messages — possibly GSO
    /// super-datagrams carrying `logical` datagrams between them).
    #[cfg(target_os = "linux")]
    fn send_wire_mmsg(&mut self, bufs: &[&[u8]], logical: usize) -> io::Result<usize> {
        let mut offset = 0usize;
        let mut syscalls = 0u64;
        let mut bytes = 0usize;
        while offset < bufs.len() {
            let rest = match bufs.get(offset..) {
                Some(rest) => rest,
                None => break,
            };
            match crate::sys::send_burst(&self.socket, &mut self.scratch, rest) {
                Ok(n) => {
                    syscalls += 1;
                    bytes += rest.iter().take(n).map(|d| d.len()).sum::<usize>();
                    offset += n.max(1);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Socket buffer full: brief backoff, then push the rest.
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => return Err(e),
            }
        }
        self.metrics.record(logical, bytes, syscalls);
        Ok(logical)
    }

    fn send_wire_portable(&mut self, bufs: &[&[u8]], logical: usize) -> io::Result<usize> {
        let mut bytes = 0usize;
        let mut syscalls = 0u64;
        for dg in bufs {
            loop {
                match self.socket.send(dg) {
                    Ok(_) => {
                        syscalls += 1;
                        bytes += dg.len();
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.metrics.record(logical, bytes, syscalls);
        Ok(logical)
    }
}

impl BurstSink for BatchSender {
    fn send_burst(&mut self, datagrams: &[&[u8]]) -> io::Result<usize> {
        BatchSender::send_burst(self, datagrams)
    }
}

/// Burst receiver: one syscall drains up to [`MAX_BURST`] datagrams into
/// pooled buffers. Keeps a pre-checked-out ring of buffers so a burst
/// costs one pool lock, not one per datagram.
pub struct BatchReceiver {
    socket: UdpSocket,
    backend: Backend,
    pool: BufferPool,
    ready: Vec<PoolBuf>,
    metrics: DirectionMetrics,
    #[cfg(target_os = "linux")]
    scratch: crate::sys::MmsgScratch,
    /// UDP GRO: when on, the kernel may deliver bursts of same-size
    /// datagrams coalesced; the engine splits them back apart using the
    /// per-message segment size from the control message.
    #[cfg(target_os = "linux")]
    gro_enabled: bool,
}

impl BatchReceiver {
    /// Wraps a bound socket. Blocking behaviour (and any read timeout)
    /// stays whatever the caller configured on `socket`.
    pub fn new(socket: UdpSocket, pool: BufferPool, backend: Backend) -> BatchReceiver {
        BatchReceiver {
            socket,
            backend,
            pool,
            ready: Vec::new(),
            metrics: DirectionMetrics::noop(),
            #[cfg(target_os = "linux")]
            scratch: crate::sys::MmsgScratch::new(),
            #[cfg(target_os = "linux")]
            gro_enabled: false,
        }
    }

    /// Opportunistically enables UDP GRO (`UDP_GRO`): bursts of
    /// same-size datagrams from a GSO sender may then arrive as one
    /// coalesced super-datagram — one kernel traversal — which the
    /// engine splits back into the identical logical datagrams. Needs
    /// the batched backend (segment sizes arrive as control messages)
    /// and pool buffers big enough for a full coalesced payload; errors
    /// (and stays off) on kernels without UDP GRO.
    ///
    /// Note: with GRO on, `recv_burst(max)` bounds *wire messages*, so
    /// more than `max` logical datagrams may be returned.
    pub fn enable_gro(&mut self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            if self.backend != Backend::Batched {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "UDP GRO needs the batched backend",
                ));
            }
            if self.pool.buf_capacity() < MAX_UDP_PAYLOAD {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "UDP GRO needs pool buffers >= 65507 bytes",
                ));
            }
            crate::sys::enable_udp_gro(&self.socket)?;
            self.gro_enabled = true;
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "UDP GRO is Linux-only",
        ))
    }

    /// Whether GRO splitting is active.
    pub fn gro_active(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            self.gro_enabled
        }
        #[cfg(not(target_os = "linux"))]
        false
    }

    /// Registers recv-side engine metrics.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = DirectionMetrics::attach(registry, "recv");
    }

    /// The underlying socket.
    pub fn socket(&self) -> &UdpSocket {
        &self.socket
    }

    /// The backend actually in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Best-effort kernel receive-buffer bump (Linux only; no-op
    /// elsewhere). Deep kernel queues are what make bursts big.
    pub fn request_recv_buffer(&self, bytes: usize) {
        #[cfg(target_os = "linux")]
        {
            let clamped = bytes.min(i32::MAX as usize) as i32;
            let _ = crate::sys::set_recv_buffer(&self.socket, clamped);
        }
        #[cfg(not(target_os = "linux"))]
        let _ = bytes;
    }

    /// Blocks for the first datagram (honouring the socket read timeout),
    /// then drains whatever else is queued — one burst, at most `max`
    /// datagrams. Errors propagate raw so loops can route them through
    /// [`classify_recv_error`].
    pub fn recv_burst(&mut self, max: usize) -> io::Result<Vec<PoolBuf>> {
        self.recv_inner(max, false)
    }

    /// Non-blocking poll: `Ok(vec![])` when nothing is queued (a
    /// would-block or interrupted poll is "nothing", not an error).
    pub fn try_recv_burst(&mut self, max: usize) -> io::Result<Vec<PoolBuf>> {
        match self.recv_inner(max, true) {
            Ok(bufs) => Ok(bufs),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Vec::new())
            }
            Err(e) => Err(e),
        }
    }

    /// Non-blocking address-aware poll for control-plane sockets:
    /// drains up to `max` queued datagrams together with their source
    /// addresses (`Ok(vec![])` when nothing is queued).
    ///
    /// The data plane never needs peer addresses, so the batched
    /// `recvmmsg` path deliberately skips `msg_name` bookkeeping; this
    /// poll takes one `recv_from` syscall per datagram instead. That
    /// trade is right for feedback traffic specifically because digest
    /// suppression keeps the aggregate report rate O(log n) in the
    /// receiver population — the stream this exists to serve is the one
    /// stream designed never to be syscall-bound.
    pub fn try_recv_burst_from(&mut self, max: usize) -> io::Result<Vec<(PoolBuf, SocketAddr)>> {
        let n = max.clamp(1, MAX_BURST);
        if self.ready.len() < n {
            let need = n - self.ready.len();
            self.ready.extend(self.pool.take_many(need));
        }
        self.socket.set_nonblocking(true)?;
        let mut out: Vec<(PoolBuf, SocketAddr)> = Vec::new();
        let mut bytes = 0usize;
        while out.len() < n {
            let res = match self.ready.first_mut() {
                Some(buf) => self.socket.recv_from(buf.spare_mut()),
                None => break,
            };
            match res {
                Ok((len, src)) => {
                    let mut buf = self.ready.remove(0);
                    buf.set_len(len);
                    bytes += len;
                    out.push((buf, src));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    break;
                }
                Err(e) => {
                    let _ = self.socket.set_nonblocking(false);
                    return Err(e);
                }
            }
        }
        let _ = self.socket.set_nonblocking(false);
        if out.is_empty() {
            self.metrics.record_empty_syscall();
        } else {
            // One syscall per datagram, plus the final would-block probe.
            self.metrics.record(out.len(), bytes, out.len() as u64);
        }
        Ok(out)
    }

    fn recv_inner(&mut self, max: usize, nonblocking: bool) -> io::Result<Vec<PoolBuf>> {
        let n = max.clamp(1, MAX_BURST);
        if self.ready.len() < n {
            let need = n - self.ready.len();
            self.ready.extend(self.pool.take_many(need));
        }
        #[cfg(target_os = "linux")]
        if self.backend == Backend::Batched {
            return self.recv_mmsg(n, nonblocking);
        }
        self.recv_portable(n, nonblocking)
    }

    #[cfg(target_os = "linux")]
    fn recv_mmsg(&mut self, n: usize, nonblocking: bool) -> io::Result<Vec<PoolBuf>> {
        let mut lens = [0usize; MAX_BURST];
        let got = {
            let mut slices: Vec<&mut [u8]> = self
                .ready
                .iter_mut()
                .take(n)
                .map(|b| b.spare_mut())
                .collect();
            match crate::sys::recv_burst(
                &self.socket,
                &mut self.scratch,
                &mut slices,
                &mut lens,
                nonblocking,
                self.gro_enabled,
            ) {
                Ok(got) => got,
                Err(e) => {
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) {
                        self.metrics.record_empty_syscall();
                    }
                    return Err(e);
                }
            }
        };
        let mut out: Vec<PoolBuf> = self.ready.drain(..got).collect();
        let mut bytes = 0usize;
        for (i, buf) in out.iter_mut().enumerate() {
            let len = lens.get(i).copied().unwrap_or(0);
            buf.set_len(len);
            bytes += len;
        }
        if self.gro_enabled {
            // Split coalesced super-datagrams back into their logical
            // datagrams using the kernel-reported segment size.
            let wire = std::mem::take(&mut out);
            for (i, buf) in wire.into_iter().enumerate() {
                match self.scratch.gro_segment(i) {
                    Some(seg) if buf.len() > seg => {
                        for part in buf.chunks(seg) {
                            out.push(self.pool.buf_from(part));
                        }
                    }
                    _ => out.push(buf),
                }
            }
        }
        self.metrics.record(out.len(), bytes, 1);
        Ok(out)
    }

    fn recv_portable(&mut self, n: usize, nonblocking: bool) -> io::Result<Vec<PoolBuf>> {
        // First datagram: blocking (unless asked not to), honouring the
        // socket's read timeout.
        if nonblocking {
            self.socket.set_nonblocking(true)?;
        }
        let first = loop {
            let res = match self.ready.first_mut() {
                Some(buf) => self.socket.recv(buf.spare_mut()),
                None => break Err(io::Error::from(io::ErrorKind::WouldBlock)),
            };
            match res {
                Ok(len) => break Ok(len),
                Err(e) if e.kind() == io::ErrorKind::Interrupted && !nonblocking => continue,
                Err(e) => break Err(e),
            }
        };
        let first_len = match first {
            Ok(len) => len,
            Err(e) => {
                if nonblocking {
                    let _ = self.socket.set_nonblocking(false);
                }
                self.metrics.record_empty_syscall();
                return Err(e);
            }
        };
        let mut lens = vec![first_len];
        // Opportunistic non-blocking drain of whatever else is queued.
        if !nonblocking {
            let _ = self.socket.set_nonblocking(true);
        }
        let mut syscalls = 1u64;
        while lens.len() < n {
            let res = match self.ready.get_mut(lens.len()) {
                Some(buf) => self.socket.recv(buf.spare_mut()),
                None => break,
            };
            syscalls += 1;
            match res {
                Ok(len) => lens.push(len),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        let _ = self.socket.set_nonblocking(false);
        let got = lens.len();
        let mut out: Vec<PoolBuf> = self.ready.drain(..got).collect();
        let mut bytes = 0usize;
        for (buf, len) in out.iter_mut().zip(lens) {
            buf.set_len(len);
            bytes += len;
        }
        self.metrics.record(got, bytes, syscalls);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_drain_contract() {
        use io::ErrorKind::*;
        assert_eq!(
            classify_recv_error(&io::Error::from(Interrupted)),
            RecvDisposition::Retry
        );
        assert_eq!(
            classify_recv_error(&io::Error::from(WouldBlock)),
            RecvDisposition::SessionIdle
        );
        assert_eq!(
            classify_recv_error(&io::Error::from(TimedOut)),
            RecvDisposition::SessionIdle
        );
        assert_eq!(
            classify_recv_error(&io::Error::from(ConnectionRefused)),
            RecvDisposition::Transient
        );
    }

    #[test]
    fn backend_detection_honours_force_portable() {
        assert_eq!(Backend::Portable.name(), "portable");
        assert_eq!(Backend::Batched.name(), "batched");
        // Platform default on Linux is batched.
        if cfg!(target_os = "linux") {
            assert_eq!(Backend::platform_default(), Backend::Batched);
        }
    }
}
