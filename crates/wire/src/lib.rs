//! `fec-wire` — the batched datagram engine under every live UDP path.
//!
//! Three pieces, composable but independently usable:
//!
//! * [`pool`] — a reusable buffer pool ([`BufferPool`]/[`PoolBuf`]) that
//!   kills the per-datagram `to_vec()` allocation on the receive drain.
//! * [`pacing`] — token-bucket pacing ([`Pacer`]/[`TokenBucket`]) for the
//!   send path, replacing per-datagram sleeps.
//! * [`engine`] — [`BatchSender`]/[`BatchReceiver`]: `sendmmsg`/`recvmmsg`
//!   bursts on Linux, a portable loop-of-`recv` fallback behind the same
//!   API (forceable with `FEC_FORCE_WIRE=portable`), and the
//!   [`classify_recv_error`] contract live loops use to survive transient
//!   socket errors.
//!
//! The `unsafe` FFI is confined to the Linux-only private `sys` module
//! (audited by `fec-audit`); everything above it is safe Rust. On
//! capable kernels the engine opportunistically turns on UDP GSO/GRO
//! ([`BatchSender::enable_gso`]/[`BatchReceiver::enable_gro`]), which
//! coalesces runs of equal-size datagrams into super-datagrams without
//! changing the bytes a peer observes.

pub mod engine;
pub(crate) mod metrics;
pub mod pacing;
pub mod pool;
#[cfg(target_os = "linux")]
mod sys;

pub use engine::{
    classify_recv_error, Backend, BatchReceiver, BatchSender, BurstSink, RecvDisposition, MAX_BURST,
};
pub use pacing::{Pacer, PacerSet, TokenBucket};
pub use pool::{BufferPool, PoolBuf, DEFAULT_BUF_CAPACITY, DEFAULT_POOL_CAPACITY};
