//! Telemetry bundle for the wire engine: syscall and datagram counters
//! plus a batch-size histogram, labelled by direction (`op="send"` /
//! `op="recv"`). The whole bundle defaults to no-op handles so an
//! unattached engine pays one predicted branch per update.

use fec_telemetry::{Counter, Histogram, Registry};

/// Histogram bounds for datagrams-per-syscall: powers of two up to the
/// engine's burst cap.
pub const BATCH_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 64.0];

/// Per-direction engine metrics.
#[derive(Clone)]
pub(crate) struct DirectionMetrics {
    syscalls: Counter,
    datagrams: Counter,
    bytes: Counter,
    batch: Histogram,
}

impl DirectionMetrics {
    /// Inert handles (the default until `attach_telemetry`).
    pub fn noop() -> DirectionMetrics {
        DirectionMetrics {
            syscalls: Counter::noop(),
            datagrams: Counter::noop(),
            bytes: Counter::noop(),
            batch: Histogram::noop(),
        }
    }

    /// Registers the `op`-labelled series.
    pub fn attach(registry: &Registry, op: &str) -> DirectionMetrics {
        let labels = [("op", op)];
        DirectionMetrics {
            syscalls: registry.counter_with(
                "fec_wire_syscalls_total",
                "Datagram-path syscalls issued by the wire engine",
                &labels,
            ),
            datagrams: registry.counter_with(
                "fec_wire_datagrams_total",
                "Datagrams moved by the wire engine",
                &labels,
            ),
            bytes: registry.counter_with(
                "fec_wire_bytes_total",
                "Payload bytes moved by the wire engine",
                &labels,
            ),
            batch: registry.histogram_with(
                "fec_wire_batch_size",
                "Datagrams moved per syscall",
                &BATCH_BOUNDS,
                &labels,
            ),
        }
    }

    /// Records one burst: `datagrams` moved in `syscalls` syscalls.
    pub fn record(&self, datagrams: usize, bytes: usize, syscalls: u64) {
        self.syscalls.add(syscalls);
        self.datagrams.add(datagrams as u64);
        self.bytes.add(bytes as u64);
        if syscalls > 0 {
            self.batch.observe(datagrams as f64 / syscalls as f64);
        }
    }

    /// Records a syscall that moved nothing (e.g. a poll that came back
    /// empty) so syscall totals stay honest.
    pub fn record_empty_syscall(&self) {
        self.syscalls.inc();
    }
}
