//! Token-bucket pacing for the send path.
//!
//! Replaces the CLI's ad-hoc `Pace` struct (sleep N µs per datagram, or a
//! blanket 300 µs nap every 64 datagrams) with a standard token bucket:
//! tokens accrue at `rate` per second up to a `burst` cap, and each
//! datagram spends one. Bursts up to the cap go out back-to-back — which
//! is exactly what `sendmmsg` wants — while the long-run rate stays
//! bounded. The paper's schedules (§5) assume the sender can actually
//! emit at the planned rate; the bucket is what enforces that rate
//! without per-datagram sleeps dominating the hot path.
//!
//! The arithmetic core ([`TokenBucket::wait_for`]) takes an explicit
//! `Instant` so unit tests drive it with a synthetic clock; the blocking
//! wrapper ([`Pacer::acquire`]) sleeps on the real one.

use std::time::{Duration, Instant};

/// Tokens-per-second bucket with a burst cap.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Tokens added per second.
    rate: f64,
    /// Maximum tokens the bucket holds.
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/s, holding at most `burst`.
    /// Starts full, so an initial burst goes out immediately.
    pub fn new(rate: f64, burst: u32) -> TokenBucket {
        let burst = f64::from(burst.max(1));
        TokenBucket {
            rate: rate.max(1e-6),
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// Refills from elapsed time, then spends `n` tokens *immediately*,
    /// letting the balance go negative (debt). Returns `Duration::ZERO`
    /// when the balance stayed non-negative, else the sleep that pays the
    /// debt off. Granting debt (rather than refusing) means a single
    /// request larger than the burst cap still completes — it just sleeps
    /// proportionally afterwards — so the long-run rate stays bounded
    /// while bursts up to the cap go out back-to-back.
    /// Deterministic given `now` — the unit-testable core.
    pub fn wait_for(&mut self, n: u32, now: Instant) -> Duration {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.tokens -= f64::from(n);
        if self.tokens >= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(-self.tokens / self.rate)
    }

    /// Tokens/s this bucket refills at.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// A pacing policy: unlimited, or a token bucket.
#[derive(Debug, Clone)]
pub enum Pacer {
    /// No pacing: send as fast as the socket accepts.
    Unlimited,
    /// Token-bucket pacing.
    Bucket(TokenBucket),
}

impl Pacer {
    /// No pacing.
    pub fn unlimited() -> Pacer {
        Pacer::Unlimited
    }

    /// A bucket at `rate` datagrams/s with a `burst` cap.
    pub fn rate(rate: f64, burst: u32) -> Pacer {
        Pacer::Bucket(TokenBucket::new(rate, burst))
    }

    /// Compatibility constructor for the CLI's `--pace N` flag (N µs per
    /// datagram): `N = 0` means unlimited, otherwise a bucket at
    /// `1e6 / N` datagrams/s with a one-syscall burst allowance.
    pub fn per_datagram_micros(micros: u64) -> Pacer {
        if micros == 0 {
            Pacer::Unlimited
        } else {
            Pacer::rate(1e6 / micros as f64, 64)
        }
    }

    /// Takes `n` tokens, sleeping off any debt (no-op when unlimited).
    /// One call per burst: the grant is immediate, the sleep restores the
    /// long-run rate.
    pub fn acquire(&mut self, n: u32) {
        if let Pacer::Bucket(bucket) = self {
            let wait = bucket.wait_for(n, Instant::now());
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }

    /// True when this pacer never blocks.
    pub fn is_unlimited(&self) -> bool {
        matches!(self, Pacer::Unlimited)
    }
}

/// One pacer per bonded path, reconfigurable in place when the bond's
/// share allocation moves.
///
/// A bonded sender owns one socket per path and must bound each path's
/// rate independently — a share is a promise to *that* link, and paths
/// share nothing but the aggregate budget. `PacerSet` keeps the per-path
/// buckets together so a share re-allocation is one
/// [`reallocate`](Self::reallocate) call: paths whose share stays
/// positive get a fresh bucket at the new rate, paths squeezed to zero
/// (outage) stop being grantable at all.
#[derive(Debug, Clone)]
pub struct PacerSet {
    pacers: Vec<Option<Pacer>>,
    burst: u32,
}

impl PacerSet {
    /// A set of `paths` unlimited pacers (no shaping until the first
    /// [`reallocate`](Self::reallocate)). `burst` caps each path's
    /// back-to-back burst once rates are applied.
    pub fn unlimited(paths: usize, burst: u32) -> PacerSet {
        PacerSet {
            pacers: (0..paths).map(|_| Some(Pacer::Unlimited)).collect(),
            burst,
        }
    }

    /// A set shaped to `shares` (datagrams/s per path) from the start.
    pub fn from_shares(shares: &[f64], burst: u32) -> PacerSet {
        let mut set = PacerSet {
            pacers: vec![None; shares.len()],
            burst,
        };
        set.reallocate(shares);
        set
    }

    /// Number of paths in the set.
    pub fn len(&self) -> usize {
        self.pacers.len()
    }

    /// True when the set has no paths.
    pub fn is_empty(&self) -> bool {
        self.pacers.is_empty()
    }

    /// Applies a new share allocation: path `p` is re-bucketed at
    /// `shares[p]` datagrams/s, disabled entirely when its share is zero
    /// (or not finite), and left untouched when the share did not move
    /// materially (so accumulated bucket state survives small wobbles).
    /// Extra shares grow the set; missing trailing shares disable those
    /// paths.
    pub fn reallocate(&mut self, shares: &[f64]) {
        if shares.len() > self.pacers.len() {
            self.pacers.resize(shares.len(), None);
        }
        for (p, pacer) in self.pacers.iter_mut().enumerate() {
            let share = shares.get(p).copied().unwrap_or(0.0);
            if !share.is_finite() || share <= 0.0 {
                *pacer = None;
                continue;
            }
            let unchanged = matches!(
                pacer,
                Some(Pacer::Bucket(b)) if (b.rate() - share).abs() <= b.rate() * 1e-9
            );
            if !unchanged {
                *pacer = Some(Pacer::rate(share, self.burst));
            }
        }
    }

    /// True when path `p` currently has a positive share.
    pub fn is_enabled(&self, path: usize) -> bool {
        matches!(self.pacers.get(path), Some(Some(_)))
    }

    /// Takes `n` tokens on path `p`, sleeping off any debt. Returns
    /// false (without sleeping) when the path is disabled or unknown —
    /// the caller should route the burst elsewhere.
    pub fn acquire(&mut self, path: usize, n: u32) -> bool {
        match self.pacers.get_mut(path) {
            Some(Some(pacer)) => {
                pacer.acquire(n);
                true
            }
            _ => false,
        }
    }

    /// The configured rate of path `p` (None when disabled/unlimited).
    pub fn rate(&self, path: usize) -> Option<f64> {
        match self.pacers.get(path) {
            Some(Some(Pacer::Bucket(b))) => Some(b.rate()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_burst_is_free() {
        let mut b = TokenBucket::new(1000.0, 64);
        let t0 = Instant::now();
        assert_eq!(b.wait_for(64, t0), Duration::ZERO);
        // Bucket drained: the next 10 must wait 10 ms at 1000/s.
        let wait = b.wait_for(10, t0);
        assert!((wait.as_secs_f64() - 0.010).abs() < 1e-9, "{wait:?}");
    }

    #[test]
    fn refill_accrues_with_time() {
        let mut b = TokenBucket::new(1000.0, 64);
        let t0 = Instant::now();
        assert_eq!(b.wait_for(64, t0), Duration::ZERO);
        // 32 ms later, 32 tokens have accrued.
        let t1 = t0 + Duration::from_millis(32);
        assert_eq!(b.wait_for(32, t1), Duration::ZERO);
        assert!(b.wait_for(1, t1) > Duration::ZERO);
    }

    #[test]
    fn burst_caps_accrual() {
        let mut b = TokenBucket::new(1_000_000.0, 8);
        let t0 = Instant::now();
        assert_eq!(b.wait_for(8, t0), Duration::ZERO);
        // An hour of idle still only buys `burst` tokens.
        let t1 = t0 + Duration::from_secs(3600);
        assert_eq!(b.wait_for(8, t1), Duration::ZERO);
        assert!(b.wait_for(1, t1) > Duration::ZERO);
    }

    #[test]
    fn long_run_rate_is_bounded() {
        let mut b = TokenBucket::new(100.0, 4);
        let t0 = Instant::now();
        let mut now = t0;
        let mut total_wait = Duration::ZERO;
        for _ in 0..50 {
            // Mimic `Pacer::acquire`: one grant, sleep off the debt.
            let w = b.wait_for(1, now);
            total_wait += w;
            now += w;
        }
        // 50 datagrams at 100/s with a 4-burst head start: ≥ 0.46 s of
        // enforced waiting (46 paced sends at 10 ms each).
        assert!(total_wait.as_secs_f64() >= 0.459, "{total_wait:?}");
    }

    #[test]
    fn pacer_set_tracks_shares() {
        let mut set = PacerSet::from_shares(&[1000.0, 0.0, 500.0], 64);
        assert_eq!(set.len(), 3);
        assert!(set.is_enabled(0) && !set.is_enabled(1) && set.is_enabled(2));
        assert_eq!(set.rate(0), Some(1000.0));
        assert!(!set.acquire(1, 8), "zero-share path refuses grants");
        assert!(set.acquire(0, 8));
        // Re-allocation: path 0 squeezed out, path 1 revived, NaN is a
        // disable, unknown paths refuse.
        set.reallocate(&[0.0, 250.0, f64::NAN]);
        assert!(!set.is_enabled(0) && set.is_enabled(1) && !set.is_enabled(2));
        assert_eq!(set.rate(1), Some(250.0));
        assert!(!set.acquire(9, 1), "unknown path refuses grants");
        // Growing the set adds paths.
        set.reallocate(&[0.0, 250.0, 0.0, 100.0]);
        assert_eq!(set.len(), 4);
        assert!(set.is_enabled(3));
    }

    #[test]
    fn pacer_set_unchanged_share_keeps_bucket_state() {
        let mut set = PacerSet::from_shares(&[100.0], 4);
        // Drain the initial burst, then re-apply the same share: the
        // bucket must keep its debt (a fresh bucket would refill it).
        assert!(set.acquire(0, 4));
        set.reallocate(&[100.0]);
        match set.pacers[0].as_mut().unwrap() {
            Pacer::Bucket(b) => {
                assert!(b.wait_for(1, Instant::now()) > Duration::ZERO)
            }
            Pacer::Unlimited => panic!("expected bucket"),
        }
    }

    #[test]
    fn pace_flag_compat() {
        assert!(Pacer::per_datagram_micros(0).is_unlimited());
        match Pacer::per_datagram_micros(1000) {
            Pacer::Bucket(b) => assert!((b.rate() - 1000.0).abs() < 1e-9),
            Pacer::Unlimited => panic!("expected bucket"),
        }
    }
}
