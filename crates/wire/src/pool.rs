//! A reusable datagram buffer pool.
//!
//! The receive hot path used to allocate a fresh `Vec<u8>` per datagram
//! (`buf[..len].to_vec()`) just to move bytes across the drain-thread
//! channel. [`BufferPool`] replaces that with a free list of fixed-size
//! buffers: `take()` pops one (or allocates on a miss), [`PoolBuf`]'s
//! `Drop` pushes it back. Buffers are pre-zeroed to their full capacity so
//! the kernel can scatter into fully initialised storage — no `unsafe`,
//! no uninitialised reads.
//!
//! The pool is `Clone` (an `Arc` handle) and thread-safe: the drain thread
//! takes buffers, the decode thread drops them, and both touch one mutex
//! for a push/pop of a pointer-sized element. Telemetry (hit/miss
//! counters) attaches lazily via [`BufferPool::attach_telemetry`].

use std::sync::{Arc, Mutex, MutexGuard};

use fec_telemetry::{Counter, Registry};

/// Default datagram capacity: comfortably above any UDP payload this
/// workspace emits (symbols are ≤ 64 KiB in theory, ≤ ~1500 B in practice,
/// but the CLI historically drained into a 65536-byte scratch buffer).
pub const DEFAULT_BUF_CAPACITY: usize = 65536;

/// Default number of buffers retained on the free list.
pub const DEFAULT_POOL_CAPACITY: usize = 256;

struct State {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
    metrics: Option<PoolMetrics>,
}

#[derive(Clone)]
struct PoolMetrics {
    hits: Counter,
    misses: Counter,
}

struct Shared {
    state: Mutex<State>,
    /// Max buffers retained on the free list; excess returns are freed.
    retain: usize,
    /// Capacity (and initialised length) of every pooled buffer.
    buf_capacity: usize,
}

/// A thread-safe free list of fixed-size, fully-initialised byte buffers.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<Shared>,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    // A poisoned pool mutex only means another thread panicked mid-push;
    // the free list is a Vec of Vecs and is valid in every intermediate
    // state, so recover the guard instead of propagating the panic.
    match shared.state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl BufferPool {
    /// A pool with the default buffer size and retention.
    pub fn new() -> BufferPool {
        BufferPool::with_config(DEFAULT_BUF_CAPACITY, DEFAULT_POOL_CAPACITY)
    }

    /// A pool of `retain` buffers of `buf_capacity` bytes each.
    pub fn with_config(buf_capacity: usize, retain: usize) -> BufferPool {
        BufferPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    free: Vec::new(),
                    hits: 0,
                    misses: 0,
                    metrics: None,
                }),
                retain,
                buf_capacity: buf_capacity.max(1),
            }),
        }
    }

    /// Registers hit/miss counters and back-fills counts accrued so far.
    pub fn attach_telemetry(&self, registry: &Registry) {
        let metrics = PoolMetrics {
            hits: registry.counter_with(
                "fec_wire_pool_total",
                "Buffer pool requests by outcome",
                &[("outcome", "hit")],
            ),
            misses: registry.counter_with(
                "fec_wire_pool_total",
                "Buffer pool requests by outcome",
                &[("outcome", "miss")],
            ),
        };
        let mut state = lock(&self.shared);
        metrics.hits.add(state.hits);
        metrics.misses.add(state.misses);
        state.metrics = Some(metrics);
    }

    /// Pops a buffer from the free list (or allocates on a miss). The
    /// buffer is zero-length as seen through [`PoolBuf`] but its full
    /// capacity is initialised and reachable via `spare_mut`.
    pub fn take(&self) -> PoolBuf {
        let buf = {
            let mut state = lock(&self.shared);
            match state.free.pop() {
                Some(buf) => {
                    state.hits += 1;
                    if let Some(m) = &state.metrics {
                        m.hits.inc();
                    }
                    Some(buf)
                }
                None => {
                    state.misses += 1;
                    if let Some(m) = &state.metrics {
                        m.misses.inc();
                    }
                    None
                }
            }
        };
        let buf = buf.unwrap_or_else(|| vec![0u8; self.shared.buf_capacity]);
        PoolBuf {
            buf,
            len: 0,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Pops `n` buffers under a single lock, allocating any shortfall
    /// outside it. The engine refills its receive ring through this.
    pub fn take_many(&self, n: usize) -> Vec<PoolBuf> {
        let mut popped: Vec<Vec<u8>> = Vec::with_capacity(n);
        {
            let mut state = lock(&self.shared);
            while popped.len() < n {
                match state.free.pop() {
                    Some(buf) => popped.push(buf),
                    None => break,
                }
            }
            let hits = popped.len() as u64;
            let misses = (n - popped.len()) as u64;
            state.hits += hits;
            state.misses += misses;
            if let Some(m) = &state.metrics {
                m.hits.add(hits);
                m.misses.add(misses);
            }
        }
        let mut out: Vec<PoolBuf> = popped
            .into_iter()
            .map(|buf| PoolBuf {
                buf,
                len: 0,
                shared: Arc::clone(&self.shared),
            })
            .collect();
        while out.len() < n {
            out.push(PoolBuf {
                buf: vec![0u8; self.shared.buf_capacity],
                len: 0,
                shared: Arc::clone(&self.shared),
            });
        }
        out
    }

    /// A pooled buffer pre-filled with `bytes` (convenience for tests and
    /// scripted burst sources).
    pub fn buf_from(&self, bytes: &[u8]) -> PoolBuf {
        let mut buf = self.take();
        buf.copy_from(bytes);
        buf
    }

    /// The capacity every pooled buffer is initialised to.
    pub fn buf_capacity(&self) -> usize {
        self.shared.buf_capacity
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        let state = lock(&self.shared);
        (state.hits, state.misses)
    }

    /// Buffers currently idle on the free list.
    pub fn idle(&self) -> usize {
        lock(&self.shared).free.len()
    }
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new()
    }
}

/// A buffer checked out of a [`BufferPool`]; returns itself on drop.
///
/// Dereferences to the *valid prefix* (`..len`) — the portion a receive
/// actually filled — while `spare_mut` exposes the full initialised
/// capacity for the kernel to scatter into.
pub struct PoolBuf {
    buf: Vec<u8>,
    len: usize,
    shared: Arc<Shared>,
}

impl PoolBuf {
    /// The whole initialised capacity, for filling.
    pub fn spare_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Marks the first `len` bytes as valid (clamped to capacity).
    pub fn set_len(&mut self, len: usize) {
        self.len = len.min(self.buf.len());
    }

    /// Replaces the contents with `bytes` (clamped to capacity).
    pub fn copy_from(&mut self, bytes: &[u8]) {
        let n = bytes.len().min(self.buf.len());
        if let (Some(dst), Some(src)) = (self.buf.get_mut(..n), bytes.get(..n)) {
            dst.copy_from_slice(src);
        }
        self.len = n;
    }

    /// The valid prefix length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are valid.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for PoolBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.buf.get(..self.len).unwrap_or_default()
    }
}

impl AsRef<[u8]> for PoolBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for PoolBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolBuf({} bytes)", self.len)
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let mut state = lock(&self.shared);
        if state.free.len() < self.shared.retain {
            state.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_buffers() {
        let pool = BufferPool::with_config(1500, 4);
        {
            let mut b = pool.take();
            b.copy_from(b"hello");
            assert_eq!(&*b, b"hello");
        }
        assert_eq!(pool.idle(), 1);
        let _b = pool.take();
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BufferPool::with_config(64, 2);
        let bufs: Vec<PoolBuf> = (0..5).map(|_| pool.take()).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn set_len_clamps_and_deref_tracks() {
        let pool = BufferPool::with_config(8, 1);
        let mut b = pool.take();
        assert!(b.is_empty());
        b.spare_mut().fill(7);
        b.set_len(100);
        assert_eq!(b.len(), 8);
        assert_eq!(&*b, &[7u8; 8]);
    }

    #[test]
    fn telemetry_backfills() {
        let pool = BufferPool::with_config(64, 4);
        drop(pool.take()); // miss
        drop(pool.take()); // hit
        let registry = Registry::new();
        pool.attach_telemetry(&registry);
        drop(pool.take()); // hit, counted live
        let text = registry.render_prometheus();
        assert!(
            text.contains("fec_wire_pool_total{outcome=\"hit\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fec_wire_pool_total{outcome=\"miss\"} 1"),
            "{text}"
        );
    }
}
