//! Hand-rolled FFI for Linux `recvmmsg(2)` / `sendmmsg(2)` (and a
//! best-effort `SO_RCVBUF` bump).
//!
//! The workspace builds offline with no `libc` crate, so the three kernel
//! structs (`iovec`, `msghdr`, `mmsghdr`) are declared here with the
//! x86-64/AArch64 glibc layout: field names are irrelevant to the ABI,
//! only order, types and padding matter, and `#[repr(C)]` reproduces the
//! C padding (4 bytes after `namelen`, 4 after the trailing `flags`/`len`
//! fields) exactly.
//!
//! This module is the **only** place in the workspace outside the
//! `fec-gf256` SIMD kernels where `unsafe` is permitted (enforced by
//! `fec-audit`). Every call site keeps the invariants local: pointers
//! passed to the kernel come from caller-owned slices that outlive the
//! call, and `vlen` bounds the kernel's writes to what we allocated.

use std::io;
use std::net::UdpSocket;
use std::os::fd::AsRawFd;

/// `MSG_WAITFORONE`: `recvmmsg` blocks for the first datagram, then
/// returns whatever else is already queued without blocking again.
const MSG_WAITFORONE: i32 = 0x10000;

/// `MSG_DONTWAIT`: per-call non-blocking behaviour.
const MSG_DONTWAIT: i32 = 0x40;

/// `SOL_UDP` / `UDP_SEGMENT` / `UDP_GRO`: the UDP segmentation-offload
/// socket options (Linux ≥ 4.18 / 5.0). `UDP_SEGMENT` makes one send
/// carry many equal-size datagrams through the stack as a single skb;
/// `UDP_GRO` delivers such super-datagrams coalesced, with the segment
/// size attached as a control message.
const SOL_UDP: i32 = 17;
const UDP_SEGMENT: i32 = 103;
const UDP_GRO: i32 = 104;

/// Control-buffer bytes per message: `CMSG_SPACE(sizeof(int))` on 64-bit
/// (16-byte `cmsghdr` + 4-byte payload, padded to 8).
const CMSG_CAPACITY: usize = 24;

/// `struct iovec` — scatter/gather element.
#[repr(C)]
struct IoVec {
    base: *mut u8,
    len: usize,
}

/// `struct msghdr` — glibc layout (note `iovlen`/`controllen` are
/// `size_t`, not the POSIX `int`).
#[repr(C)]
struct MsgHdr {
    name: *mut core::ffi::c_void,
    namelen: u32,
    iov: *mut IoVec,
    iovlen: usize,
    control: *mut core::ffi::c_void,
    controllen: usize,
    flags: i32,
}

/// `struct mmsghdr` — one per datagram in a burst; the kernel writes the
/// received length into `len`.
#[repr(C)]
struct MMsgHdr {
    hdr: MsgHdr,
    len: u32,
}

extern "C" {
    fn recvmmsg(
        fd: i32,
        msgvec: *mut MMsgHdr,
        vlen: u32,
        flags: i32,
        timeout: *mut core::ffi::c_void,
    ) -> i32;
    fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const core::ffi::c_void,
        optlen: u32,
    ) -> i32;
}

/// Reusable per-engine scratch for the header arrays, so a burst syscall
/// allocates nothing after warm-up. The raw pointers inside are rebuilt
/// from live borrows on every call and never outlive it.
pub struct MmsgScratch {
    iovecs: Vec<IoVec>,
    hdrs: Vec<MMsgHdr>,
    controls: Vec<[u8; CMSG_CAPACITY]>,
}

// SAFETY: the raw pointers inside `iovecs`/`hdrs` are pure scratch: they
// are overwritten by `rebuild` from exclusively-borrowed buffers
// immediately before each syscall and never dereferenced between calls
// (stale pointers are unreachable — every syscall path rebuilds first).
// Moving the scratch to another thread therefore cannot alias anything,
// and the engine types holding it stay usable from a drain thread.
unsafe impl Send for MmsgScratch {}

impl MmsgScratch {
    pub fn new() -> MmsgScratch {
        MmsgScratch {
            iovecs: Vec::new(),
            hdrs: Vec::new(),
            controls: Vec::new(),
        }
    }

    /// Rebuilds the iovec/mmsghdr arrays over `n` buffers whose base
    /// pointers and lengths are supplied by `slot`. With `with_control`,
    /// each message also gets a [`CMSG_CAPACITY`]-byte control buffer so
    /// the kernel can report per-message ancillary data (the GRO segment
    /// size).
    fn rebuild(
        &mut self,
        n: usize,
        mut slot: impl FnMut(usize) -> (*mut u8, usize),
        with_control: bool,
    ) {
        self.iovecs.clear();
        self.hdrs.clear();
        self.iovecs.reserve(n);
        self.hdrs.reserve(n);
        for i in 0..n {
            let (base, len) = slot(i);
            self.iovecs.push(IoVec { base, len });
        }
        if with_control {
            self.controls.clear();
            self.controls.resize(n, [0u8; CMSG_CAPACITY]);
        }
        let iov_base = self.iovecs.as_mut_ptr();
        let ctl_base = self.controls.as_mut_ptr();
        for i in 0..n {
            let (control, controllen) = if with_control {
                // Same discipline as the iovec pointer below: in-bounds,
                // and the controls Vec is untouched until the syscall
                // returns.
                (ctl_base.wrapping_add(i).cast(), CMSG_CAPACITY)
            } else {
                (std::ptr::null_mut(), 0)
            };
            self.hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    name: std::ptr::null_mut(),
                    namelen: 0,
                    // `wrapping_add` keeps this safe code; `i < n` and the
                    // iovec Vec is not touched again until the syscall
                    // returns, so the pointer is in-bounds and stable.
                    iov: iov_base.wrapping_add(i),
                    iovlen: 1,
                    control,
                    controllen,
                    flags: 0,
                },
                len: 0,
            });
        }
    }

    /// The GRO segment size the kernel attached to message `i` of the
    /// last receive, if any: a `cmsghdr { SOL_UDP, UDP_GRO }` carrying an
    /// `int`. `None` for ordinary (uncoalesced) datagrams.
    pub fn gro_segment(&self, i: usize) -> Option<usize> {
        let hdr = self.hdrs.get(i)?;
        // The kernel rewrites `controllen` to the bytes it actually used;
        // CMSG_LEN(sizeof(int)) = 20 on 64-bit.
        if hdr.hdr.controllen < 20 {
            return None;
        }
        let buf = self.controls.get(i)?;
        let cmsg_len = usize::from_ne_bytes(buf.get(0..8)?.try_into().ok()?);
        let level = i32::from_ne_bytes(buf.get(8..12)?.try_into().ok()?);
        let kind = i32::from_ne_bytes(buf.get(12..16)?.try_into().ok()?);
        if cmsg_len < 20 || level != SOL_UDP || kind != UDP_GRO {
            return None;
        }
        let seg = i32::from_ne_bytes(buf.get(16..20)?.try_into().ok()?);
        (seg > 0).then_some(seg as usize)
    }
}

impl Default for MmsgScratch {
    fn default() -> MmsgScratch {
        MmsgScratch::new()
    }
}

/// One `recvmmsg` burst: waits for the first datagram (unless
/// `nonblocking`), then drains whatever else is queued, up to
/// `bufs.len()`. Received lengths land in `lens`; returns the datagram
/// count. The socket's `SO_RCVTIMEO` is honoured (`WouldBlock` on expiry).
pub fn recv_burst(
    socket: &UdpSocket,
    scratch: &mut MmsgScratch,
    bufs: &mut [&mut [u8]],
    lens: &mut [usize],
    nonblocking: bool,
    with_control: bool,
) -> io::Result<usize> {
    let n = bufs.len().min(lens.len());
    if n == 0 {
        return Ok(0);
    }
    scratch.rebuild(
        n,
        |i| match bufs.get_mut(i) {
            Some(b) => (b.as_mut_ptr(), b.len()),
            None => (std::ptr::null_mut(), 0),
        },
        with_control,
    );
    let flags = if nonblocking {
        MSG_WAITFORONE | MSG_DONTWAIT
    } else {
        MSG_WAITFORONE
    };
    // SAFETY: `scratch.hdrs` holds exactly `n` initialised mmsghdr records
    // and `vlen == n` bounds the kernel's writes to them. Each record's
    // single iovec points into a distinct caller-owned `&mut [u8]` that
    // lives across this call, with the slice's true length, so the kernel
    // scatters only into memory we exclusively borrow. `msg_name` is null
    // with zero length (no address capture); `msg_control` is either null
    // or points at a distinct `CMSG_CAPACITY`-byte element of
    // `scratch.controls` (sized per `rebuild`, untouched until return),
    // and the null timeout is permitted by recvmmsg(2).
    let rc = unsafe {
        recvmmsg(
            socket.as_raw_fd(),
            scratch.hdrs.as_mut_ptr(),
            n as u32,
            flags,
            std::ptr::null_mut(),
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let got = (rc as usize).min(n);
    for (i, hdr) in scratch.hdrs.iter().take(got).enumerate() {
        if let Some(slot) = lens.get_mut(i) {
            *slot = hdr.len as usize;
        }
    }
    Ok(got)
}

/// One `sendmmsg` burst on a **connected** socket. Returns how many of
/// `datagrams` the kernel accepted (callers loop on partial sends).
pub fn send_burst(
    socket: &UdpSocket,
    scratch: &mut MmsgScratch,
    datagrams: &[&[u8]],
) -> io::Result<usize> {
    let n = datagrams.len();
    if n == 0 {
        return Ok(0);
    }
    scratch.rebuild(
        n,
        |i| match datagrams.get(i) {
            // The kernel only *reads* through send iovecs; the cast to
            // `*mut` satisfies the shared struct layout and is never
            // written through.
            Some(d) => (d.as_ptr() as *mut u8, d.len()),
            None => (std::ptr::null_mut(), 0),
        },
        false,
    );
    // SAFETY: `scratch.hdrs` holds `n` initialised records with
    // `vlen == n`; each iovec points at a caller-provided `&[u8]` that
    // lives across the call and is only read by the kernel (sendmmsg does
    // not write through msg_iov; it writes per-message byte counts into
    // the mmsghdr array we own). The socket is connected, so null
    // `msg_name` is valid.
    let rc = unsafe { sendmmsg(socket.as_raw_fd(), scratch.hdrs.as_mut_ptr(), n as u32, 0) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((rc as usize).min(n))
}

/// Sets an `int`-valued socket option.
fn sockopt_i32(socket: &UdpSocket, level: i32, optname: i32, val: i32) -> io::Result<()> {
    // SAFETY: passes a pointer to a live stack `i32` with its exact size;
    // setsockopt copies the value before returning and keeps no reference.
    let rc = unsafe {
        setsockopt(
            socket.as_raw_fd(),
            level,
            optname,
            (&val as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Best-effort `SO_RCVBUF` bump (the kernel clamps to `rmem_max`).
pub fn set_recv_buffer(socket: &UdpSocket, bytes: i32) -> io::Result<()> {
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    sockopt_i32(socket, SOL_SOCKET, SO_RCVBUF, bytes)
}

/// Sets `UDP_SEGMENT` on a send socket: payloads longer than `segment`
/// bytes travel the stack as one skb and are segmented into
/// `segment`-size datagrams (last may be shorter) at the very end —
/// or never, when the receiving socket has GRO on. `segment == 0`
/// disables. Errors on kernels without UDP GSO (pre-4.18).
pub fn set_udp_segment(socket: &UdpSocket, segment: u16) -> io::Result<()> {
    sockopt_i32(socket, SOL_UDP, UDP_SEGMENT, segment as i32)
}

/// Enables `UDP_GRO` on a receive socket: bursts of same-size datagrams
/// may arrive coalesced into one super-datagram, with the segment size
/// reported per message (see [`MmsgScratch::gro_segment`]). Errors on
/// kernels without UDP GRO (pre-5.0).
pub fn enable_udp_gro(socket: &UdpSocket) -> io::Result<()> {
    sockopt_i32(socket, SOL_UDP, UDP_GRO, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_glibc() {
        // Kernel ABI sizes on 64-bit Linux.
        assert_eq!(std::mem::size_of::<IoVec>(), 16);
        assert_eq!(std::mem::size_of::<MsgHdr>(), 56);
        assert_eq!(std::mem::size_of::<MMsgHdr>(), 64);
    }

    #[test]
    fn mmsg_round_trip_on_loopback() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();

        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 100 + i as usize]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let mut scratch = MmsgScratch::new();
        let sent = send_burst(&tx, &mut scratch, &refs).unwrap();
        assert_eq!(sent, 5);

        let mut storage: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 2048]).collect();
        let mut slices: Vec<&mut [u8]> = storage.iter_mut().map(|b| b.as_mut_slice()).collect();
        let mut lens = [0usize; 8];
        let mut rscratch = MmsgScratch::new();
        // Loopback delivery is immediate but give the kernel a moment.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let got = recv_burst(&rx, &mut rscratch, &mut slices, &mut lens, false, false).unwrap();
        assert_eq!(got, 5, "MSG_WAITFORONE should drain the queued burst");
        for (i, payload) in payloads.iter().enumerate() {
            assert_eq!(lens[i], payload.len());
            assert_eq!(&storage[i][..lens[i]], payload.as_slice());
        }
    }

    #[test]
    fn nonblocking_recv_reports_wouldblock() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut storage = vec![0u8; 2048];
        let mut slices = vec![storage.as_mut_slice()];
        let mut lens = [0usize; 1];
        let mut scratch = MmsgScratch::new();
        let err = recv_burst(&rx, &mut scratch, &mut slices, &mut lens, true, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
