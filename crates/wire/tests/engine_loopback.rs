//! Loopback integration tests for the batched engine: both backends move
//! byte-identical bursts, the pool recycles, and polls stay quiet.

use std::net::UdpSocket;
use std::time::Duration;

use fec_telemetry::Registry;
use fec_wire::{Backend, BatchReceiver, BatchSender, BufferPool, Pacer, MAX_BURST};

fn roundtrip(backend: Backend) {
    let rx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    rx_socket
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let dest = rx_socket.local_addr().unwrap();
    let tx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();

    let registry = Registry::new();
    let pool = BufferPool::with_config(2048, 128);
    pool.attach_telemetry(&registry);
    let mut tx = BatchSender::connect(tx_socket, dest, backend, Pacer::unlimited()).unwrap();
    tx.attach_telemetry(&registry);
    let mut rx = BatchReceiver::new(rx_socket, pool.clone(), backend);
    rx.attach_telemetry(&registry);

    // 200 datagrams with distinct, length-varied payloads.
    let payloads: Vec<Vec<u8>> = (0..200u32)
        .map(|i| {
            let mut p = i.to_be_bytes().to_vec();
            p.extend(std::iter::repeat_n(i as u8, 32 + (i as usize % 700)));
            p
        })
        .collect();

    let mut received: Vec<Vec<u8>> = Vec::new();
    for chunk in payloads.chunks(50) {
        let refs: Vec<&[u8]> = chunk.iter().map(|p| p.as_slice()).collect();
        assert_eq!(tx.send_burst(&refs).unwrap(), chunk.len());
        // Drain this chunk before the next send so the socket buffer
        // never sees more than 50 datagrams.
        let target = received.len() + chunk.len();
        while received.len() < target {
            let burst = rx.recv_burst(MAX_BURST).unwrap();
            assert!(!burst.is_empty(), "timed out mid-chunk");
            for buf in burst {
                received.push(buf.to_vec());
            }
        }
    }

    // Loopback UDP: everything arrives; compare as multisets to be safe.
    let mut want = payloads.clone();
    let mut got = received.clone();
    want.sort();
    got.sort();
    assert_eq!(got, want, "backend {} corrupted payloads", backend.name());

    // Telemetry saw traffic on both directions.
    let text = registry.render_prometheus();
    assert!(
        text.contains("fec_wire_syscalls_total{op=\"send\"}"),
        "{text}"
    );
    assert!(
        text.contains("fec_wire_datagrams_total{op=\"recv\"}"),
        "{text}"
    );
    // The pool recycled: hits once the drain warmed up.
    assert!(
        text.contains("fec_wire_pool_total{outcome=\"hit\"}"),
        "{text}"
    );
}

#[test]
fn batched_backend_roundtrip() {
    if cfg!(target_os = "linux") {
        roundtrip(Backend::Batched);
    }
}

#[test]
fn portable_backend_roundtrip() {
    roundtrip(Backend::Portable);
}

#[test]
fn try_recv_on_idle_socket_is_empty_not_error() {
    let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    let mut rx = BatchReceiver::new(socket, BufferPool::new(), Backend::detect());
    assert!(rx.try_recv_burst(MAX_BURST).unwrap().is_empty());
    let mut rx_portable = BatchReceiver::new(
        UdpSocket::bind("127.0.0.1:0").unwrap(),
        BufferPool::new(),
        Backend::Portable,
    );
    assert!(rx_portable.try_recv_burst(MAX_BURST).unwrap().is_empty());
}

#[test]
fn address_aware_poll_reports_each_sender() {
    let rx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dest = rx_socket.local_addr().unwrap();
    let mut rx = BatchReceiver::new(rx_socket, BufferPool::new(), Backend::detect());
    assert!(
        rx.try_recv_burst_from(MAX_BURST).unwrap().is_empty(),
        "idle socket polls empty, not an error"
    );

    // Two distinct senders interleaved: every datagram must come back
    // tagged with the socket that sent it.
    let a = UdpSocket::bind("127.0.0.1:0").unwrap();
    let b = UdpSocket::bind("127.0.0.1:0").unwrap();
    for i in 0..6u8 {
        let from = if i % 2 == 0 { &a } else { &b };
        from.send_to(&[i; 9], dest).unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut got: Vec<(Vec<u8>, std::net::SocketAddr)> = Vec::new();
    while got.len() < 6 {
        let burst = rx.try_recv_burst_from(MAX_BURST).unwrap();
        if burst.is_empty() {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        got.extend(burst.into_iter().map(|(buf, src)| (buf.to_vec(), src)));
    }
    for (payload, src) in &got {
        assert_eq!(payload.len(), 9);
        let expect = if payload[0] % 2 == 0 { &a } else { &b };
        assert_eq!(*src, expect.local_addr().unwrap());
    }
}

#[test]
fn blocking_recv_times_out_as_session_idle() {
    let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut rx = BatchReceiver::new(socket, BufferPool::new(), Backend::detect());
    let err = rx.recv_burst(MAX_BURST).unwrap_err();
    assert_eq!(
        fec_wire::classify_recv_error(&err),
        fec_wire::RecvDisposition::SessionIdle
    );
}

#[test]
fn paced_send_is_rate_bounded() {
    let rx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dest = rx_socket.local_addr().unwrap();
    let tx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    // 2000 datagrams/s, burst 10: 100 sends must take ≥ ~45 ms.
    let mut tx =
        BatchSender::connect(tx_socket, dest, Backend::detect(), Pacer::rate(2000.0, 10)).unwrap();
    let payload = vec![0u8; 64];
    let refs: Vec<&[u8]> = (0..100).map(|_| payload.as_slice()).collect();
    let t0 = std::time::Instant::now();
    tx.send_burst(&refs).unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(40),
        "pacing did not throttle: {:?}",
        t0.elapsed()
    );
}
