//! UDP GSO/GRO offload integration tests.
//!
//! The offload path must be invisible on the wire: a GSO sender talking to a
//! plain receiver delivers the same individual datagrams (the kernel segments
//! on delivery), and a GRO receiver fed by a plain sender sees unmodified
//! payloads. Each test probes kernel support at runtime and skips gracefully
//! when the host cannot grant the offload (non-Linux, or an old kernel).

use std::net::UdpSocket;
use std::time::Duration;

use fec_wire::{Backend, BatchReceiver, BatchSender, BufferPool, Pacer, MAX_BURST};

/// Distinct, length-varied payloads: several same-length runs (which GSO
/// coalesces into super-datagrams) interleaved with odd sizes that force
/// group breaks.
fn payloads(count: u32) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let len = match i % 7 {
                0..=2 => 1200,          // coalescible run
                3 => 256,               // shorter: closes the run
                4 | 5 => 1200,          // new run
                _ => 37 + (i as usize), // unique length, never grouped
            };
            let mut p = i.to_be_bytes().to_vec();
            let mut x = i.wrapping_mul(2654435761).wrapping_add(17);
            while p.len() < len {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                p.push((x >> 24) as u8);
            }
            p
        })
        .collect()
}

fn gso_sender(dest: std::net::SocketAddr, backend: Backend) -> Option<BatchSender> {
    let tx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    let mut tx = BatchSender::connect(tx_socket, dest, backend, Pacer::unlimited()).unwrap();
    match tx.enable_gso() {
        Ok(()) => {
            assert!(tx.gso_active());
            Some(tx)
        }
        Err(err) => {
            eprintln!("skipping: kernel did not grant UDP GSO: {err}");
            None
        }
    }
}

#[test]
fn gso_gro_round_trip_is_byte_identical() {
    let rx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    rx_socket
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let dest = rx_socket.local_addr().unwrap();

    // GRO needs full-size pool buffers and the batched backend.
    let mut rx = BatchReceiver::new(rx_socket, BufferPool::new(), Backend::Batched);
    if let Err(err) = rx.enable_gro() {
        eprintln!("skipping: kernel did not grant UDP GRO: {err}");
        return;
    }
    assert!(rx.gro_active());
    let Some(mut tx) = gso_sender(dest, Backend::platform_default()) else {
        return;
    };

    let want = payloads(210);
    let mut received: Vec<Vec<u8>> = Vec::new();
    for chunk in want.chunks(MAX_BURST) {
        let refs: Vec<&[u8]> = chunk.iter().map(|p| p.as_slice()).collect();
        assert_eq!(tx.send_burst(&refs).unwrap(), chunk.len());
        let target = received.len() + chunk.len();
        while received.len() < target {
            let burst = rx.recv_burst(MAX_BURST).unwrap();
            assert!(!burst.is_empty(), "timed out mid-chunk");
            received.extend(burst.iter().map(|b| b.to_vec()));
        }
    }

    // Loopback preserves order, and both GSO grouping and GRO splitting are
    // order-preserving, so an exact in-order comparison is the real test.
    assert_eq!(
        received, want,
        "offload path corrupted or reordered payloads"
    );
}

#[test]
fn gso_sender_to_plain_receiver_still_delivers_datagrams() {
    let rx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    rx_socket
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let dest = rx_socket.local_addr().unwrap();
    let Some(mut tx) = gso_sender(dest, Backend::platform_default()) else {
        return;
    };

    let want = payloads(63);
    let refs: Vec<&[u8]> = want.iter().map(|p| p.as_slice()).collect();
    assert_eq!(tx.send_burst(&refs).unwrap(), want.len());

    // A plain recv_from must see each original datagram: the kernel segments
    // GSO super-datagrams on local delivery when the receiver has no GRO.
    let mut buf = vec![0u8; 65536];
    let mut received = Vec::new();
    for _ in 0..want.len() {
        let (n, _) = rx_socket.recv_from(&mut buf).unwrap();
        received.push(buf[..n].to_vec());
    }
    assert_eq!(received, want, "GSO super-datagrams were not re-segmented");
}

#[test]
fn plain_sender_to_gro_receiver_passes_through() {
    let rx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    rx_socket
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let dest = rx_socket.local_addr().unwrap();
    let mut rx = BatchReceiver::new(rx_socket, BufferPool::new(), Backend::Batched);
    if let Err(err) = rx.enable_gro() {
        eprintln!("skipping: kernel did not grant UDP GRO: {err}");
        return;
    }

    let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    let want = payloads(40);
    for p in &want {
        tx.send_to(p, dest).unwrap();
    }
    let mut received: Vec<Vec<u8>> = Vec::new();
    while received.len() < want.len() {
        let burst = rx.recv_burst(MAX_BURST).unwrap();
        assert!(!burst.is_empty(), "timed out");
        received.extend(burst.iter().map(|b| b.to_vec()));
    }
    assert_eq!(received, want, "GRO receiver altered plain datagrams");
}

#[test]
fn offload_refuses_the_portable_backend() {
    // The portable backend must behave exactly like the non-Linux
    // fallback, where neither offload exists.
    let rx_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    let dest = rx_socket.local_addr().unwrap();
    let mut tx = BatchSender::connect(
        UdpSocket::bind("127.0.0.1:0").unwrap(),
        dest,
        Backend::Portable,
        Pacer::unlimited(),
    )
    .unwrap();
    assert!(tx.enable_gso().is_err(), "GSO must require batched backend");
    assert!(!tx.gso_active());
    let mut rx = BatchReceiver::new(rx_socket, BufferPool::new(), Backend::Portable);
    assert!(rx.enable_gro().is_err(), "GRO must require batched backend");
    assert!(!rx.gro_active());

    if cfg!(target_os = "linux") {
        // Undersized pool buffers cannot hold a coalesced payload: must refuse.
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut rx = BatchReceiver::new(socket, BufferPool::with_config(2048, 8), Backend::Batched);
        let err = rx.enable_gro().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");
    }
}
