//! Adaptive broadcast session: the sender side of the `fec-adapt` loop,
//! end to end with real packets.
//!
//! A long-lived sender broadcasts a sequence of objects while the channel
//! drifts between a calm and a congested-bursty regime. From per-packet
//! loss feedback alone it (1) estimates the Gilbert parameters online,
//! (2) re-selects the (code, tx model, expansion ratio) tuple through the
//! paper's §6.1 rules with hysteresis, and (3) truncates each transmission
//! to the §6.2 plan. Receivers decode from whatever survives.
//!
//! Run with: `cargo run --example adaptive_session`

use fec_broadcast::prelude::*;

fn main() {
    let k = 120usize;
    let symbol = 64usize;
    let objects = 10u32;

    // The true channel — the controller never sees these parameters.
    let mut channel = DriftingChannel::cycling(
        vec![
            Regime::new(GilbertParams::new(0.01, 0.8).unwrap(), 1_500),
            Regime::new(GilbertParams::new(0.12, 0.3).unwrap(), 1_500),
        ],
        7,
    );

    let mut controller = AdaptiveController::new(ControllerConfig {
        window: 1_200,
        min_observations: 150,
        confirm_after: 1,
        ..ControllerConfig::default()
    });

    println!("adaptive broadcast of {objects} objects, k = {k}, {symbol}-byte symbols\n");

    for object_id in 0..objects {
        controller.reconsider();
        let decision = controller.decision();
        let true_params = channel.current();

        // Encode this object under the currently deployed tuple.
        let object: Vec<u8> = (0..k * symbol)
            .map(|i| ((i as u32 * 31 + object_id * 17) % 251) as u8)
            .collect();
        let spec = CodeSpec::new(decision.code.clone(), k, decision.ratio).with_matrix_seed(11);
        let sender = Sender::new(spec.clone(), &object, symbol).unwrap();

        // Plan the transmission if the estimate supports one.
        let schedule_seed = 1000 + object_id as u64;
        let packets = match controller.plan(k) {
            Some(plan) => sender.planned_transmission(&plan, decision.tx, schedule_seed),
            None => sender.transmission(decision.tx, schedule_seed),
        };

        // Broadcast through the channel; the receiver reports per-packet
        // fates (in a FLUTE deployment this is a reception report).
        let mut receiver = Receiver::new(spec, object.len(), symbol).unwrap();
        let mut observed = Vec::with_capacity(packets.len());
        let mut needed = None;
        for (i, pkt) in packets.iter().enumerate() {
            let lost = channel.next_is_lost();
            observed.push(lost);
            if lost {
                continue;
            }
            if receiver.push(pkt).unwrap().is_decoded() && needed.is_none() {
                needed = Some(i + 1);
            }
        }
        controller.observe_all(&observed);
        let decoded = needed.is_some();
        controller.record_outcome(decoded);
        if decoded {
            assert_eq!(receiver.into_object().unwrap(), object, "byte-exact");
        }

        let bound = controller.estimate().map_or_else(
            || "   -  ".into(),
            |e| format!("{:>5.1}%", e.p_global_upper() * 100.0),
        );
        println!(
            "object {object_id}: true loss {:>5.1}% | est bound {bound} | {} | sent {:>3}/{} | {}",
            true_params.global_loss_probability() * 100.0,
            decision,
            packets.len(),
            sender.packet_count(),
            if decoded {
                "decoded"
            } else {
                "FAILED (backoff engages)"
            },
        );
    }

    println!(
        "\ncontroller ended on `{}` after {} switch(es)",
        controller.decision(),
        controller.switches()
    );
}
