//! FLUTE-like carousel broadcast to heterogeneous receivers (§6.2.2).
//!
//! One sender, no feedback channel, five receivers behind very different
//! Gilbert channels (the paper's wireless scenario: "movement, obstacles,
//! distance to the source"). The sender cycles a Tx_model_4 schedule —
//! the paper's universal recommendation — and each receiver reports when it
//! finished and how many packets it needed.
//!
//! ```sh
//! cargo run --release --example broadcast_file
//! ```

use fec_broadcast::prelude::*;

struct Client {
    name: &'static str,
    channel: GilbertChannel,
    receiver: Option<Receiver>, // None once decoded
    received: u64,
    finished_at_cycle: Option<u32>,
}

fn main() {
    let object: Vec<u8> = (0..256 * 1024).map(|i| ((i * 31) % 251) as u8).collect();
    let symbol = 1024;

    // §6.2.2: unknown/heterogeneous channels -> (LDGM Triangle, Tx_model_4).
    let rec = &recommend(ChannelKnowledge::Unknown)[0];
    println!(
        "deployment: {:?} + {} — {}",
        rec.code,
        rec.tx.name(),
        rec.rationale
    );
    let spec = CodeSpec::for_object(rec.code.clone(), ExpansionRatio::R2_5, object.len(), symbol)
        .expect("valid parameters");
    let sender = Sender::new(spec.clone(), &object, symbol).expect("encode");
    println!(
        "object {} bytes, k = {}, n = {}\n",
        object.len(),
        sender.source_count(),
        sender.packet_count()
    );

    let mk = |name, p, q, seed| Client {
        name,
        channel: GilbertChannel::new(GilbertParams::new(p, q).expect("params"), seed),
        receiver: Some(Receiver::new(spec.clone(), object.len(), symbol).expect("session")),
        received: 0,
        finished_at_cycle: None,
    };
    let mut clients = vec![
        mk("wired-clean   (p=0.1%, q=90%)", 0.001, 0.90, 1),
        mk("dsl-typical   (p=1%,   q=80%)", 0.010, 0.80, 2),
        mk("wifi-fringe   (p=5%,   q=40%)", 0.050, 0.40, 3),
        mk("mobile-bursty (p=10%,  q=25%)", 0.100, 0.25, 4),
        mk("awful-outages (p=20%,  q=15%)", 0.200, 0.15, 5),
    ];

    let mut cycle = 0u32;
    while clients.iter().any(|c| c.receiver.is_some()) {
        cycle += 1;
        assert!(cycle <= 50, "carousel failed to converge");
        let schedule = rec.tx.schedule(sender.layout(), cycle as u64);
        for r in schedule {
            let packet = sender.packet(r).expect("valid ref");
            for client in clients.iter_mut() {
                let Some(rx) = client.receiver.as_mut() else {
                    continue;
                };
                if client.channel.next_is_lost() {
                    continue;
                }
                client.received += 1;
                if rx.push(&packet).expect("valid packet").is_decoded() {
                    let rx = client.receiver.take().expect("present");
                    assert_eq!(rx.into_object().expect("decoded"), object);
                    client.finished_at_cycle = Some(cycle);
                }
            }
        }
        let done = clients.iter().filter(|c| c.receiver.is_none()).count();
        println!("cycle {cycle}: {done}/{} receivers complete", clients.len());
    }

    println!("\nper-receiver summary (k = {}):", sender.source_count());
    for c in &clients {
        println!(
            "  {} decoded in cycle {} after {:>6} packets (inefficiency {:.3})",
            c.name,
            c.finished_at_cycle.expect("all done"),
            c.received,
            c.received as f64 / sender.source_count() as f64
        );
    }
    println!(
        "\nNote how close the inefficiencies are despite wildly different channels —\n\
         that flatness is exactly why the paper recommends Tx_model_4 here (§6.2.2)."
    );
}
