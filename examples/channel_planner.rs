//! The §6.2.1 workflow: a *known* channel, end to end.
//!
//! 1. Probe the channel and record a loss trace.
//! 2. Fit a Gilbert model to the trace (transition counting).
//! 3. Rank candidate (code, schedule, ratio) tuples by *measured*
//!    inefficiency at the fitted (p, q).
//! 4. Compute the optimal `n_sent` (equation 3) and show the savings.
//! 5. Verify by delivering an object under the truncated plan.
//!
//! ```sh
//! cargo run --release --example channel_planner
//! ```

use fec_broadcast::channel::{fit_gilbert, LossTrace};
use fec_broadcast::prelude::*;

fn main() {
    // --- 1. The "real" channel, unknown to the planner: the paper's
    //        Amherst -> Los Angeles fit from Yajnik et al.
    let truth = GilbertParams::new(0.0109, 0.7915).expect("probabilities");
    let mut probe = GilbertChannel::new(truth, 0xFEED);

    // --- 2. Record and fit.
    let trace = LossTrace::record(&mut probe, 500_000);
    let fitted = fit_gilbert(&trace).expect("identifiable trace");
    println!(
        "trace: {} packets, loss rate {:.2}%, mean burst {:.2}",
        trace.len(),
        trace.loss_rate() * 100.0,
        trace.burst_lengths().iter().sum::<usize>() as f64
            / trace.burst_lengths().len().max(1) as f64
    );
    println!(
        "fitted Gilbert: p = {:.4}, q = {:.4} (truth: p = {}, q = {})\n",
        fitted.p(),
        fitted.q(),
        truth.p(),
        truth.q()
    );

    // --- 3. Measured selection (the paper's Fig. 15 at reduced scale).
    let mut selector = MeasuredSelector::new(3000, 12);
    selector.tolerance = (selector.k / 25) as u64; // ε = 4%
    let choices = selector.select(fitted).expect("simulations run");
    println!(
        "{:<16} {:<12} {:>5} {:>8} {:>7}",
        "code", "model", "ratio", "inef", "n_sent"
    );
    for c in choices.iter().take(8) {
        println!(
            "{:<16} {:<12} {:>5} {:>8} {:>7}",
            c.code.name(),
            c.tx.name(),
            c.ratio.as_f64(),
            c.mean_inefficiency
                .map_or_else(|| "-".into(), |m| format!("{m:.4}")),
            c.plan
                .as_ref()
                .map_or_else(|| "-".into(), |p| p.n_sent.to_string()),
        );
    }
    let best = &choices[0];
    println!(
        "\nwinner: ({}, {}, ratio {}) — the paper picked (LDGM Staircase, tx_model_2, 1.5)",
        best.code.name(),
        best.tx.name(),
        best.ratio.as_f64()
    );

    // --- 4. Plan at the paper's object size: 50 MB in 1024-byte payloads.
    let k = 50_000_000usize.div_ceil(1024);
    let n = (k as f64 * best.ratio.as_f64()).floor() as u64;
    let plan = TransmissionPlan::new(
        k,
        n,
        best.mean_inefficiency.expect("reliable winner"),
        fitted,
        500, // ε in packets
    );
    println!(
        "plan for the 50 MB object: send {} of {} packets ({:.1}% saved, expected {:.0} deliveries for {:.0} needed)",
        plan.n_sent,
        plan.n_total,
        plan.savings_fraction() * 100.0,
        plan.expected_received(),
        plan.inefficiency * plan.k as f64,
    );

    // --- 5. Validate the plan on a (smaller) real object.
    let symbol = 64;
    let spec = CodeSpec::new(best.code.clone(), selector.k, best.ratio).with_matrix_seed(11);
    let object: Vec<u8> = (0..selector.k * symbol).map(|i| (i % 241) as u8).collect();
    let sender = Sender::new(spec.clone(), &object, symbol).expect("encode");
    let small_plan = best.plan.as_ref().expect("winner has a plan");
    let mut delivered = 0;
    let trials = 20;
    for seed in 0..trials {
        let mut rx = Receiver::new(spec.clone(), object.len(), symbol).expect("session");
        let mut ch = GilbertChannel::new(truth, 0x900D + seed);
        for r in best
            .tx
            .schedule(sender.layout(), seed)
            .into_iter()
            .take(small_plan.n_sent as usize)
        {
            if ch.next_is_lost() {
                continue;
            }
            if rx
                .push(&sender.packet(r).expect("ref"))
                .expect("push")
                .is_decoded()
            {
                assert_eq!(rx.into_object().expect("decoded"), object);
                delivered += 1;
                break;
            }
        }
    }
    println!(
        "validation: {delivered}/{trials} deliveries under the truncated plan \
         (n_sent = {} of n = {})",
        small_plan.n_sent, small_plan.n_total
    );
    assert!(delivered >= trials - 2, "plan under-delivers");
}
