//! Registering a third-party erasure code and using it end to end.
//!
//! This is the workspace's "write your own codec" walkthrough: a complete
//! single-parity XOR code (any `k` of its `k + 1` encoding symbols
//! recover the object) implemented against `fec_codec::ErasureCode`,
//! registered at runtime, then driven through every consumer that
//! resolves codecs by name — a byte-true `fec-core` sender/receiver
//! session, the `fec-sim` Monte-Carlo runner, and serialized `CodeSpec`s —
//! plus the conformance harness that proves it behaves like a codec.
//!
//! Run with: `cargo run --example custom_codec`

use std::sync::Arc;

use fec_broadcast::codec::{
    conformance, registry, BlockParity, CodecError, DecodeProgress, Decoder, Encoder, Envelope,
    ErasureCode, SessionParams, StructuralFactory, StructuralSession,
};
use fec_broadcast::prelude::*;

/// A single-parity XOR code: `n = k + 1`, parity = XOR of all sources.
///
/// It corrects exactly one erasure — useless for the paper's channels,
/// perfect for showing the seam: nothing below this file knows it exists.
struct XorParity;

impl ErasureCode for XorParity {
    fn id(&self) -> &str {
        "xor-parity"
    }

    fn name(&self) -> &str {
        "XOR single parity"
    }

    // No IANA FEC Encoding ID: usable everywhere except ALC transport.
    fn fti_id(&self) -> Option<u8> {
        None
    }

    // Keep it out of the §6 recommenders' candidate set: a 1-erasure
    // parity code is never a broadcast recommendation. (Codecs that should
    // compete leave the default `true` and are picked up automatically by
    // `MeasuredSelector` and the benches.)
    fn recommendable(&self) -> bool {
        false
    }

    fn envelope(&self) -> Envelope {
        Envelope {
            min_k: 1,
            max_k: 1 << 16,
            min_ratio: 1.0,
            max_ratio: 2.0,
        }
    }

    fn supports(&self, k: usize, ratio: f64) -> bool {
        // Exactly one parity symbol: floor(k * ratio) == k + 1.
        self.envelope().contains(k, ratio) && ((k as f64) * ratio).floor() as usize == k + 1
    }

    fn layout(&self, k: usize, ratio: f64) -> Result<Layout, CodecError> {
        if !self.supports(k, ratio) {
            return Err(CodecError::UnsupportedGeometry {
                code: self.id().into(),
                k,
                ratio,
                reason: "single-parity needs floor(k * ratio) == k + 1".into(),
            });
        }
        Ok(Layout::single_block(k, k + 1))
    }

    fn encoder(&self, p: &SessionParams) -> Result<Box<dyn Encoder>, CodecError> {
        self.layout(p.k, p.ratio)?;
        Ok(Box::new(XorEncoder))
    }

    fn decoder(&self, p: &SessionParams) -> Result<Box<dyn Decoder>, CodecError> {
        self.layout(p.k, p.ratio)?;
        Ok(Box::new(XorDecoder {
            k: p.k,
            have: vec![None; p.k + 1],
            received: 0,
        }))
    }

    fn structural_factory(
        &self,
        k: usize,
        ratio: f64,
        _seeds: &[u64],
    ) -> Result<Box<dyn StructuralFactory>, CodecError> {
        self.layout(k, ratio)?;
        Ok(Box::new(XorFactory { k }))
    }
}

struct XorEncoder;

impl Encoder for XorEncoder {
    fn encode(&mut self, source: &[&[u8]]) -> Result<BlockParity, CodecError> {
        let mut parity = source[0].to_vec();
        for s in &source[1..] {
            parity.iter_mut().zip(*s).for_each(|(p, b)| *p ^= b);
        }
        Ok(vec![vec![parity]]) // one block, one parity symbol
    }
}

struct XorDecoder {
    k: usize,
    have: Vec<Option<Vec<u8>>>,
    received: u64,
}

impl Decoder for XorDecoder {
    fn add_symbol(&mut self, r: PacketRef, payload: &[u8]) -> Result<DecodeProgress, CodecError> {
        self.received += 1;
        self.have[r.esi as usize].get_or_insert_with(|| payload.to_vec());
        Ok(self.progress())
    }

    fn progress(&self) -> DecodeProgress {
        let missing = self.have[..self.k].iter().filter(|s| s.is_none()).count();
        let solvable = missing == 0 || (missing == 1 && self.have[self.k].is_some());
        DecodeProgress {
            received: self.received,
            decoded_source: if solvable { self.k } else { self.k - missing },
            total_source: self.k,
        }
    }

    fn into_source(self: Box<Self>) -> Result<Vec<Vec<u8>>, CodecError> {
        let p = self.progress();
        if !p.is_decoded() {
            return Err(CodecError::NotDecoded {
                decoded: p.decoded_source,
                needed: p.total_source,
            });
        }
        let mut have = self.have;
        if let Some(hole) = (0..self.k).find(|&i| have[i].is_none()) {
            let mut fill = have[self.k].clone().expect("parity present");
            for (i, s) in have[..self.k].iter().enumerate() {
                if i != hole {
                    let s = s.as_ref().expect("only one hole");
                    fill.iter_mut().zip(s).for_each(|(p, b)| *p ^= b);
                }
            }
            have[hole] = Some(fill);
        }
        Ok(have.into_iter().take(self.k).map(Option::unwrap).collect())
    }
}

struct XorFactory {
    k: usize,
}

impl StructuralFactory for XorFactory {
    fn session(&self, _run_idx: u64) -> Box<dyn StructuralSession + '_> {
        Box::new(XorStructural {
            seen: vec![false; self.k + 1],
            distinct: 0,
            k: self.k,
        })
    }
}

struct XorStructural {
    seen: Vec<bool>,
    distinct: usize,
    k: usize,
}

impl StructuralSession for XorStructural {
    fn add(&mut self, r: PacketRef) -> bool {
        if !self.seen[r.esi as usize] {
            self.seen[r.esi as usize] = true;
            self.distinct += 1;
        }
        self.distinct >= self.k
    }
}

fn main() {
    // 1. Register. From here on the codec resolves by name everywhere.
    registry::register(Arc::new(XorParity)).expect("no conflicts");
    let code = registry::resolve("xor-parity").expect("just registered");
    println!("registered: {} ({})", code.id(), code.name());
    // recommendable() == false keeps it out of the §6 candidate sets the
    // recommenders and benches sweep.
    assert!(registry::candidates()
        .iter()
        .all(|c| c.id() != "xor-parity"));

    // 2. Prove it behaves like a codec (the same harness the built-ins
    //    pass; panics with a description on any violation).
    let k = 50;
    let ratio = ExpansionRatio::Custom(1.02); // floor(50 * 1.02) = 51 = k + 1
    conformance::check_shape(&code, k, ratio.as_f64());
    println!("conformance: ok for (k = {k}, ratio = {ratio})");

    // 3. A byte-true session through fec-core, losing one packet — the
    //    exact budget a single parity covers.
    let symbol = 32;
    let spec = CodeSpec::new(code.clone(), k, ratio);
    let object: Vec<u8> = (0..k * symbol - 3).map(|i| (i % 251) as u8).collect();
    let sender = Sender::new(spec.clone(), &object, symbol).expect("encode");
    let mut receiver = Receiver::new(spec.clone(), object.len(), symbol).expect("receiver");
    for (i, packet) in sender.transmission(TxModel::Random, 7).iter().enumerate() {
        if i == 3 {
            continue; // one erasure
        }
        if receiver.push(packet).expect("valid packet").is_decoded() {
            break;
        }
    }
    assert_eq!(receiver.into_object().expect("decoded"), object);
    println!("fec-core session: decoded through 1 erasure");

    // 4. The Monte-Carlo runner accepts it like any built-in.
    let exp = Experiment::new(code.clone(), k, ratio, TxModel::Random);
    let out = Runner::new(exp, 1)
        .expect("valid experiment")
        .run(11, 0, false);
    println!(
        "fec-sim run: decoded = {}, n_necessary = {:?} (k = {k})",
        out.decoded, out.n_necessary
    );

    // 5. Serialized specs name it, and resolve back through the registry.
    let json = serde_json::to_string(&spec).expect("serialize");
    let back: CodeSpec = serde_json::from_str(&json).expect("resolves by name");
    assert_eq!(back, spec);
    println!("CodeSpec wire form: {json}");
}
