//! The sharded sweep pipeline, driven from the library: plan → shard →
//! execute (three complementary shards, as a multi-host run would) →
//! merge — and proof that the merged result is byte-identical to the
//! single-process sweep.
//!
//! ```text
//! cargo run --release --example distributed_sweep
//! ```

use fec_broadcast::codec::builtin;
use fec_broadcast::distrib::{execute_plan, from_partials, run_shard, ShardSpec, SweepPlan};
use fec_broadcast::prelude::*;
use fec_broadcast::sim::report;

fn main() {
    // 1. Plan: freeze the experiment, grid, seed and unit decomposition.
    let experiment = Experiment::new(
        builtin::ldgm_staircase(),
        1000,
        ExpansionRatio::R2_5,
        TxModel::Random,
    );
    let config = SweepConfig {
        runs: 12,
        seed: 0xFEC,
        ..SweepConfig::quick(12)
    };
    let plan = SweepPlan::new(experiment, config).expect("valid plan");
    println!(
        "plan: {} cells x {} runs = {} work units (fingerprint {:#018x})",
        plan.config.cell_count(),
        plan.config.runs,
        plan.unit_count(),
        plan.fingerprint()
    );

    // 2+3. Shard and execute: three complementary round-robin shards,
    // exactly what three hosts given `--shard i/3` would each compute.
    let partials: Vec<_> = (0..3)
        .map(|index| {
            let shard = ShardSpec::RoundRobin { index, count: 3 };
            let partial = run_shard(&plan, &shard).expect("shard executes");
            println!("shard {shard}: {} units", partial.units.len());
            partial
        })
        .collect();

    // 4. Merge, with completeness checking.
    let merged = from_partials(&plan, &partials).expect("complete set");
    println!("\n{}", report::paper_table(&merged));

    // The whole point: identical bytes to the single-process run.
    let single = execute_plan(&plan).expect("plan executes");
    let merged_json = serde_json::to_string(&merged).unwrap();
    let single_json = serde_json::to_string(&single).unwrap();
    assert_eq!(merged_json, single_json);
    println!(
        "sharded == single-process: byte-identical ({} bytes of JSON)",
        merged_json.len()
    );
}
