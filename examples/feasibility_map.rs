//! Terminal rendering of Figures 5 and 6: the global-loss surface and the
//! fundamental decodability regions of the Gilbert channel.
//!
//! ```sh
//! cargo run --release --example feasibility_map            # both ratios
//! cargo run --release --example feasibility_map -- 2.0     # custom ratio
//! ```

use fec_broadcast::channel::analysis::FeasibilityLimit;
use fec_broadcast::prelude::*;

const STEPS: usize = 26;

fn axis(i: usize) -> f64 {
    i as f64 / (STEPS - 1) as f64
}

fn main() {
    let ratios: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse::<f64>().expect("ratio must be a number >= 1"))
        .collect();
    let ratios = if ratios.is_empty() {
        vec![1.5, 2.5]
    } else {
        ratios
    };

    println!("Figure 5 — global loss probability p/(p+q), 0 '.' … '9' 90%+:");
    println!("(rows: p from 0 at the top; columns: q from 0 at the left)\n");
    for pi in 0..STEPS {
        let mut row = String::new();
        for qi in 0..STEPS {
            let g = GilbertParams::new(axis(pi), axis(qi))
                .expect("axis values")
                .global_loss_probability();
            let digit = (g * 10.0).min(9.0) as u32;
            row.push(if digit == 0 {
                '.'
            } else {
                char::from_digit(digit, 10).expect("digit")
            });
        }
        println!("  {row}");
    }

    for ratio in ratios {
        let limit = FeasibilityLimit::ideal(ratio);
        println!(
            "\nFigure 6 — decodable region for FEC expansion ratio {ratio} \
             (needs {:.0}% delivery): '#' feasible, '.' impossible",
            limit.required_delivery_rate() * 100.0
        );
        for pi in 0..STEPS {
            let mut row = String::new();
            for qi in 0..STEPS {
                row.push(if limit.is_feasible(axis(pi), axis(qi)) {
                    '#'
                } else {
                    '.'
                });
            }
            println!("  {row}");
        }
        println!(
            "boundary: q >= p * {:.3} (uncorrelated-loss diagonal crosses at p = {:.2})",
            limit.required_delivery_rate() / (1.0 - limit.required_delivery_rate()),
            1.0 - limit.required_delivery_rate()
        );
    }
    println!(
        "\nEverything '#' is merely *possible*: whether a real code decodes there\n\
         depends on the schedule — that interaction is the whole paper."
    );
}
