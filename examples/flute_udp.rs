//! FLUTE file delivery over a real UDP socket (loopback), with loss.
//!
//! This is the paper's §1 scenario as an actual program: a feedback-free
//! sender broadcasts a file as ALC/LCT datagrams (FDT on TOI 0, EXT_FTI on
//! every data packet), a receiver joins the session knowing only the TSI
//! and the port, and reliability comes purely from FEC + scheduling —
//! the receiver never transmits anything.
//!
//! Losses are injected at the sender (a Gilbert channel decides which
//! datagrams are never written to the socket), so the loss pattern is
//! controlled and reproducible; everything downstream is real: UDP
//! datagram framing, the kernel socket buffer, wire parsing, out-of-order
//! tolerance.
//!
//! ```text
//! cargo run --example flute_udp [p] [q]       # default p=0.03 q=0.4
//! ```

use std::net::UdpSocket;
use std::thread;
use std::time::Duration;

use fec_broadcast::flute::{FluteReceiver, FluteSender, SenderConfig};
use fec_broadcast::prelude::*;

const TSI: u32 = 0xBEEF;
const SYMBOL_SIZE: usize = 1024;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.03);
    let q: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.4);
    let params = GilbertParams::new(p, q).expect("valid Gilbert parameters");

    // The "file": 2 MiB of deterministic bytes.
    let object: Vec<u8> = (0..2 * 1024 * 1024u32)
        .map(|i| (i * 2654435761) as u8)
        .collect();
    println!(
        "object: {} KiB, symbol {} B, channel p = {p}, q = {q} (loss ≈ {:.1}%, mean burst {:.1})",
        object.len() / 1024,
        SYMBOL_SIZE,
        params.global_loss_probability() * 100.0,
        1.0 / q.max(1e-9),
    );

    // Receiver socket first, so the sender knows where to aim.
    let rx_socket = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
    rx_socket
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("set timeout");
    let target = rx_socket.local_addr().expect("local addr");

    // --- Sender thread: encode, schedule, inject losses, transmit. -------
    let sender_params = params;
    let object_for_sender = object.clone();
    let tx_thread = thread::spawn(move || {
        let tx_socket = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        let mut session = FluteSender::new(SenderConfig::new(TSI));
        session
            .add_object(
                1,
                "udp://demo/2mib.bin",
                &object_for_sender,
                CodeKind::LdgmTriangle,
                ExpansionRatio::R1_5,
                SYMBOL_SIZE,
                0xC0FFEE,
                // The paper's recommendation for an unknown channel (§6.2.2):
                // LDGM Triangle with Tx_model_4.
                TxModel::Random,
            )
            .expect("add object");
        let datagrams = session.datagrams(7).expect("build datagrams");
        let mut channel = GilbertChannel::new(sender_params, 1234);
        let (mut sent, mut dropped) = (0u64, 0u64);
        for dg in &datagrams {
            if channel.next_is_lost() {
                dropped += 1;
                continue;
            }
            tx_socket.send_to(dg, target).expect("send datagram");
            sent += 1;
            // Pace slightly so the loopback socket buffer never overflows
            // (a real broadcast channel has a provisioned rate).
            if sent % 64 == 0 {
                thread::sleep(Duration::from_micros(200));
            }
        }
        println!("sender: {sent} datagrams sent, {dropped} lost in the channel");
        (sent, dropped)
    });

    // --- Receiver: parse datagrams until the object decodes. -------------
    let mut session = FluteReceiver::new(TSI);
    let mut buf = vec![0u8; SYMBOL_SIZE + 256];
    let mut received = 0u64;
    let decoded = loop {
        match rx_socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                received += 1;
                match session.push_datagram(&buf[..len]) {
                    Ok(event) => {
                        if matches!(
                            event,
                            fec_broadcast::flute::ReceiverEvent::ObjectComplete { .. }
                        ) {
                            break true;
                        }
                    }
                    Err(e) => eprintln!("receiver: dropping bad datagram: {e}"),
                }
            }
            Err(_) => {
                // Timeout: the sender is done and we still aren't — the
                // losses exceeded the code's budget for this run.
                break false;
            }
        }
    };

    let (sent, dropped) = tx_thread.join().expect("sender thread");
    println!("receiver: {received} datagrams consumed");

    if decoded {
        let got = session.take_object(1).expect("object decoded");
        assert_eq!(got, object, "byte-exact reconstruction");
        let fdt = session.fdt().expect("FDT received");
        println!(
            "decoded '{}' ({} bytes) from {} of {} data packets — inefficiency {:.4}",
            fdt.file(1)
                .map(|f| f.content_location.as_str())
                .unwrap_or("?"),
            got.len(),
            session.packets_received(1),
            sent + dropped - 1, // minus the FDT datagrams (approximation for display)
            session.packets_received(1) as f64 / (got.len() as f64 / SYMBOL_SIZE as f64),
        );
    } else {
        println!(
            "decoding FAILED: the channel ate too much ({}% loss with ratio 1.5 \
             leaves no margin) — rerun with a smaller p or larger q",
            (dropped as f64 / (sent + dropped) as f64 * 100.0).round()
        );
        std::process::exit(1);
    }
}
