//! Why interleaving matters for small-block codes (§4.7), shown on real
//! bytes: the same RSE-encoded object, the same bursty channel, two
//! schedules — sequential transmission collapses, interleaving sails.
//!
//! ```sh
//! cargo run --release --example interleaving_demo
//! ```

use fec_broadcast::prelude::*;

fn attempt(
    spec: &CodeSpec,
    object: &[u8],
    symbol: usize,
    tx: TxModel,
    channel: GilbertParams,
    seed: u64,
) -> Result<u64, u64> {
    let sender = Sender::new(spec.clone(), object, symbol).expect("encode");
    let mut rx = Receiver::new(spec.clone(), object.len(), symbol).expect("session");
    let mut ch = GilbertChannel::new(channel, seed);
    let mut received = 0u64;
    for r in tx.schedule(sender.layout(), seed) {
        if ch.next_is_lost() {
            continue;
        }
        received += 1;
        if rx
            .push(&sender.packet(r).expect("ref"))
            .expect("push")
            .is_decoded()
        {
            assert_eq!(rx.into_object().expect("decoded"), object);
            return Ok(received);
        }
    }
    Err(received)
}

fn main() {
    let symbol = 512;
    let k = 1000; // ~10 RSE blocks at ratio 2.5
    let object: Vec<u8> = (0..k * symbol).map(|i| ((i / 3) % 256) as u8).collect();
    let spec = CodeSpec::rse(k, ExpansionRatio::R2_5);
    println!(
        "RSE object: k = {k}, {} blocks of <= {} packets",
        spec.layout().expect("layout").num_blocks(),
        fec_broadcast::rse::max_k_for_ratio(2.5)
    );

    // A nasty burst channel: 33% loss in bursts averaging 10 packets.
    let channel = GilbertParams::new(0.05, 0.10).expect("params");
    println!(
        "channel: p = {}, q = {} -> p_global = {:.0}%, mean burst {:.0} packets\n",
        channel.p(),
        channel.q(),
        channel.global_loss_probability() * 100.0,
        channel.mean_burst_length().expect("lossy")
    );

    let trials = 20;
    for (label, tx) in [
        ("tx_model_1 (sequential)  ", TxModel::SourceSeqParitySeq),
        ("tx_model_2 (parity random)", TxModel::SourceSeqParityRandom),
        ("tx_model_5 (interleaved)  ", TxModel::Interleaved),
    ] {
        let mut ok = 0;
        let mut needed = 0u64;
        for seed in 0..trials {
            if let Ok(n) = attempt(&spec, &object, symbol, tx, channel, seed) {
                ok += 1;
                needed += n;
            }
        }
        let inef = if ok > 0 {
            format!("{:.3}", needed as f64 / ok as f64 / k as f64)
        } else {
            "-".into()
        };
        println!("{label}: {ok:>2}/{trials} decoded, mean inefficiency {inef}");
    }
    println!(
        "\nA burst wipes out consecutive packets; sequential order puts them all in\n\
         one block (unrecoverable), interleaving spreads them one-per-block (§4.7)."
    );
}
