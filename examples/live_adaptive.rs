//! The live adaptive loop, end to end in one process: a FLUTE sender
//! streaming through a Gilbert-impaired link, a receiver emitting
//! reception-report digests, and a feedback loop amending the
//! transmission in flight.
//!
//! This is `fec-broadcast send --adaptive` / `recv --report-to` with the
//! sockets replaced by `fec_channel::LinkEmulator`, so the whole run is
//! deterministic. Run with:
//!
//! ```text
//! cargo run --release --example live_adaptive
//! ```

use fec_broadcast::adapt::ControllerConfig;
use fec_broadcast::channel::{GilbertChannel, GilbertParams, LinkConfig, LinkEmulator, LossModel};
use fec_broadcast::flute::feedback::{FeedbackLoop, ReportConfig, ReportOutcome};
use fec_broadcast::flute::{FluteReceiver, FluteSender, SenderConfig};
use fec_broadcast::prelude::*;
use fec_broadcast::telemetry::EstimatorSample;

fn main() {
    let tsi = 5;
    let started = std::time::Instant::now();

    // Everything below records into one registry; render_prometheus() at
    // the end shows the same text a `--metrics-addr` scrape would return.
    let registry = Registry::new();

    // A session of three 16 KiB objects, encoded at the conservative
    // prior's ratio 2.5 (the sender does not know the channel yet).
    let mut sender = FluteSender::new(SenderConfig::new(tsi));
    let objects: Vec<Vec<u8>> = (1..=3u32)
        .map(|toi| {
            (0..16_000)
                .map(|i| ((i as u32 * 31 + toi) % 251) as u8)
                .collect()
        })
        .collect();
    for (i, object) in objects.iter().enumerate() {
        sender
            .add_object(
                i as u32 + 1,
                format!("file:///obj-{}.bin", i + 1),
                object,
                fec_broadcast::codec::registry::resolve("ldgm-triangle").unwrap(),
                ExpansionRatio::R2_5,
                64,
                7 + i as u64,
                TxModel::Random,
            )
            .unwrap();
    }

    // The forward channel: ~2.4% bursty loss, plus UDP's usual mischief.
    let params = GilbertParams::new(0.01, 0.4).unwrap();
    let model: Box<dyn LossModel> = Box::new(GilbertChannel::new(params, 42));
    let mut link = LinkEmulator::with_config(
        model,
        LinkConfig {
            duplicate_rate: 0.01,
            reorder_rate: 0.02,
            reorder_depth: 3,
        },
        9,
    );

    link.attach_telemetry(&registry);

    let mut receiver = FluteReceiver::new(tsi);
    receiver.enable_reports(ReportConfig {
        report_every: 64,
        ..ReportConfig::default()
    });
    receiver.attach_telemetry(&registry);
    let mut feedback = FeedbackLoop::new(
        tsi,
        ControllerConfig {
            window: 5_000,
            min_observations: 250,
            confirm_after: 1,
            ..ControllerConfig::default()
        },
    );
    feedback.attach_telemetry(&registry);

    let mut stream = sender.stream(0x5EED);
    stream.attach_telemetry(&registry);
    let full = stream.full_total();
    println!(
        "session: 3 × 16 KiB at ratio 2.5 → {} data packets if sent statically\n\
         channel: p_global = {:.1}%, mean burst {:.1}\n",
        full,
        params.global_loss_probability() * 100.0,
        params.mean_burst_length().unwrap()
    );

    let mut on_wire = 0u64;
    let mut bytes_on_wire = 0u64;
    while let Some(datagram) = stream.next_datagram().unwrap() {
        on_wire += 1;
        bytes_on_wire += datagram.len() as u64;
        // Forward path: impaired link, straight into the receiver.
        for delivered in link.transmit(&datagram) {
            receiver.push_datagrams(&[&delivered]).unwrap();
        }
        // Return path: whenever the emitter's batch threshold fills, the
        // digest crosses back and the sender re-plans the object in
        // flight.
        if let Some(report) = receiver.poll_report() {
            let wire = report.to_bytes().unwrap();
            if let ReportOutcome::Applied { completed, .. } =
                feedback.ingest_datagram(&wire).unwrap()
            {
                for toi in &completed {
                    println!("  ← digest: object {toi} complete");
                    // Nothing more is needed for a decoded object.
                    stream.stop_object(*toi).unwrap();
                }
            }
            if feedback.session_complete() {
                println!("  ← digest: session complete — stopping early");
                break;
            }
            if let Some(toi) = stream.current_toi() {
                let k = stream.source_count(toi).unwrap() as usize;
                let replan = feedback.replan(k);
                if let Some(plan) = &replan.plan {
                    let amendment = stream.amend_plan(toi, Some(plan)).unwrap();
                    if let fec_broadcast::core::Amendment::Truncated { saved } = amendment {
                        println!(
                            "  → re-plan: object {toi} now stops at {} of its schedule \
                             ({saved} packets cut; bound {:.2}%)",
                            plan.n_sent,
                            plan.p_global * 100.0
                        );
                    }
                }
            }
        }
    }

    for (i, object) in objects.iter().enumerate() {
        assert_eq!(
            receiver.object(i as u32 + 1).expect("decoded"),
            &object[..],
            "object {} must decode byte-exactly",
            i + 1
        );
    }
    receiver.finalize_telemetry();
    let stats = feedback.stats();
    println!(
        "\ndelivered all 3 objects with {on_wire} datagrams on the wire \
         ({:.0}% of the static worst-case {full});\n\
         {} digests applied, {} observations, estimator bound {}",
        on_wire as f64 / full as f64 * 100.0,
        stats.applied,
        stats.observations,
        feedback.controller().estimate().map_or_else(
            || "-".into(),
            |e| format!("{:.2}%", e.p_global_upper() * 100.0)
        ),
    );

    // The same SessionSummary an adaptive `send --metrics-addr` prints on
    // exit: goodput, overhead against the static worst case, and the
    // estimator's final state.
    let mut summary = SessionSummary::new(tsi as u64);
    summary.datagrams_sent = on_wire;
    summary.bytes_sent = bytes_on_wire;
    summary.object_bytes = objects.iter().map(|o| o.len() as u64).sum();
    summary.full_schedule = full;
    summary.replans = stats.applied;
    summary.digests_applied = stats.applied;
    summary.objects_completed = objects.len() as u32;
    summary.elapsed_secs = started.elapsed().as_secs_f64();
    if let Some(est) = feedback.controller().estimate() {
        summary.estimator.push(EstimatorSample {
            observations: stats.observations,
            p: est.params.p(),
            q: est.params.q(),
            p_upper: est.p_global_upper(),
        });
    }
    summary.finalize();
    println!("\n{}", summary.to_json());

    assert!(on_wire < full, "the adaptive loop must save packets");
    assert!(
        summary.overhead_ratio < 1.0,
        "overhead {:.3} must undercut the static worst case",
        summary.overhead_ratio
    );
}
