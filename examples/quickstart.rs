//! Quickstart: encode an object, broadcast it through a lossy channel,
//! decode it back — in ~30 lines of library use.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fec_broadcast::prelude::*;

fn main() {
    // A 64 KiB "file", split into 1 KiB packets.
    let object: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let symbol_size = 1024;

    // LDGM Triangle at FEC expansion ratio 2.5, the paper's recommendation
    // for unknown channels, transmitted in fully random order (Tx_model_4).
    let spec = CodeSpec::for_object(
        CodeKind::LdgmTriangle,
        ExpansionRatio::R2_5,
        object.len(),
        symbol_size,
    )
    .expect("valid parameters");
    println!(
        "object: {} bytes -> k = {} source packets, n = {} encoding packets",
        object.len(),
        spec.k,
        spec.layout().unwrap().total_packets()
    );

    let sender = Sender::new(spec.clone(), &object, symbol_size).expect("encode");
    let mut receiver = Receiver::new(spec, object.len(), symbol_size).expect("session");

    // A bursty Gilbert channel: 9% average loss in bursts of mean length 2.
    let params = GilbertParams::new(0.05, 0.5).expect("probabilities");
    let mut channel = GilbertChannel::new(params, 42);
    println!(
        "channel: p = {}, q = {} (p_global = {:.1}%, mean burst {:.1})",
        params.p(),
        params.q(),
        params.global_loss_probability() * 100.0,
        params.mean_burst_length().unwrap()
    );

    let mut sent = 0u64;
    let mut lost = 0u64;
    for r in TxModel::Random.schedule(sender.layout(), 7) {
        sent += 1;
        if channel.next_is_lost() {
            lost += 1;
            continue;
        }
        let packet = sender.packet(r).expect("valid ref");
        let progress = receiver.push(&packet).expect("valid packet");
        if progress.is_decoded() {
            println!(
                "decoded after {} received packets (sent {sent}, lost {lost}) — inefficiency {:.3}",
                progress.received,
                progress.inefficiency()
            );
            break;
        }
    }

    let recovered = receiver.into_object().expect("decoded");
    assert_eq!(recovered, object);
    println!("byte-exact recovery confirmed ({} bytes)", recovered.len());
}
