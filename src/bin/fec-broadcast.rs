//! `fec-broadcast` — command-line front end for the paper's workflows.
//!
//! ```text
//! fec-broadcast recommend [--p <p> --q <q>] [--high-loss]
//! fec-broadcast plan --k <k> --ratio <r> --inef <i> --p <p> --q <q> [--tolerance <n>]
//! fec-broadcast sweep --code <rse|staircase|triangle> --tx <1..6> --ratio <r>
//!                     [--k <k>] [--runs <n>] [--coarse]
//! fec-broadcast map [--ratio <r>]
//! ```
//!
//! Argument parsing is deliberately hand-rolled (the workspace's dependency
//! budget has no CLI crate); every command prints a paper-style report to
//! stdout.

use std::collections::HashMap;
use std::process::ExitCode;

use fec_broadcast::channel::analysis::FeasibilityLimit;
use fec_broadcast::channel::LinkEmulator;
use fec_broadcast::codec::{registry, CodecHandle};
use fec_broadcast::distrib;
use fec_broadcast::live;
use fec_broadcast::prelude::*;
use fec_broadcast::sim::report;
use fec_broadcast::wire::{Backend, BatchReceiver, BatchSender, BufferPool, Pacer, MAX_BURST};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let (opts, positionals) = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if command != "merge" && !positionals.is_empty() {
        eprintln!(
            "error: unexpected positional argument {:?}\n\n{USAGE}",
            positionals[0]
        );
        return ExitCode::FAILURE;
    }
    let result = match command.as_str() {
        "codecs" => cmd_codecs(&opts),
        "recommend" => cmd_recommend(&opts),
        "plan" => cmd_plan(&opts),
        "sweep" => cmd_sweep(&opts),
        "sweep-worker" => cmd_sweep_worker(&opts),
        "merge" => cmd_merge(&opts, &positionals),
        "map" => cmd_map(&opts),
        "adapt" => cmd_adapt(&opts),
        "send" => cmd_send(&opts),
        "recv" => cmd_recv(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
fec-broadcast — FEC scheduling & loss-distribution toolkit (INRIA RR-5578)

USAGE:
  fec-broadcast codecs
      List the registered erasure codecs (name, FTI id, (k, ratio)
      envelope). Every --code argument below accepts any listed name.

  fec-broadcast recommend [--p <p> --q <q>] [--high-loss]
      Rule-based §6.1 recommendations. With --p/--q: for that known channel.

  fec-broadcast plan --k <k> --ratio <r> --inef <i> --p <p> --q <q> [--tolerance <n>]
      Equation-3 transmission plan: how many packets to actually send.

  fec-broadcast sweep --code <name> --tx <1..6> --ratio <r>
                      [--k <k>] [--runs <n>] [--coarse] [--seed <n>]
                      [--workers <n>] [--out <file>]
                      [--shard <i/n> --emit-partial]
                      [--metrics-addr <addr:port>] [--telemetry-log <path>]
      Monte-Carlo (p,q) grid sweep; prints a paper-style inefficiency table.
      --workers N fans the sweep out over N single-threaded `sweep-worker`
      subprocesses (process count is the parallelism knob; without the
      flag the sweep uses an in-process thread pool over all cores, and
      the output bytes are identical either way). --shard i/n runs
      only that round-robin slice of the plan and --emit-partial saves it
      as a self-contained partial file (--out, default stdout) for a later
      `merge` — the multi-host recipe. --out saves the merged result JSON.

  fec-broadcast sweep-worker [--shard <i/n>] [--threads <n>]
      Worker half of the subprocess protocol: reads a sweep plan JSON
      document on stdin, streams one partial-result JSON line per
      completed work unit on stdout. Spawned by `sweep --workers`; also
      usable directly by external schedulers.

  fec-broadcast merge <partial.json>... [--out <file>]
      Combines partial files produced by `sweep --shard i/n --emit-partial`
      (all hosts must use identical sweep parameters) into the full sweep
      result, checking that every work unit is covered exactly once.

  fec-broadcast map [--ratio <r>]
      ASCII feasibility region (paper Fig. 6) for the given expansion ratio.

  fec-broadcast adapt [--k <k>] [--epochs <n>] [--seed <n>] [--window <pkts>]
                      [--no-plan]
      Closed-loop demo: online Gilbert estimation + adaptive tuple/plan
      selection on a regime-switching channel, compared against the best
      and worst static configurations in hindsight.

  fec-broadcast send --file <path> (--dest <addr:port> | --paths <a1:p1,a2:p2,...>)
                     [--tsi <n>] [--code <name>] [--tx <1..6>]
                     [--ratio <r>] [--symbol <bytes>] [--seed <n>]
                     [--loss-p <p> --loss-q <q>] [--pace <micros>]
                     [--adaptive --report-addr <addr:port>]
                     [--window <pkts>] [--replan-every <pkts>] [--fanout]
                     [--metrics-addr <addr:port>] [--telemetry-log <path>]
      FLUTE/ALC file broadcast over UDP. --loss-p/--loss-q inject Gilbert
      losses at the sender for reproducible demos. --pace sleeps that many
      microseconds between datagrams (default 0: full speed), stretching a
      session out so a human — or a Prometheus scrape — can watch it.
      With --adaptive the sender binds --report-addr for reception-report
      digests, estimates the channel online and truncates/extends the
      transmission live (§6.2 re-planning); receivers must run with
      `recv --report-to` set to the same address. --fanout swaps the
      single-stream feedback loop for the population aggregator: digests
      are keyed by source address, deduped per receiver, only the worst
      receiver's sketch reaches the estimator, and receiver NACKs become
      targeted repair symbols instead of whole-schedule extension — the
      multi-receiver mode (pair with `recv --nack --population`).
      --paths stripes the (static) schedule across several destinations
      with a credit scheduler: source symbols prefer the first-listed
      (fastest) path, repair symbols the last — list links fastest-first.
      Pair with a `recv` whose --listen names the same addresses. --pace
      then applies per path. Incompatible with --dest/--adaptive/--fanout.

  fec-broadcast recv --listen <addr:port>[,<addr:port>...] [--tsi <n>] [--out <path>]
                     [--timeout <secs>]
                     [--report-to <addr:port>] [--report-every <pkts>]
                     [--population <n>] [--jitter-seed <n>]
                     [--backoff <exp>] [--nack]
                     [--metrics-addr <addr:port>] [--telemetry-log <path>]
      Join a FLUTE session and reconstruct the broadcast file. With
      --report-to, emit reception-report digests (one per --report-every
      received datagrams, default 128) to the sender's feedback port.
      --population scales the digest interval by n/log₂n (RTCP-style
      suppression: aggregate feedback stays O(log n) across n receivers);
      --jitter-seed de-synchronises report times ±25%; --backoff doubles
      the interval up to 2^exp while the channel stays clean. --nack adds
      per-block missing-ESI lists to each digest so a `send --fanout`
      sender can emit targeted repairs. Several comma-separated --listen
      addresses bond the receive: one socket + drain thread per address,
      datagrams path-tagged into a single decoder (the receiving half of
      `send --paths`).

Observability (send / recv / sweep): --metrics-addr serves a Prometheus
text endpoint (`curl http://addr:port/metrics`) for the lifetime of the
command; --telemetry-log appends one JSON event per line to the given
file. With either flag, adaptive `send` also prints a SessionSummary
JSON document (goodput, overhead vs the static worst case, estimator
trajectory) on exit.

Probabilities are given as fractions (0.05 = 5%).";

/// Minimal `--key value` / `--flag` parser; non-flag arguments that do not
/// follow a `--key` are collected as positionals (the `merge` subcommand's
/// partial files).
fn parse_opts(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut out = HashMap::new();
    let mut positionals = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            positionals.push(arg.clone());
            continue;
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
            _ => String::from("true"), // bare flag
        };
        if out.insert(key.to_string(), value).is_some() {
            return Err(format!("--{key} given twice"));
        }
    }
    Ok((out, positionals))
}

fn get_f64(opts: &HashMap<String, String>, key: &str) -> Result<Option<f64>, String> {
    opts.get(key)
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("--{key} {v:?} is not a number"))
        })
        .transpose()
}

fn require_f64(opts: &HashMap<String, String>, key: &str) -> Result<f64, String> {
    get_f64(opts, key)?.ok_or_else(|| format!("--{key} is required"))
}

fn get_usize(opts: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} {v:?} is not an integer")),
        None => Ok(default),
    }
}

fn channel_from(opts: &HashMap<String, String>) -> Result<Option<GilbertParams>, String> {
    match (get_f64(opts, "p")?, get_f64(opts, "q")?) {
        (Some(p), Some(q)) => GilbertParams::new(p, q)
            .map(Some)
            .map_err(|e| e.to_string()),
        (None, None) => Ok(None),
        _ => Err("--p and --q must be given together".into()),
    }
}

/// Observability context shared by `send`, `recv` and `sweep`: the metric
/// registry (disabled — one dead branch per update site — unless a
/// telemetry flag is given), the Prometheus scrape endpoint, and the
/// structured event log with its optional JSONL sink.
struct Telemetry {
    registry: Registry,
    /// Holds the scrape endpoint open for the lifetime of the command.
    _server: Option<MetricsServer>,
    events: EventLog,
    sink: Option<JsonlSink>,
}

impl Telemetry {
    /// Parses `--metrics-addr` / `--telemetry-log`; with neither flag the
    /// registry is disabled and every instrument call is a no-op.
    fn from_opts(opts: &HashMap<String, String>) -> Result<Telemetry, String> {
        let metrics_addr = opts.get("metrics-addr");
        let log_path = opts.get("telemetry-log");
        let registry = if metrics_addr.is_some() || log_path.is_some() {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let server = metrics_addr
            .map(|addr| {
                MetricsServer::bind(addr, registry.clone())
                    .map_err(|e| format!("metrics endpoint {addr}: {e}"))
            })
            .transpose()?;
        if let Some(server) = &server {
            eprintln!("serving metrics on http://{}/metrics", server.local_addr());
        }
        let sink = log_path
            .map(|p| {
                JsonlSink::create(std::path::Path::new(p))
                    .map_err(|e| format!("telemetry log {p}: {e}"))
            })
            .transpose()?;
        Ok(Telemetry {
            registry,
            _server: server,
            events: EventLog::bounded(4096),
            sink,
        })
    }

    fn enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// Records `event` if telemetry is on (the log is bounded, so a burst
    /// between drains evicts oldest-first rather than growing).
    fn record(&self, event: Event) {
        if self.enabled() {
            self.events.record(event);
        }
    }

    /// Flushes buffered events to the JSONL sink, if one was requested.
    fn drain(&mut self) -> Result<(), String> {
        match &mut self.sink {
            Some(sink) => {
                sink.drain_from(&self.events)
                    .and_then(|_| sink.flush())
                    .map_err(|e| format!("telemetry log: {e}"))?;
            }
            None => {
                let _ = self.events.drain();
            }
        }
        Ok(())
    }
}

fn cmd_recommend(opts: &HashMap<String, String>) -> Result<(), String> {
    let knowledge = match (channel_from(opts)?, opts.contains_key("high-loss")) {
        (Some(ch), _) => {
            println!(
                "channel: p = {}, q = {} (p_global = {:.2}%, mean burst {:.1})\n",
                ch.p(),
                ch.q(),
                ch.global_loss_probability() * 100.0,
                ch.mean_burst_length().unwrap_or(f64::NAN)
            );
            ChannelKnowledge::Known(ch)
        }
        (None, true) => ChannelKnowledge::UnknownHighLoss,
        (None, false) => ChannelKnowledge::Unknown,
    };
    for (i, rec) in recommend(knowledge).iter().enumerate() {
        println!(
            "{}. {} + {} @ ratio {}\n   {}",
            i + 1,
            rec.code.name(),
            rec.tx.name(),
            rec.ratio.as_f64(),
            rec.rationale
        );
    }
    Ok(())
}

fn cmd_plan(opts: &HashMap<String, String>) -> Result<(), String> {
    let k = get_usize(opts, "k", 0)?;
    if k == 0 {
        return Err("--k is required".into());
    }
    let ratio = require_f64(opts, "ratio")?;
    let inef = require_f64(opts, "inef")?;
    let channel = channel_from(opts)?.ok_or("--p and --q are required")?;
    let tolerance = get_usize(opts, "tolerance", 0)? as u64;
    let n_total = (k as f64 * ratio).floor() as u64;
    let plan = TransmissionPlan::new(k, n_total, inef, channel, tolerance);
    println!(
        "object: k = {k}, n = {n_total} (ratio {ratio}); channel p_global = {:.2}%",
        plan.p_global * 100.0
    );
    println!(
        "send n_sent = {} packets (saves {} = {:.1}%)",
        plan.n_sent,
        plan.savings_packets(),
        plan.savings_fraction() * 100.0
    );
    println!(
        "expected deliveries: {:.0} for a requirement of {:.0} ({})",
        plan.expected_received(),
        plan.inefficiency * k as f64,
        if plan.is_sufficient() {
            "sufficient"
        } else {
            "INSUFFICIENT — even n packets cannot cover this channel"
        }
    );
    Ok(())
}

/// Parses `--code` against the codec registry (any registered name or
/// alias), defaulting to the paper's universal recommendation.
fn parse_code(
    opts: &HashMap<String, String>,
    default: Option<CodecHandle>,
) -> Result<CodecHandle, String> {
    match opts.get("code") {
        Some(token) => registry::resolve(token).map_err(|e| {
            format!(
                "{e} (try `fec-broadcast codecs`; registered: {})",
                registered_names().join(", ")
            )
        }),
        None => default.ok_or_else(|| {
            format!(
                "--code is required (one of: {})",
                registered_names().join(", ")
            )
        }),
    }
}

fn registered_names() -> Vec<String> {
    registry::registered()
        .iter()
        .map(|c| c.id().to_string())
        .collect()
}

fn cmd_codecs(_opts: &HashMap<String, String>) -> Result<(), String> {
    println!(
        "{:<16} {:<16} {:>6} {:>12} {:>13} {:>6} {:>6}",
        "name", "display", "fti", "k range", "ratio range", "seed", "block"
    );
    for code in registry::registered() {
        let env = code.envelope();
        println!(
            "{:<16} {:<16} {:>6} {:>12} {:>13} {:>6} {:>6}",
            code.id(),
            code.name(),
            code.fti_id()
                .map_or_else(|| "-".into(), |id| id.to_string()),
            format!("{}..{}", env.min_k, env.max_k),
            format!("{}..{}", env.min_ratio, env.max_ratio),
            if code.uses_matrix_seed() { "yes" } else { "no" },
            if code.is_large_block() {
                "large"
            } else {
                "small"
            },
        );
    }
    println!(
        "
aliases also resolve (e.g. \"staircase\", \"LdgmTriangle\", \"reed-solomon\");
ablation-only codecs (no FTI id) cannot be used with `send`."
    );
    Ok(())
}

/// Parses `--tx` as a paper model number.
fn parse_tx(opts: &HashMap<String, String>, default: Option<TxModel>) -> Result<TxModel, String> {
    match opts.get("tx").map(String::as_str) {
        Some("1") => Ok(TxModel::SourceSeqParitySeq),
        Some("2") => Ok(TxModel::SourceSeqParityRandom),
        Some("3") => Ok(TxModel::ParitySeqSourceRandom),
        Some("4") => Ok(TxModel::Random),
        Some("5") => Ok(TxModel::Interleaved),
        Some("6") => Ok(TxModel::tx6_paper()),
        Some(other) => Err(format!("unknown --tx {other:?} (1..6)")),
        None => default.ok_or_else(|| "--tx is required (1..6)".into()),
    }
}

/// Maps a numeric ratio onto the paper's enum values where exact.
fn ratio_from(r: f64) -> Result<ExpansionRatio, String> {
    if r < 1.0 {
        return Err(format!("--ratio {r} must be >= 1"));
    }
    Ok(if (r - 1.5).abs() < 1e-12 {
        ExpansionRatio::R1_5
    } else if (r - 2.5).abs() < 1e-12 {
        ExpansionRatio::R2_5
    } else {
        ExpansionRatio::Custom(r)
    })
}

/// Builds the sweep plan every `sweep`-family invocation shares: identical
/// flags on different hosts (or different `--shard` values) must produce
/// the identical plan document, or their partials will not merge.
fn sweep_plan(opts: &HashMap<String, String>) -> Result<(SweepPlan, String), String> {
    let code = parse_code(opts, None)?;
    let tx = parse_tx(opts, None)?;
    let ratio = ratio_from(require_f64(opts, "ratio")?)?;
    let k = get_usize(opts, "k", 2000)?;
    let runs = get_usize(opts, "runs", 20)? as u32;
    let seed = get_usize(opts, "seed", SweepConfig::default().seed as usize)? as u64;
    let grid = if opts.contains_key("coarse") {
        fec_broadcast::channel::grid::GridKind::Coarse.to_vec()
    } else {
        fec_broadcast::channel::grid::GridKind::Paper.to_vec()
    };

    let experiment = Experiment::new(code.clone(), k, ratio, tx);
    let config = SweepConfig {
        runs,
        grid_p: grid.clone(),
        grid_q: grid,
        seed,
        ..SweepConfig::default()
    };
    let description = format!(
        "{} / {} / ratio {} at k = {k}, {runs} runs per cell",
        code.name(),
        tx.name(),
        ratio.as_f64()
    );
    let plan = SweepPlan::new(experiment, config).map_err(|e| e.to_string())?;
    Ok((plan, description))
}

fn print_sweep_result(result: &fec_broadcast::sim::SweepResult) {
    println!("{}", report::paper_table(result));
    println!(
        "grand mean {} over {} decodable cells ({} masked)",
        result
            .grand_mean()
            .map_or_else(|| "-".into(), |m| format!("{m:.4}")),
        result.cells.len() - result.masked_cells(),
        result.masked_cells()
    );
}

fn write_or_print(out: Option<&String>, json: &str, what: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("{what} saved to {path}");
            Ok(())
        }
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn cmd_sweep(opts: &HashMap<String, String>) -> Result<(), String> {
    let (plan, description) = sweep_plan(opts)?;

    // Multi-host path: run one round-robin shard and save its partial.
    if let Some(shard_arg) = opts.get("shard") {
        let shard = ShardSpec::parse(shard_arg).map_err(|e| e.to_string())?;
        if !opts.contains_key("emit-partial") {
            return Err(
                "--shard requires --emit-partial (run the slice, save the partial, \
                 combine later with `merge`)"
                    .into(),
            );
        }
        eprintln!("sweeping shard {shard} of {description}…");
        let partial = distrib::run_shard(&plan, &shard).map_err(|e| e.to_string())?;
        let units = partial.units.len();
        let file = PartialFile {
            plan,
            units: partial.units,
        };
        // JSONL (header line + one unit per line) so `merge` can fold the
        // file unit-by-unit in constant memory.
        let jsonl = file.to_jsonl().map_err(|e| e.to_string())?;
        write_or_print(
            opts.get("out"),
            jsonl.trim_end(),
            &format!("partial result ({units} work units)"),
        )?;
        return Ok(());
    }
    if opts.contains_key("emit-partial") {
        return Err("--emit-partial requires --shard i/n".into());
    }

    // An explicit --workers N (including N = 1) always goes through the
    // coordinator — N single-threaded subprocesses, so process count is
    // the parallelism knob and `--workers 4` vs `--workers 1` measures
    // real scaling. Without the flag the sweep runs in-process on the
    // thread pool (all cores). Same bytes either way.
    let mut telemetry = Telemetry::from_opts(opts)?;
    let result = if opts.contains_key("workers") {
        let workers = get_usize(opts, "workers", 1)?.max(1);
        println!(
            "sweeping {description} across {workers} worker process(es) \
             ({} work units)…\n",
            plan.unit_count()
        );
        let mut coordinator = Coordinator::self_exec(workers).map_err(|e| e.to_string())?;
        if telemetry.enabled() {
            // Work units stream into the registry as workers report them,
            // so a mid-run scrape shows live progress.
            coordinator = coordinator.with_telemetry(&telemetry.registry);
        }
        coordinator.run(&plan).map_err(|e| e.to_string())?
    } else {
        println!("sweeping {description}…\n");
        distrib::execute_plan(&plan).map_err(|e| e.to_string())?
    };
    telemetry.record(Event::SweepProgress {
        units_done: plan.unit_count() as u64,
        units_total: plan.unit_count() as u64,
    });
    telemetry.drain()?;
    print_sweep_result(&result);
    if let Some(path) = opts.get("out") {
        let json = serde_json::to_string(&result).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("sweep result saved to {path}");
    }
    Ok(())
}

/// The subprocess half of `sweep --workers` (also usable by external
/// schedulers): plan JSON on stdin, one partial JSON line per completed
/// unit on stdout. Keep stdout pure — all diagnostics go to stderr.
fn cmd_sweep_worker(opts: &HashMap<String, String>) -> Result<(), String> {
    let shard = match opts.get("shard") {
        Some(s) => ShardSpec::parse(s).map_err(|e| e.to_string())?,
        None => ShardSpec::all(),
    };
    let threads = opts
        .get("threads")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--threads {v:?} is not an integer"))
        })
        .transpose()?;
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    distrib::run_worker(&mut stdin, &mut stdout, &shard, threads).map_err(|e| e.to_string())
}

fn cmd_merge(opts: &HashMap<String, String>, files: &[String]) -> Result<(), String> {
    if files.is_empty() {
        return Err("merge needs at least one partial file \
                    (produced by `sweep --shard i/n --emit-partial`)"
            .into());
    }
    // Streamed merge: each file folds into the plan's slot table one JSONL
    // unit line at a time, so multi-host merges at paper scale never load
    // a whole partial file into memory (legacy single-document partials
    // still work).
    let (result, total_units) = distrib::merge_paths(files).map_err(|e| e.to_string())?;
    eprintln!(
        "merged {} partial file(s) covering {total_units} work units\n",
        files.len()
    );
    print_sweep_result(&result);
    if let Some(path) = opts.get("out") {
        let json = serde_json::to_string(&result).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("merged sweep result saved to {path}");
    }
    Ok(())
}

fn cmd_map(opts: &HashMap<String, String>) -> Result<(), String> {
    let ratio = get_f64(opts, "ratio")?.unwrap_or(2.5);
    if ratio < 1.0 {
        return Err("--ratio must be >= 1".into());
    }
    let limit = FeasibilityLimit::ideal(ratio);
    println!(
        "decodable region for expansion ratio {ratio} (needs {:.0}% delivery):",
        limit.required_delivery_rate() * 100.0
    );
    println!("rows p = 0..1 top-down, cols q = 0..1 left-right; '#' feasible\n");
    let steps = 21;
    for pi in 0..steps {
        let p = pi as f64 / (steps - 1) as f64;
        let row: String = (0..steps)
            .map(|qi| {
                let q = qi as f64 / (steps - 1) as f64;
                if limit.is_feasible(p, q) {
                    '#'
                } else {
                    '.'
                }
            })
            .collect();
        println!("  p={p:>5.2} {row}");
    }
    Ok(())
}

fn cmd_adapt(opts: &HashMap<String, String>) -> Result<(), String> {
    use fec_broadcast::adapt::{AdaptiveRunner, ControllerConfig, Scenario};

    let k = get_usize(opts, "k", 400)?;
    let epochs = get_usize(opts, "epochs", 36)? as u32;
    let seed = get_usize(opts, "seed", 0x5EED_AD47)? as u64;
    let window = get_usize(opts, "window", 2_500)?;
    if k == 0 || epochs == 0 {
        return Err("--k and --epochs must be positive".into());
    }
    if window < 2 {
        return Err("--window must be at least 2".into());
    }

    let scenario = Scenario::regime_switching(k, epochs, seed);
    let config = ControllerConfig {
        window,
        min_observations: (k / 2).max(200),
        confirm_after: 1,
        ..ControllerConfig::default()
    };
    let mut runner = AdaptiveRunner::new(scenario, config);
    if opts.contains_key("no-plan") {
        runner = runner.without_plan_truncation();
    }

    println!(
        "closed loop: k = {k}, {epochs} epochs, estimation window {window} packets\n\
         regimes (cycling):"
    );
    for (i, r) in runner.scenario().regimes.iter().enumerate() {
        println!(
            "  {}: p = {:.3}, q = {:.3} (p_global = {:.1}%, mean burst {:.1}) for {} packets",
            i,
            r.params.p(),
            r.params.q(),
            r.params.global_loss_probability() * 100.0,
            r.params.mean_burst_length().unwrap_or(f64::NAN),
            r.packets
        );
    }

    let comparison = runner.compare();
    println!(
        "\n{:>5} {:>9} {:>9} {:>7} {:>7} {:>7}  decision",
        "epoch", "true-loss", "est-bound", "sent", "inef", "status"
    );
    for e in &comparison.adaptive.epochs {
        let true_params = GilbertParams::new(e.true_p, e.true_q).map_err(|err| err.to_string())?;
        println!(
            "{:>5} {:>8.1}% {:>9} {:>7} {:>7} {:>7}  {}{}",
            e.epoch,
            true_params.global_loss_probability() * 100.0,
            e.estimated_loss_bound
                .map_or_else(|| "-".into(), |b| format!("{:.1}%", b * 100.0)),
            e.n_sent,
            e.inefficiency(comparison.adaptive.k)
                .map_or_else(|| "-".into(), |i| format!("{i:.3}")),
            if e.decoded { "ok" } else { "FAIL" },
            e.decision,
            if e.switched { "  <- switched" } else { "" },
        );
    }

    println!("\nsummary (penalized mean inefficiency; failures charged at the tuple's ratio):");
    println!(
        "  adaptive    : {:.4}  ({} switches, {} failures, mean sent ratio {:.3})",
        comparison.adaptive.penalized_mean_inefficiency(),
        comparison.adaptive.switches,
        comparison.adaptive.failures(),
        comparison.adaptive.mean_sent_ratio()
    );
    println!(
        "  static best : {:.4}  ({})",
        comparison.oracle.penalized_mean_inefficiency(),
        comparison.oracle_decision
    );
    println!(
        "  static worst: {:.4}  ({})",
        comparison.worst.penalized_mean_inefficiency(),
        comparison.worst_decision
    );
    println!(
        "  oracle gap {:.3}x; {} the static worst case",
        comparison.oracle_gap(),
        if comparison.beats_worst_case() {
            "beats"
        } else {
            "DOES NOT beat"
        }
    );
    Ok(())
}

fn cmd_send(opts: &HashMap<String, String>) -> Result<(), String> {
    use fec_broadcast::flute::{FluteSender, SenderConfig};

    let path = opts.get("file").ok_or("--file is required")?;
    let tsi = get_usize(opts, "tsi", 1)? as u32;
    let code = parse_code(
        opts,
        Some(registry::resolve("ldgm-triangle").expect("builtin")),
    )?;
    let tx = parse_tx(opts, Some(TxModel::Random))?;
    let ratio = ratio_from(get_f64(opts, "ratio")?.unwrap_or(1.5))?;
    let symbol = get_usize(opts, "symbol", 1024)?;
    let seed = get_usize(opts, "seed", 1)? as u64;
    let pace = pacer_from_micros(get_usize(opts, "pace", 0)? as u64);
    let injected = channel_from_keys(opts, "loss-p", "loss-q")?;

    let object = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "object.bin".into());

    let mut session = FluteSender::new(SenderConfig::new(tsi));
    session
        .add_object(
            1,
            name.clone(),
            &object,
            code.clone(),
            ratio,
            symbol,
            seed,
            tx,
        )
        .map_err(|e| e.to_string())?;

    // Bonded striping: `--paths a1,a2,...` replaces `--dest` and fans
    // the one schedule out across several sockets.
    if let Some(paths_arg) = opts.get("paths") {
        if opts.contains_key("adaptive") || opts.contains_key("fanout") {
            return Err("--paths stripes a static schedule; it cannot combine with \
                 --adaptive or --fanout (run the feedback loop on one path)"
                .into());
        }
        if opts.contains_key("dest") {
            return Err("--paths replaces --dest (give every destination in --paths)".into());
        }
        return send_bonded(opts, &session, paths_arg, seed, tsi, &name, object.len());
    }

    let dest = opts.get("dest").ok_or("--dest is required (addr:port)")?;
    let socket = std::net::UdpSocket::bind("0.0.0.0:0").map_err(|e| e.to_string())?;
    let mut wire_tx = BatchSender::connect(socket, resolve_dest(dest)?, Backend::detect(), pace)
        .map_err(|e| format!("connect {dest}: {e}"))?;
    let mut telemetry = Telemetry::from_opts(opts)?;
    if telemetry.enabled() {
        wire_tx.attach_telemetry(&telemetry.registry);
    }
    // Opportunistic UDP GSO: the wire format is unchanged (the kernel
    // segments super-datagrams), so a refusal just means per-datagram sends.
    if wire_tx.enable_gso().is_ok() {
        eprintln!("wire: UDP generic segmentation offload active");
    }
    let mut sink = WireSink::new(wire_tx, injected, seed);
    let (sent, dropped, summary) = if opts.contains_key("fanout") {
        send_fanout(
            opts,
            &session,
            &mut sink,
            seed,
            tsi,
            &mut telemetry,
            object.len() as u64,
        )?
    } else if opts.contains_key("adaptive") {
        send_adaptive(
            opts,
            &session,
            &mut sink,
            seed,
            tsi,
            &mut telemetry,
            object.len() as u64,
        )?
    } else {
        send_static(
            &session,
            &mut sink,
            seed,
            tsi,
            &telemetry,
            object.len() as u64,
        )?
    };
    println!(
        "sent '{name}' ({} bytes) to {dest}: {sent} datagrams transmitted, {dropped} dropped by injected loss\n\
         session: tsi {tsi}, {} + {} @ ratio {}, {symbol}-byte symbols",
        object.len(),
        code.name(),
        tx.name(),
        ratio.as_f64()
    );
    if let Some(mut summary) = summary {
        summary.finalize();
        println!("{}", summary.to_json());
    }
    telemetry.drain()?;
    Ok(())
}

/// The bonded send loop (`send --paths a1,a2,...`): one FLUTE schedule
/// striped across N real sockets by a [`PathScheduler`] with uniform
/// shares and argument-order delay ranks (list the fastest link first —
/// source symbols prefer early paths, repair symbols late ones, after
/// Kurant's multipath-FEC ordering). Static schedule only; the in-band
/// feedback loops stay single-path.
fn send_bonded(
    opts: &HashMap<String, String>,
    session: &fec_broadcast::flute::FluteSender,
    paths_arg: &str,
    seed: u64,
    tsi: u32,
    name: &str,
    object_len: usize,
) -> Result<(), String> {
    use fec_broadcast::bond::PathScheduler;
    use fec_broadcast::telemetry::PathMetrics;

    let dests: Vec<&str> = paths_arg
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if dests.len() < 2 {
        return Err("--paths needs at least two comma-separated addr:port destinations".into());
    }
    let pace_micros = get_usize(opts, "pace", 0)? as u64;
    let injected = channel_from_keys(opts, "loss-p", "loss-q")?;
    let mut telemetry = Telemetry::from_opts(opts)?;

    // One wire stack per path. Injected loss (if any) walks an
    // independent Gilbert process per path, seeded per index, so a demo
    // shows genuinely heterogeneous links.
    let mut sinks: Vec<WireSink> = Vec::with_capacity(dests.len());
    for (i, dest) in dests.iter().enumerate() {
        let socket = std::net::UdpSocket::bind("0.0.0.0:0").map_err(|e| e.to_string())?;
        let mut wire_tx = BatchSender::connect(
            socket,
            resolve_dest(dest)?,
            Backend::detect(),
            pacer_from_micros(pace_micros),
        )
        .map_err(|e| format!("connect {dest}: {e}"))?;
        if telemetry.enabled() {
            wire_tx.attach_telemetry(&telemetry.registry);
        }
        let _ = wire_tx.enable_gso();
        sinks.push(WireSink::new(
            wire_tx,
            injected,
            seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
        ));
    }
    let path_metrics = telemetry
        .enabled()
        .then(|| PathMetrics::register_all(&telemetry.registry, dests.len()));

    let mut scheduler = PathScheduler::new(dests.len());
    let mut stream = session.stream(seed);
    if telemetry.enabled() {
        stream.attach_telemetry(&telemetry.registry);
        if let Some(metrics) = &path_metrics {
            for m in metrics {
                m.share.set(1.0 / dests.len() as f64);
            }
        }
    }
    let full_total = stream.full_total();
    telemetry.record(Event::SessionStart {
        tsi: tsi as u64,
        objects: session.fdt().files.len() as u32,
        full_schedule: full_total,
    });

    let mut bursts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); dests.len()];
    let mut sent_on = vec![0u64; dests.len()];
    let mut sent = 0u64;
    let mut flush = |path: usize,
                     bursts: &mut Vec<Vec<Vec<u8>>>,
                     sent_on: &mut Vec<u64>,
                     sent: &mut u64|
     -> Result<(), String> {
        if bursts[path].is_empty() {
            return Ok(());
        }
        let (delivered, _bytes) = sinks[path].send_burst(&bursts[path])?;
        sent_on[path] += delivered;
        *sent += delivered;
        if let Some(metrics) = &path_metrics {
            metrics[path].datagrams.add(delivered);
        }
        bursts[path].clear();
        Ok(())
    };
    while let Some((path, dg)) = stream
        .next_datagram_routed(|is_source| scheduler.route(is_source).unwrap_or(0))
        .map_err(|e| e.to_string())?
    {
        bursts[path].push(dg);
        if bursts[path].len() >= MAX_BURST {
            flush(path, &mut bursts, &mut sent_on, &mut sent)?;
        }
    }
    for path in 0..dests.len() {
        flush(path, &mut bursts, &mut sent_on, &mut sent)?;
    }
    let dropped: u64 = sinks.iter().map(WireSink::dropped).sum();
    telemetry.record(Event::SessionEnd {
        tsi: tsi as u64,
        datagrams: sent,
        planned: full_total,
        completed: 0,
    });
    telemetry.drain()?;

    let per_path: Vec<String> = dests
        .iter()
        .zip(&sent_on)
        .enumerate()
        .map(|(i, (dest, n))| {
            format!(
                "  path {i} -> {dest}: {n} datagrams ({} source, {} repair)",
                scheduler.source_routed(i),
                scheduler.repair_routed(i)
            )
        })
        .collect();
    println!(
        "sent '{name}' ({object_len} bytes) across {} bonded paths: \
         {sent} datagrams transmitted, {dropped} dropped by injected loss\n{}",
        dests.len(),
        per_path.join("\n")
    );
    Ok(())
}

/// Maps `--pace <micros>` onto the wire engine's token bucket.
/// `--pace 1000` stretches a loopback session to something a metrics
/// scrape (or a human with `curl`) can observe mid-flight. The default
/// keeps the historical gentle throttle — the old loop napped 300 µs
/// every 64 datagrams (≈213k datagrams/s), enough to keep a loopback
/// receiver's kernel queue from overflowing at full blast — while any
/// explicit value paces at exactly `1e6 / micros` datagrams/s with a
/// one-syscall burst allowance.
fn pacer_from_micros(micros: u64) -> Pacer {
    if micros == 0 {
        Pacer::rate(213_000.0, MAX_BURST as u32)
    } else {
        Pacer::per_datagram_micros(micros)
    }
}

/// Resolves `addr:port` to the first usable socket address.
fn resolve_dest(dest: &str) -> Result<std::net::SocketAddr, String> {
    use std::net::ToSocketAddrs;
    dest.to_socket_addrs()
        .map_err(|e| format!("resolve {dest}: {e}"))?
        .next()
        .ok_or_else(|| format!("{dest}: no usable address"))
}

/// The send-side wire stack: the batched engine, optionally behind a
/// Gilbert link emulator when `--loss-p/--loss-q` are given. Keeping the
/// emulator in front of the engine (rather than gating datagram-by-
/// datagram inside the send loops) means both send commands run the
/// exact same burst path as a clean session, and drop accounting comes
/// off the link's [`LinkStats`].
enum WireSink {
    Clean(BatchSender),
    Emulated {
        link: LinkEmulator,
        sender: BatchSender,
    },
}

impl WireSink {
    fn new(sender: BatchSender, injected: Option<GilbertParams>, seed: u64) -> WireSink {
        match injected {
            None => WireSink::Clean(sender),
            Some(params) => WireSink::Emulated {
                // Same loss-process seed the pre-engine loops used, so
                // a given seed reproduces the same erasure pattern.
                link: LinkEmulator::new(
                    Box::new(GilbertChannel::new(params, seed ^ 0x10c0)),
                    seed ^ 0x10c0,
                ),
                sender,
            },
        }
    }

    /// Sends one burst; returns `(datagrams delivered, payload bytes)`.
    /// Injected loss erases datagrams before the wire, so delivered can
    /// be less than offered — the gap shows up in [`WireSink::dropped`].
    fn send_burst<D: AsRef<[u8]>>(&mut self, burst: &[D]) -> Result<(u64, u64), String> {
        match self {
            WireSink::Clean(sender) => {
                let refs: Vec<&[u8]> = burst.iter().map(|d| d.as_ref()).collect();
                let bytes = refs.iter().map(|d| d.len() as u64).sum();
                let n = sender.send_burst(&refs).map_err(|e| e.to_string())?;
                Ok((n as u64, bytes))
            }
            WireSink::Emulated { link, sender } => {
                let survivors = link.transmit_batch(burst);
                let refs: Vec<&[u8]> = survivors.iter().map(|d| d.as_slice()).collect();
                let bytes = refs.iter().map(|d| d.len() as u64).sum();
                let n = sender.send_burst(&refs).map_err(|e| e.to_string())?;
                Ok((n as u64, bytes))
            }
        }
    }

    /// Datagrams the injected loss erased so far.
    fn dropped(&self) -> u64 {
        match self {
            WireSink::Clean(_) => 0,
            WireSink::Emulated { link, .. } => link.stats().dropped(),
        }
    }
}

/// The fixed-schedule send loop, instrumented: every burst bumps the
/// session counters so a scrape of `--metrics-addr` shows live progress.
/// The whole schedule rides the batched engine in [`MAX_BURST`]-datagram
/// syscalls.
fn send_static(
    session: &fec_broadcast::flute::FluteSender,
    sink: &mut WireSink,
    seed: u64,
    tsi: u32,
    telemetry: &Telemetry,
    object_bytes: u64,
) -> Result<(u64, u64, Option<SessionSummary>), String> {
    let datagrams = session.datagrams(seed).map_err(|e| e.to_string())?;
    let datagram_counter = telemetry.registry.counter_with(
        "fec_session_datagrams_total",
        "Datagrams emitted by the sender session, by kind.",
        &[("kind", "data")],
    );
    let byte_counter = telemetry.registry.counter(
        "fec_session_bytes_total",
        "UDP payload bytes emitted by the sender session.",
    );
    telemetry.record(Event::SessionStart {
        tsi: tsi as u64,
        objects: session.fdt().files.len() as u32,
        full_schedule: datagrams.len() as u64,
    });
    let started = std::time::Instant::now();
    let mut summary = SessionSummary::new(tsi as u64);
    summary.object_bytes = object_bytes;
    summary.full_schedule = datagrams.len() as u64;
    let mut sent = 0u64;
    for chunk in datagrams.chunks(MAX_BURST) {
        let (delivered, bytes) = sink.send_burst(chunk)?;
        sent += delivered;
        datagram_counter.add(delivered);
        byte_counter.add(bytes);
        summary.bytes_sent += bytes;
    }
    let dropped = sink.dropped();
    summary.datagrams_sent = sent;
    summary.elapsed_secs = started.elapsed().as_secs_f64();
    telemetry.record(Event::SessionEnd {
        tsi: tsi as u64,
        datagrams: sent,
        planned: datagrams.len() as u64,
        completed: 0,
    });
    Ok((sent, dropped, telemetry.enabled().then_some(summary)))
}

/// The live adaptive send loop: emit bursts through a [`SessionStream`],
/// drain reception-report digests from the feedback socket, and re-plan
/// the in-flight object between bursts. Every control decision lands in
/// the telemetry context as a structured event, and the
/// [`SessionSummary`] (returned when telemetry is on) captures the run's
/// goodput, overhead versus the static worst case, and the estimator
/// trajectory.
fn send_adaptive(
    opts: &HashMap<String, String>,
    session: &fec_broadcast::flute::FluteSender,
    sink: &mut WireSink,
    seed: u64,
    tsi: u32,
    telemetry: &mut Telemetry,
    object_bytes: u64,
) -> Result<(u64, u64, Option<SessionSummary>), String> {
    use fec_broadcast::adapt::ControllerConfig;
    use fec_broadcast::flute::feedback::FeedbackLoop;
    use fec_broadcast::flute::{ReceptionReport, ReportOutcome};
    use fec_broadcast::telemetry::EstimatorSample;

    let report_addr = opts
        .get("report-addr")
        .ok_or("--adaptive requires --report-addr (addr:port to receive digests on)")?;
    let window = get_usize(opts, "window", 20_000)?;
    let replan_every = get_usize(opts, "replan-every", 64)?.max(1);
    let report_socket =
        std::net::UdpSocket::bind(report_addr).map_err(|e| format!("bind {report_addr}: {e}"))?;
    // Digests ride the batched engine too: one non-blocking poll drains
    // every queued report in a single syscall on Linux.
    let mut report_rx = BatchReceiver::new(
        report_socket,
        BufferPool::with_config(2048, 64),
        Backend::detect(),
    );

    let mut feedback = FeedbackLoop::new(
        tsi,
        ControllerConfig {
            window,
            confirm_after: 1,
            ..ControllerConfig::default()
        },
    );
    let mut stream = session.stream(seed);
    if telemetry.enabled() {
        stream.attach_telemetry(&telemetry.registry);
        feedback.attach_telemetry(&telemetry.registry);
        report_rx.attach_telemetry(&telemetry.registry);
    }
    let full_total = stream.full_total();
    telemetry.record(Event::SessionStart {
        tsi: tsi as u64,
        objects: session.fdt().files.len() as u32,
        full_schedule: full_total,
    });
    let started = std::time::Instant::now();
    let mut summary = SessionSummary::new(tsi as u64);
    summary.object_bytes = object_bytes;
    summary.full_schedule = full_total;
    let mut sent = 0u64;
    // Bursts stay inside the replan cadence so control decisions keep
    // their per-`replan_every` granularity.
    let burst_cap = replan_every.min(MAX_BURST);
    let mut burst: Vec<Vec<u8>> = Vec::with_capacity(burst_cap);
    let mut offered = 0u64;
    let mut next_replan_at = replan_every as u64;
    let mut linger_until: Option<std::time::Instant> = None;

    loop {
        // Drain every pending digest.
        loop {
            let digests = report_rx
                .try_recv_burst(MAX_BURST)
                .map_err(|e| e.to_string())?;
            if digests.is_empty() {
                break;
            }
            for dg in &digests {
                let report = match ReceptionReport::from_bytes(dg) {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!("ignoring malformed digest: {e}");
                        continue;
                    }
                };
                match feedback.ingest(&report) {
                    ReportOutcome::Applied {
                        observations,
                        completed,
                    } => {
                        summary.digests_applied += 1;
                        summary.objects_completed += completed.len() as u32;
                        telemetry.record(Event::DigestReceived {
                            report_seq: report.report_seq as u64,
                            observations,
                            applied: true,
                        });
                        if telemetry.enabled() {
                            if let Some(est) = feedback.controller().estimate() {
                                telemetry.record(Event::EstimateUpdated {
                                    p: est.params.p(),
                                    q: est.params.q(),
                                    p_upper: est.p_global_upper(),
                                    window: feedback.controller().estimator().window_len() as u64,
                                });
                                summary.estimator.push(EstimatorSample {
                                    observations: feedback.stats().observations,
                                    p: est.params.p(),
                                    q: est.params.q(),
                                    p_upper: est.p_global_upper(),
                                });
                            }
                        }
                        // Objects the receiver already decoded need nothing
                        // more: stop their emission where it stands.
                        for toi in completed {
                            telemetry.record(Event::ObjectComplete { toi });
                            stream.stop_object(toi).map_err(|e| e.to_string())?;
                        }
                    }
                    // Stale or foreign: dropped by design, but still logged.
                    _ => telemetry.record(Event::DigestReceived {
                        report_seq: report.report_seq as u64,
                        observations: report.observations(),
                        applied: false,
                    }),
                }
            }
        }
        if feedback.session_complete() {
            eprintln!(
                "receiver reported the session complete after {sent} datagrams \
                 ({} planned, {full_total} full)",
                stream.planned_total()
            );
            break;
        }
        burst.clear();
        while burst.len() < burst_cap {
            match stream.next_datagram().map_err(|e| e.to_string())? {
                Some(dg) => burst.push(dg),
                None => break,
            }
        }
        if burst.is_empty() {
            // Planned emission exhausted: linger for the digests still
            // in flight before declaring the plan insufficient.
            let now = std::time::Instant::now();
            match linger_until {
                None => linger_until = Some(now + std::time::Duration::from_millis(1500)),
                Some(deadline) if now < deadline => {}
                Some(_) => {
                    if stream.planned_total() < full_total {
                        // The plan was too optimistic: fall back to the
                        // full schedules and keep going.
                        eprintln!(
                            "no completion report after the planned {} datagrams; \
                             reverting to the full schedule",
                            stream.planned_total()
                        );
                        feedback.record_failure();
                        summary.backoffs += 1;
                        for toi in session.fdt().files.iter().map(|f| f.toi) {
                            if !feedback.is_complete(toi) {
                                telemetry.record(Event::BackoffTriggered { reverted: toi });
                                stream.amend_plan(toi, None).map_err(|e| e.to_string())?;
                            }
                        }
                        linger_until = None;
                    } else {
                        eprintln!(
                            "full schedule exhausted without a completion report \
                             (receiver gone, or losses beyond the code budget)"
                        );
                        break;
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            continue;
        }
        linger_until = None;
        offered += burst.len() as u64;
        let (delivered, bytes) = sink.send_burst(&burst)?;
        sent += delivered;
        summary.bytes_sent += bytes;
        // Re-plan the in-flight object periodically.
        if offered >= next_replan_at {
            next_replan_at = offered + replan_every as u64;
            if let Some(toi) = stream.current_toi() {
                let k = stream.source_count(toi).expect("in-flight TOI") as usize;
                let replan = feedback.replan(k);
                summary.replans += 1;
                stream
                    .amend_plan(toi, replan.plan.as_ref())
                    .map_err(|e| e.to_string())?;
                telemetry.record(Event::ReplanIssued {
                    toi,
                    target: replan.plan.as_ref().map_or(full_total, |p| p.n_sent),
                    schedule: stream.planned_total(),
                });
            }
        }
    }
    let dropped = sink.dropped();
    summary.datagrams_sent = sent;
    summary.elapsed_secs = started.elapsed().as_secs_f64();
    telemetry.record(Event::SessionEnd {
        tsi: tsi as u64,
        datagrams: sent,
        planned: stream.planned_total(),
        completed: summary.objects_completed,
    });
    let stats = feedback.stats();
    eprintln!(
        "feedback: {} digests applied ({} stale, {} foreign), {} observations; \
         estimator bound {}",
        stats.applied,
        stats.stale,
        stats.foreign,
        stats.observations,
        feedback.controller().estimate().map_or_else(
            || "-".into(),
            |e| format!("{:.2}%", e.p_global_upper() * 100.0)
        ),
    );
    Ok((sent, dropped, telemetry.enabled().then_some(summary)))
}

/// The population-scale send loop (`send --fanout`): digests from any
/// number of receivers land in a [`FeedbackAggregator`] keyed by source
/// address — deduped per receiver, only the worst receiver's sketch
/// folded into the estimator — and the population's NACK union drains
/// into *targeted* repair symbols instead of whole-schedule extension.
/// Structure mirrors [`send_adaptive`]; the differences are exactly the
/// three fan-out layers (aggregation, suppression-aware ingest, NACK
/// repair).
fn send_fanout(
    opts: &HashMap<String, String>,
    session: &fec_broadcast::flute::FluteSender,
    sink: &mut WireSink,
    seed: u64,
    tsi: u32,
    telemetry: &mut Telemetry,
    object_bytes: u64,
) -> Result<(u64, u64, Option<SessionSummary>), String> {
    use std::collections::BTreeMap;

    use fec_broadcast::adapt::ControllerConfig;
    use fec_broadcast::flute::feedback::{AggregateOutcome, AggregatorConfig, FeedbackAggregator};
    use fec_broadcast::flute::ReceptionReport;
    use fec_broadcast::telemetry::EstimatorSample;

    let report_addr = opts
        .get("report-addr")
        .ok_or("--fanout requires --report-addr (addr:port to receive digests on)")?;
    let window = get_usize(opts, "window", 20_000)?;
    let replan_every = get_usize(opts, "replan-every", 64)?.max(1);
    let report_socket =
        std::net::UdpSocket::bind(report_addr).map_err(|e| format!("bind {report_addr}: {e}"))?;
    // The feedback drain needs source addresses (the aggregator's key),
    // so it rides the engine's address-aware control-plane poll rather
    // than the batched data-plane path.
    let mut report_rx = BatchReceiver::new(
        report_socket,
        BufferPool::with_config(2048, 64),
        Backend::detect(),
    );

    let mut agg = FeedbackAggregator::new(
        tsi,
        AggregatorConfig::default(),
        ControllerConfig {
            window,
            confirm_after: 1,
            ..ControllerConfig::default()
        },
    );
    let mut stream = session.stream(seed);
    if telemetry.enabled() {
        stream.attach_telemetry(&telemetry.registry);
        agg.attach_telemetry(&telemetry.registry);
        report_rx.attach_telemetry(&telemetry.registry);
    }
    let full_total = stream.full_total();
    telemetry.record(Event::SessionStart {
        tsi: tsi as u64,
        objects: session.fdt().files.len() as u32,
        full_schedule: full_total,
    });
    let started = std::time::Instant::now();
    let mut summary = SessionSummary::new(tsi as u64);
    summary.object_bytes = object_bytes;
    summary.full_schedule = full_total;
    let mut sent = 0u64;
    let burst_cap = replan_every.min(MAX_BURST);
    let mut burst: Vec<Vec<u8>> = Vec::with_capacity(burst_cap);
    let mut offered = 0u64;
    let mut next_replan_at = replan_every as u64;
    let mut linger_until: Option<std::time::Instant> = None;
    let mut stopped: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut repairs_queued = 0u64;

    loop {
        // Drain every pending digest, keyed by the receiver that sent it.
        loop {
            let digests = report_rx
                .try_recv_burst_from(MAX_BURST)
                .map_err(|e| e.to_string())?;
            if digests.is_empty() {
                break;
            }
            for (dg, src) in &digests {
                let report = match ReceptionReport::from_bytes(dg) {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!("ignoring malformed digest from {src}: {e}");
                        continue;
                    }
                };
                let outcome = agg.ingest(*src, &report);
                // Fresh digests advance population state whether or not
                // they reach the estimator; dedups and foreigners don't.
                let applied = matches!(
                    outcome,
                    AggregateOutcome::Folded { .. } | AggregateOutcome::Accepted
                );
                if applied {
                    summary.digests_applied += 1;
                }
                telemetry.record(Event::DigestReceived {
                    report_seq: report.report_seq as u64,
                    observations: report.observations(),
                    applied,
                });
                if telemetry.enabled() && matches!(outcome, AggregateOutcome::Folded { .. }) {
                    if let Some(est) = agg.controller().estimate() {
                        telemetry.record(Event::EstimateUpdated {
                            p: est.params.p(),
                            q: est.params.q(),
                            p_upper: est.p_global_upper(),
                            window: agg.controller().estimator().window_len() as u64,
                        });
                        summary.estimator.push(EstimatorSample {
                            observations: agg.stats().observations,
                            p: est.params.p(),
                            q: est.params.q(),
                            p_upper: est.p_global_upper(),
                        });
                    }
                }
            }
        }
        // Objects the whole tracked population decoded stop where they
        // stand (a later joiner's digest reopens them via NACKs).
        let complete: Vec<u32> = agg
            .completed()
            .filter(|toi| !stopped.contains(toi))
            .collect();
        for toi in complete {
            stopped.insert(toi);
            summary.objects_completed += 1;
            telemetry.record(Event::ObjectComplete { toi });
            stream.stop_object(toi).map_err(|e| e.to_string())?;
        }
        if agg.session_complete() {
            eprintln!(
                "all {} tracked receivers report the session complete after {sent} datagrams \
                 ({} planned, {full_total} full)",
                agg.receiver_count(),
                stream.planned_total()
            );
            break;
        }
        // Targeted repair: the population's missing-symbol union becomes
        // queued repair packets (deduped downstream against in-flight
        // schedule slots), not a longer carousel.
        let requests = agg.take_nack_requests();
        if !requests.is_empty() {
            let mut by_toi: BTreeMap<u32, Vec<fec_broadcast::flute::feedback::NackEntry>> =
                BTreeMap::new();
            for req in requests {
                by_toi.entry(req.toi).or_default().push(req);
            }
            for (toi, group) in by_toi {
                let requested: u64 = group.iter().map(|g| g.esis.len() as u64).sum();
                let queued = stream.queue_repair(&group);
                repairs_queued += queued;
                telemetry.record(Event::RepairQueued {
                    toi,
                    requested,
                    queued,
                });
            }
        }
        burst.clear();
        while burst.len() < burst_cap {
            match stream.next_datagram().map_err(|e| e.to_string())? {
                Some(dg) => burst.push(dg),
                None => break,
            }
        }
        if burst.is_empty() {
            // Planned emission (and repair queue) exhausted: linger for
            // digests still in flight before judging the plan.
            let now = std::time::Instant::now();
            match linger_until {
                None => linger_until = Some(now + std::time::Duration::from_millis(1500)),
                Some(deadline) if now < deadline => {}
                Some(_) => {
                    if stream.planned_total() < full_total {
                        eprintln!(
                            "population incomplete after the planned {} datagrams; \
                             reverting to the full schedule",
                            stream.planned_total()
                        );
                        agg.record_failure();
                        summary.backoffs += 1;
                        for toi in session.fdt().files.iter().map(|f| f.toi) {
                            if !agg.is_complete(toi) {
                                telemetry.record(Event::BackoffTriggered { reverted: toi });
                                stream.amend_plan(toi, None).map_err(|e| e.to_string())?;
                            }
                        }
                        linger_until = None;
                    } else {
                        eprintln!(
                            "full schedule exhausted without population completion \
                             ({} receivers tracked, median completion {:.0}%; \
                             receivers gone, or losses beyond the code budget)",
                            agg.receiver_count(),
                            agg.summary().completion_quantiles[1] * 100.0
                        );
                        break;
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            continue;
        }
        linger_until = None;
        offered += burst.len() as u64;
        let (delivered, bytes) = sink.send_burst(&burst)?;
        sent += delivered;
        summary.bytes_sent += bytes;
        // Re-plan (and advance the idle-eviction clock) periodically.
        if offered >= next_replan_at {
            next_replan_at = offered + replan_every as u64;
            agg.advance_tick();
            if let Some((toi, k)) = stream
                .current_toi()
                .and_then(|toi| stream.source_count(toi).map(|k| (toi, k)))
            {
                let replan = agg.replan(k as usize);
                summary.replans += 1;
                stream
                    .amend_plan(toi, replan.plan.as_ref())
                    .map_err(|e| e.to_string())?;
                telemetry.record(Event::ReplanIssued {
                    toi,
                    target: replan.plan.as_ref().map_or(full_total, |p| p.n_sent),
                    schedule: stream.planned_total(),
                });
            }
        }
    }
    let dropped = sink.dropped();
    summary.datagrams_sent = sent;
    summary.elapsed_secs = started.elapsed().as_secs_f64();
    telemetry.record(Event::SessionEnd {
        tsi: tsi as u64,
        datagrams: sent,
        planned: stream.planned_total(),
        completed: summary.objects_completed,
    });
    let stats = agg.stats();
    let pop = agg.summary();
    eprintln!(
        "fan-out feedback: {} receivers tracked, {} digests \
         ({} folded, {} accepted, {} deduped, {} evicted), \
         {} observations, {repairs_queued} targeted repairs; \
         worst receiver loss {:.2}%, completion p10/p50/p90 {:.0}%/{:.0}%/{:.0}%",
        pop.receivers,
        stats.ingested,
        stats.folded,
        stats.accepted,
        stats.deduped,
        stats.evicted,
        stats.observations,
        pop.worst_loss * 100.0,
        pop.completion_quantiles[0] * 100.0,
        pop.completion_quantiles[1] * 100.0,
        pop.completion_quantiles[2] * 100.0,
    );
    Ok((sent, dropped, telemetry.enabled().then_some(summary)))
}

fn cmd_recv(opts: &HashMap<String, String>) -> Result<(), String> {
    use fec_broadcast::flute::feedback::ReportConfig;
    use fec_broadcast::flute::FluteReceiver;

    let listen = opts
        .get("listen")
        .ok_or("--listen is required (addr:port, or a1:p1,a2:p2,... to bond)")?;
    let addrs: Vec<&str> = listen
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("--listen needs at least one addr:port".into());
    }
    let tsi = get_usize(opts, "tsi", 1)? as u32;
    let timeout = get_usize(opts, "timeout", 10)? as u64;
    let report_every = get_usize(opts, "report-every", 128)?.max(1);

    let mut telemetry = Telemetry::from_opts(opts)?;
    println!(
        "listening on {listen} for FLUTE session tsi {tsi} \
         ({} path(s), timeout {timeout}s)…",
        addrs.len()
    );

    // The reception-report return channel, if the sender runs adaptively.
    let reporting = match opts.get("report-to") {
        Some(addr) => {
            let report_socket =
                std::net::UdpSocket::bind("0.0.0.0:0").map_err(|e| e.to_string())?;
            Some((report_socket, addr.clone()))
        }
        None => None,
    };

    // Drain each socket on a dedicated thread so a slow decode never lets
    // the kernel receive buffer overflow (which silently drops datagrams
    // the FEC budget then has to absorb twice). The drain rides the
    // batched engine: one `recvmmsg` syscall per burst, pooled buffers
    // instead of a fresh allocation per datagram, and an error
    // discipline (see [`live::drain_loop`]) that retries `EINTR` and
    // survives transient socket errors instead of silently ending the
    // session. With several `--listen` addresses (a bonded sender's
    // `send --paths`), each socket's drain tags its datagrams with the
    // path index so per-path sequence accounting stays honest.
    let bonded = addrs.len() > 1;
    let pool = BufferPool::new();
    if telemetry.enabled() {
        pool.attach_telemetry(&telemetry.registry);
    }
    let (single_tx, single_rx) = std::sync::mpsc::channel();
    let (tagged_tx, tagged_rx) = std::sync::mpsc::channel();
    for (path, addr) in addrs.iter().enumerate() {
        let socket = std::net::UdpSocket::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        socket
            .set_read_timeout(Some(std::time::Duration::from_secs(timeout)))
            .map_err(|e| e.to_string())?;
        let mut wire_rx = BatchReceiver::new(socket, pool.clone(), Backend::detect());
        wire_rx.request_recv_buffer(4 << 20);
        // Opportunistic UDP GRO: coalesced payloads are split back into
        // the original datagrams before decode, so decoding is
        // offload-agnostic.
        if wire_rx.enable_gro().is_ok() {
            eprintln!("wire: UDP generic receive offload active on {addr}");
        }
        if telemetry.enabled() {
            wire_rx.attach_telemetry(&telemetry.registry);
        }
        if bonded {
            drop(live::spawn_drain_on(wire_rx, path, tagged_tx.clone()));
        } else {
            drop(live::spawn_drain(wire_rx, single_tx.clone()));
        }
    }
    // The decode side must observe disconnect when every drain ends.
    drop(single_tx);
    drop(tagged_tx);

    let mut session = FluteReceiver::new(tsi);
    if reporting.is_some() {
        session.enable_reports(ReportConfig {
            report_every,
            population_hint: (get_usize(opts, "population", 1)? as u64).max(1),
            jitter_seed: get_usize(opts, "jitter-seed", 0)? as u64,
            max_backoff_exp: get_usize(opts, "backoff", 0)? as u32,
            ..ReportConfig::default()
        });
        if opts.contains_key("nack") {
            session.enable_nacks();
        }
    }
    if telemetry.enabled() {
        session.attach_telemetry(&telemetry.registry);
    }
    let events = telemetry.events.clone();
    let record_events = telemetry.enabled();
    let ship = |report: &fec_broadcast::flute::ReceptionReport| -> Result<(), String> {
        if record_events {
            events.record(Event::DigestEmitted {
                report_seq: report.report_seq as u64,
                observations: report.observations(),
            });
        }
        if let Some((sock, addr)) = &reporting {
            let bytes = report.to_bytes().map_err(|e| e.to_string())?;
            sock.send_to(&bytes, addr.as_str())
                .map_err(|e| format!("report to {addr}: {e}"))?;
        }
        Ok(())
    };

    // The decode loop lives in [`live::receive_session`]: bursts from the
    // drain thread feed the decoder's batched path, digests ship through
    // the *lossy* return channel (a failed send is counted, never fatal),
    // and a malformed datagram costs itself, not its burst.
    let config = live::ReceiveConfig {
        rejected_counter: Some(telemetry.registry.counter(
            "fec_session_rejected_datagrams_total",
            "Datagrams the receiver rejected as malformed or undecodable.",
        )),
        ship_failure_counter: Some(telemetry.registry.counter(
            "fec_session_report_ship_failures_total",
            "Reception-report digests that failed to ship (lossy return channel).",
        )),
        ..Default::default()
    };
    let outcome = if bonded {
        live::receive_session_multipath(&mut session, &tagged_rx, ship, &config)?
    } else {
        live::receive_session(&mut session, &single_rx, ship, &config)?
    };
    let live::ReceiveOutcome { toi, datagrams, .. } = outcome;
    if outcome.rejected > 0 || outcome.ship_failures > 0 {
        eprintln!(
            "survived wire faults: {} datagrams rejected, {} digests unshipped",
            outcome.rejected, outcome.ship_failures
        );
    }
    telemetry.record(Event::ObjectComplete { toi });
    // Attribute any loss runs still unrepaired to the residual histogram
    // before the final scrape / event drain.
    session.finalize_telemetry();
    telemetry.drain()?;

    let location = session
        .fdt()
        .and_then(|f| f.file(toi))
        .map(|f| f.content_location.clone())
        .unwrap_or_else(|| format!("toi-{toi}.bin"));
    let received = session.packets_received(toi);
    let object = session.take_object(toi).expect("object completed");
    let out_path = opts.get("out").cloned().unwrap_or_else(|| {
        std::path::Path::new(&location)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| format!("toi-{toi}.bin"))
    });
    std::fs::write(&out_path, &object).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "decoded '{location}' -> {out_path}: {} bytes from {received} data packets \
         ({datagrams} datagrams consumed)",
        object.len()
    );
    Ok(())
}

/// Like [`channel_from`] but with configurable option names.
fn channel_from_keys(
    opts: &HashMap<String, String>,
    p_key: &str,
    q_key: &str,
) -> Result<Option<GilbertParams>, String> {
    match (get_f64(opts, p_key)?, get_f64(opts, q_key)?) {
        (Some(p), Some(q)) => GilbertParams::new(p, q)
            .map(Some)
            .map_err(|e| e.to_string()),
        (None, None) => Ok(None),
        _ => Err(format!("--{p_key} and --{q_key} must be given together")),
    }
}
