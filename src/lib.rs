//! # fec-broadcast
//!
//! A packet-level Forward Error Correction toolkit reproducing *"Impacts of
//! Packet Scheduling and Packet Loss Distribution on FEC Performances:
//! Observations and Recommendations"* (Neumann, Roca, Francillon, Furodet —
//! INRIA RR-5578 / CoNEXT 2005).
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names so applications can depend on a single crate.
//!
//! ```
//! use fec_broadcast::prelude::*;
//!
//! // Encode a tiny object with LDGM Staircase, push packets through a lossy
//! // Gilbert channel in Tx_model_4 (fully random) order, and decode.
//! let spec = CodeSpec::ldgm_staircase(100, ExpansionRatio::R2_5);
//! let object: Vec<u8> = (0..100u32 * 16).map(|i| (i % 251) as u8).collect();
//! let mut sender = Sender::new(spec.clone(), &object, 16).unwrap();
//! let schedule = TxModel::Random.schedule(sender.layout(), 7);
//! let mut receiver = Receiver::new(spec, object.len(), 16).unwrap();
//! let mut channel = GilbertChannel::new(GilbertParams::new(0.05, 0.6).unwrap(), 99);
//! for r in schedule {
//!     if channel.next_is_lost() {
//!         continue;
//!     }
//!     let pkt = sender.packet(r).unwrap();
//!     if receiver.push(&pkt).unwrap().is_decoded() {
//!         break;
//!     }
//! }
//! assert_eq!(receiver.into_object().unwrap(), object);
//! ```

pub mod live;

pub use fec_adapt as adapt;
pub use fec_bond as bond;
pub use fec_channel as channel;
pub use fec_codec as codec;
pub use fec_core as core;
pub use fec_distrib as distrib;
pub use fec_flute as flute;
pub use fec_gf256 as gf256;
pub use fec_ldgm as ldgm;
pub use fec_rse as rse;
pub use fec_sched as sched;
pub use fec_sim as sim;
pub use fec_telemetry as telemetry;
pub use fec_wire as wire;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use bytes::Bytes;
    pub use fec_adapt::{
        AdaptiveController, AdaptiveRunner, ControllerConfig, OnlineGilbertEstimator, Scenario,
    };
    pub use fec_bond::{BondConfig, BondedSession, PathScheduler};
    pub use fec_channel::{DriftingChannel, GilbertChannel, GilbertParams, LossModel, Regime};
    pub use fec_codec::{
        CodecHandle, CodecRegistry, DecodeProgress, Envelope, ErasureCode, SessionParams,
    };
    pub use fec_core::{
        recommend, Carousel, ChannelKnowledge, CodeSpec, MeasuredSelector, Packet, Receiver,
        Recommendation, Sender, TransmissionPlan,
    };
    pub use fec_distrib::{Coordinator, PartialFile, PartialSweep, ShardSpec, SweepPlan};
    pub use fec_flute::{FluteReceiver, FluteSender, ObjectStatus, ReceiverEvent, SenderConfig};
    pub use fec_sched::{Layout, PacketRef, RxModel, TxModel};
    pub use fec_sim::{
        CodeKind, ExpansionRatio, Experiment, GridSweep, Runner, SweepConfig, SweepResult,
    };
    pub use fec_telemetry::{Event, EventLog, JsonlSink, MetricsServer, Registry, SessionSummary};
}
