//! Live-session wire plumbing shared by the CLI and the fault tests.
//!
//! The `send`/`recv` commands used to speak to their sockets directly,
//! and three latent bugs lived in that plumbing: the receive drain thread
//! died on *any* `recv_from` error (a stray `EINTR` ended the session),
//! a single failed digest `send_to` aborted the whole receive (the return
//! channel is lossy by design), and one malformed datagram could poison
//! an entire decode burst. This module centralises the loops so the
//! fixes are testable without sockets:
//!
//! * [`drain_loop`] / [`spawn_drain`] — pull bursts from a
//!   [`BurstSource`] (the batched engine's [`BatchReceiver`], or a
//!   scripted source in tests) and forward datagrams to the decode
//!   thread. Errors route through
//!   [`fec_wire::classify_recv_error`]: interrupted
//!   syscalls retry, only an idle read timeout ends the session, and
//!   anything else is logged, counted, and survived.
//! * [`receive_session`] — the decode loop. Reception reports ship
//!   through a *lossy* hook: failures are counted and logged, never
//!   fatal.
//! * [`push_salvaging`] — feeds a burst to the FLUTE receiver and, if
//!   the batched path reports an error, replays the burst one datagram
//!   at a time so the bad datagram is skipped instead of sinking its
//!   4000-odd good neighbours.

use std::io;
use std::sync::mpsc;
use std::time::Duration;

use fec_flute::{FluteReceiver, ReceiverEvent, ReceptionReport};
use fec_telemetry::Counter;
use fec_wire::{classify_recv_error, BatchReceiver, PoolBuf, RecvDisposition, MAX_BURST};

/// Consecutive transient receive errors tolerated before the drain loop
/// concludes the socket is wedged and gives up. Transients are expected
/// in ones and twos (an ICMP-reflected `ECONNREFUSED`, a spurious kernel
/// hiccup); a thousand in a row with no successful read in between means
/// retrying is just spinning.
pub const TRANSIENT_ERROR_CAP: u32 = 1000;

/// Anything a drain loop can pull datagram bursts from: the batched
/// engine's [`BatchReceiver`] in production, a scripted source in tests.
pub trait BurstSource {
    /// Blocks for the next burst (honouring any configured read
    /// timeout). `max` bounds the number of wire messages read per call;
    /// with UDP GRO active one wire message may carry several coalesced
    /// datagrams, so the returned burst can exceed `max` entries.
    fn recv_burst(&mut self, max: usize) -> io::Result<Vec<PoolBuf>>;
}

impl BurstSource for BatchReceiver {
    fn recv_burst(&mut self, max: usize) -> io::Result<Vec<PoolBuf>> {
        BatchReceiver::recv_burst(self, max)
    }
}

/// What a drain loop did before it ended.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainStats {
    /// Bursts pulled from the source.
    pub bursts: u64,
    /// Datagrams forwarded to the decode thread.
    pub datagrams: u64,
    /// Interrupted syscalls retried (`EINTR`).
    pub retries: u64,
    /// Transient errors survived.
    pub transients: u64,
}

/// Where a drain loop forwards datagrams: the plain channel in the
/// single-socket session, or a path-tagging channel when the receiver is
/// bound to several addresses (bonded transport's multi-bind mode).
pub trait DatagramSink {
    /// Forwards one datagram; `false` means the decode side hung up.
    fn forward(&self, datagram: PoolBuf) -> bool;
}

impl DatagramSink for mpsc::Sender<PoolBuf> {
    fn forward(&self, datagram: PoolBuf) -> bool {
        self.send(datagram).is_ok()
    }
}

/// Tags every datagram with the path index of the socket it arrived on,
/// so the decode loop can keep per-path EXT_SEQ accounting honest.
pub struct TaggedSink {
    /// The bonded path index this sink's socket belongs to.
    pub path: usize,
    /// The shared decode-side channel.
    pub tx: mpsc::Sender<(usize, PoolBuf)>,
}

impl DatagramSink for TaggedSink {
    fn forward(&self, datagram: PoolBuf) -> bool {
        self.tx.send((self.path, datagram)).is_ok()
    }
}

/// Pulls bursts from `source` and forwards each datagram into `tx` until
/// the session ends. The error discipline is the whole point:
///
/// * `Interrupted` (`EINTR`) — retry immediately; a signal delivery is
///   not an event.
/// * `WouldBlock` / `TimedOut` — the read timeout expired with no
///   traffic: the one legitimate way a session goes idle. Return.
/// * anything else — log it, count it, sleep a moment, keep receiving.
///   After [`TRANSIENT_ERROR_CAP`] consecutive failures give up (the
///   socket is wedged, not hiccuping).
///
/// Also returns when the decode side hangs up (`tx` disconnected).
pub fn drain_loop<S: BurstSource, T: DatagramSink>(
    source: &mut S,
    tx: &T,
    max_burst: usize,
) -> DrainStats {
    let mut stats = DrainStats::default();
    let mut consecutive_transients = 0u32;
    loop {
        match source.recv_burst(max_burst) {
            Ok(burst) => {
                consecutive_transients = 0;
                stats.bursts += 1;
                stats.datagrams += burst.len() as u64;
                for dg in burst {
                    if !tx.forward(dg) {
                        return stats; // decoder hung up: session is over
                    }
                }
            }
            Err(e) => match classify_recv_error(&e) {
                RecvDisposition::Retry => stats.retries += 1,
                RecvDisposition::SessionIdle => return stats,
                RecvDisposition::Transient => {
                    stats.transients += 1;
                    consecutive_transients += 1;
                    if stats.transients <= 5 || consecutive_transients == TRANSIENT_ERROR_CAP {
                        eprintln!("transient receive error (continuing): {e}");
                    }
                    if consecutive_transients >= TRANSIENT_ERROR_CAP {
                        eprintln!(
                            "{TRANSIENT_ERROR_CAP} consecutive receive errors; giving up on the socket"
                        );
                        return stats;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            },
        }
    }
}

/// Runs [`drain_loop`] on a dedicated thread so a slow decode never lets
/// the kernel receive queue overflow. The handle yields the loop's
/// [`DrainStats`]; dropping it detaches the thread (the CLI does).
pub fn spawn_drain<S>(
    mut source: S,
    tx: mpsc::Sender<PoolBuf>,
) -> std::thread::JoinHandle<DrainStats>
where
    S: BurstSource + Send + 'static,
{
    std::thread::spawn(move || drain_loop(&mut source, &tx, MAX_BURST))
}

/// Like [`spawn_drain`], but every datagram is tagged with `path` — one
/// call per bound socket in the receiver's multi-bind (bonded) mode, all
/// feeding the same decode channel.
pub fn spawn_drain_on<S>(
    mut source: S,
    path: usize,
    tx: mpsc::Sender<(usize, PoolBuf)>,
) -> std::thread::JoinHandle<DrainStats>
where
    S: BurstSource + Send + 'static,
{
    std::thread::spawn(move || drain_loop(&mut source, &TaggedSink { path, tx }, MAX_BURST))
}

/// Feeds a burst through [`FluteReceiver::push_datagrams`]; if the
/// batched path errors, replays the burst one datagram at a time so only
/// the offending datagrams are dropped. Returns the events (one per
/// accepted datagram) and how many datagrams were rejected — both the
/// per-datagram [`ReceiverEvent::Rejected`] skips the batched path
/// already performs and any salvage-pass casualties.
pub fn push_salvaging<D: AsRef<[u8]>>(
    session: &mut FluteReceiver,
    burst: &[D],
) -> (Vec<ReceiverEvent>, u64) {
    match session.push_datagrams(burst) {
        Ok(events) => {
            let rejected = events
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::Rejected))
                .count() as u64;
            (events, rejected)
        }
        Err(burst_error) => {
            // The batched path hit a datagram it could not even skip
            // (e.g. a forged payload ID the decoder rejects). Replay
            // one-by-one: good datagrams land, bad ones are dropped.
            let mut events = Vec::with_capacity(burst.len());
            let mut rejected = 0u64;
            let mut logged = false;
            for dg in burst {
                match session.push_datagram(dg.as_ref()) {
                    Ok(event) => events.push(event),
                    Err(e) => {
                        rejected += 1;
                        if !logged {
                            eprintln!(
                                "dropping bad datagram (salvaging the remaining burst): \
                                 {e} (burst error: {burst_error})"
                            );
                            logged = true;
                        }
                    }
                }
            }
            (events, rejected)
        }
    }
}

/// Knobs for [`receive_session`]. The defaults match the CLI.
pub struct ReceiveConfig {
    /// How long to wait for a datagram before shipping a timer-tick
    /// digest (so the sender's estimator never starves when quiet).
    pub flush_interval: Duration,
    /// Most datagrams decoded per burst.
    pub burst_cap: usize,
    /// How many times the final FIN digest is repeated (the return
    /// channel is lossy too).
    pub fin_repeats: u32,
    /// Counts datagrams rejected as malformed, when telemetry is on.
    pub rejected_counter: Option<Counter>,
    /// Counts digests that failed to ship, when telemetry is on.
    pub ship_failure_counter: Option<Counter>,
}

impl Default for ReceiveConfig {
    fn default() -> ReceiveConfig {
        ReceiveConfig {
            flush_interval: Duration::from_millis(250),
            burst_cap: 4096,
            fin_repeats: 3,
            rejected_counter: None,
            ship_failure_counter: None,
        }
    }
}

/// How a completed [`receive_session`] went.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReceiveOutcome {
    /// The object that completed.
    pub toi: u32,
    /// Datagrams consumed (accepted or rejected).
    pub datagrams: u64,
    /// Datagrams rejected as malformed or undecodable.
    pub rejected: u64,
    /// Digests that failed to ship down the return channel.
    pub ship_failures: u64,
}

/// The receive decode loop: pull datagrams from the drain thread's
/// channel, decode in bursts, and ship reception-report digests through
/// `ship` until an object completes.
///
/// `ship` is treated as *lossy by design*: a failure is logged and
/// counted (see [`ReceiveConfig::ship_failure_counter`]) but never ends
/// the session — the sender's digest protocol already tolerates missing
/// reports, exactly like it tolerates lost data datagrams.
///
/// Errors only when the channel disconnects (the drain thread saw the
/// read timeout expire) before any object completed.
pub fn receive_session<F>(
    session: &mut FluteReceiver,
    datagrams: &mpsc::Receiver<PoolBuf>,
    mut ship: F,
    config: &ReceiveConfig,
) -> Result<ReceiveOutcome, String>
where
    F: FnMut(&ReceptionReport) -> Result<(), String>,
{
    let mut outcome = ReceiveOutcome::default();
    let mut burst: Vec<PoolBuf> = Vec::new();
    let toi = 'decode: loop {
        burst.clear();
        match datagrams.recv_timeout(config.flush_interval) {
            Ok(dg) => burst.push(dg),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Idle tick: ship whatever the emitter has batched so the
                // sender's estimator never starves on a quiet channel.
                if let Some(report) = session.flush_report() {
                    ship_lossy(&mut ship, &report, &mut outcome, config);
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(format!(
                    "timed out after {} datagrams without completing the object \
                     (losses beyond the code's budget, or no sender running)",
                    outcome.datagrams
                ))
            }
        }
        while burst.len() < config.burst_cap {
            match datagrams.try_recv() {
                Ok(dg) => burst.push(dg),
                Err(_) => break,
            }
        }
        outcome.datagrams += burst.len() as u64;
        let (events, rejected) = push_salvaging(session, &burst);
        if rejected > 0 {
            outcome.rejected += rejected;
            if let Some(c) = &config.rejected_counter {
                c.add(rejected);
            }
        }
        for event in events {
            if let ReceiverEvent::ObjectComplete { toi } = event {
                break 'decode toi;
            }
        }
        if let Some(report) = session.poll_report() {
            ship_lossy(&mut ship, &report, &mut outcome, config);
        }
    };
    // Final FIN digests (repeated: the return channel is lossy too) so an
    // adaptive sender stops transmitting immediately.
    for _ in 0..config.fin_repeats {
        if let Some(report) = session.flush_report() {
            ship_lossy(&mut ship, &report, &mut outcome, config);
        }
    }
    outcome.toi = toi;
    Ok(outcome)
}

/// The multi-bind (bonded) decode loop: datagrams arrive path-tagged
/// from several [`spawn_drain_on`] threads, and each burst is fed
/// through [`FluteReceiver::push_datagrams_on`] grouped by path, so the
/// per-path EXT_SEQ gap accounting stays honest across the bond. Ship
/// semantics and fault discipline match [`receive_session`] exactly.
pub fn receive_session_multipath<F>(
    session: &mut FluteReceiver,
    datagrams: &mpsc::Receiver<(usize, PoolBuf)>,
    mut ship: F,
    config: &ReceiveConfig,
) -> Result<ReceiveOutcome, String>
where
    F: FnMut(&ReceptionReport) -> Result<(), String>,
{
    let mut outcome = ReceiveOutcome::default();
    let mut burst: Vec<(usize, PoolBuf)> = Vec::new();
    let toi = 'decode: loop {
        burst.clear();
        match datagrams.recv_timeout(config.flush_interval) {
            Ok(tagged) => burst.push(tagged),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(report) = session.flush_report() {
                    ship_lossy(&mut ship, &report, &mut outcome, config);
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(format!(
                    "timed out after {} datagrams without completing the object \
                     (losses beyond the code's budget, or no sender running)",
                    outcome.datagrams
                ))
            }
        }
        while burst.len() < config.burst_cap {
            match datagrams.try_recv() {
                Ok(tagged) => burst.push(tagged),
                Err(_) => break,
            }
        }
        outcome.datagrams += burst.len() as u64;
        // Decode path-by-path (arrival order preserved within each path:
        // that is all the per-path sequence tracks care about).
        let path_count = burst.iter().map(|(p, _)| p + 1).max().unwrap_or(0);
        for path in 0..path_count {
            let slice: Vec<&PoolBuf> = burst
                .iter()
                .filter(|(p, _)| *p == path)
                .map(|(_, dg)| dg)
                .collect();
            if slice.is_empty() {
                continue;
            }
            let (events, rejected) = push_salvaging_on(session, path, &slice);
            if rejected > 0 {
                outcome.rejected += rejected;
                if let Some(c) = &config.rejected_counter {
                    c.add(rejected);
                }
            }
            for event in events {
                if let ReceiverEvent::ObjectComplete { toi } = event {
                    break 'decode toi;
                }
            }
        }
        if let Some(report) = session.poll_report() {
            ship_lossy(&mut ship, &report, &mut outcome, config);
        }
    };
    for _ in 0..config.fin_repeats {
        if let Some(report) = session.flush_report() {
            ship_lossy(&mut ship, &report, &mut outcome, config);
        }
    }
    outcome.toi = toi;
    Ok(outcome)
}

/// [`push_salvaging`]'s per-path twin: feeds a burst through
/// [`FluteReceiver::push_datagrams_on`] and, on a batch error, replays
/// one datagram at a time so only the offender is dropped.
pub fn push_salvaging_on<D: AsRef<[u8]>>(
    session: &mut FluteReceiver,
    path: usize,
    burst: &[D],
) -> (Vec<ReceiverEvent>, u64) {
    match session.push_datagrams_on(path, burst) {
        Ok(events) => {
            let rejected = events
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::Rejected))
                .count() as u64;
            (events, rejected)
        }
        Err(burst_error) => {
            let mut events = Vec::with_capacity(burst.len());
            let mut rejected = 0u64;
            let mut logged = false;
            for dg in burst {
                match session.push_datagrams_on(path, std::slice::from_ref(dg)) {
                    Ok(mut singles) => events.append(&mut singles),
                    Err(e) => {
                        rejected += 1;
                        if !logged {
                            eprintln!(
                                "dropping bad datagram on path {path} (salvaging the \
                                 remaining burst): {e} (burst error: {burst_error})"
                            );
                            logged = true;
                        }
                    }
                }
            }
            (events, rejected)
        }
    }
}

fn ship_lossy<F>(
    ship: &mut F,
    report: &ReceptionReport,
    outcome: &mut ReceiveOutcome,
    config: &ReceiveConfig,
) where
    F: FnMut(&ReceptionReport) -> Result<(), String>,
{
    if let Err(e) = ship(report) {
        outcome.ship_failures += 1;
        if let Some(c) = &config.ship_failure_counter {
            c.inc();
        }
        if outcome.ship_failures <= 5 {
            eprintln!("digest not shipped (return channel is lossy by design): {e}");
        }
    }
}
