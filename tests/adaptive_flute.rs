//! Acceptance test for the live adaptive FLUTE loop: a sender and a
//! receiver joined by **real UDP sockets**, with a deterministic Gilbert
//! loss process emulated on the forward channel. The adaptive sender must
//!
//! 1. deliver every object intact (the receiver decodes all three files
//!    byte-exactly), while
//! 2. putting **fewer data packets on the wire than the static worst-case
//!    plan** — the full `ratio 2.5` schedule a feedback-free sender ships
//!    (§6.2's "significantly less than the n packets that would have been
//!    sent otherwise"), and
//! 3. doing it through the real machinery: EXT_SEQ gap detection,
//!    reception-report digests over a return socket, digest-driven online
//!    estimation, and mid-flight plan amendments.
//!
//! Loss placement is sender-side (the datagram is withheld from the
//! socket), so the loss pattern is exactly reproducible while the
//! transport stays genuinely UDP end to end.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use fec_broadcast::adapt::ControllerConfig;
use fec_broadcast::channel::{GilbertParams, LinkEmulator, LossModel};
use fec_broadcast::flute::feedback::{FeedbackLoop, ReportConfig};
use fec_broadcast::flute::{FluteReceiver, FluteSender, SenderConfig};
use fec_broadcast::prelude::*;

const TSI: u32 = 21;
const SYMBOL: usize = 64;
const OBJECTS: usize = 3;

fn object_bytes(toi: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(toi * 17) % 251) as u8)
        .collect()
}

fn build_session() -> FluteSender {
    let mut config = SenderConfig::new(TSI);
    config.fdt_interval = 200;
    let mut sender = FluteSender::new(config);
    for toi in 1..=OBJECTS as u32 {
        sender
            .add_object(
                toi,
                format!("file:///obj-{toi}.bin"),
                &object_bytes(toi, 16_000), // k = 250 at 64-byte symbols
                fec_broadcast::codec::registry::resolve("ldgm-triangle").unwrap(),
                ExpansionRatio::R2_5, // the §6.1 worst-case prior's ratio
                SYMBOL,
                0xBEEF + toi as u64,
                TxModel::Random,
            )
            .unwrap();
    }
    sender
}

struct SenderOutcome {
    data_sent: u64,
    data_dropped: u64,
    full_total: u64,
    truncations: u64,
    digests_applied: u64,
}

/// The adaptive send loop (the CLI's `send --adaptive` in library form).
fn run_sender(
    session: &FluteSender,
    data_dest: std::net::SocketAddr,
    report_socket: UdpSocket,
) -> SenderOutcome {
    let data_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    report_socket.set_nonblocking(true).unwrap();

    // ~2.4% bursty loss: p = 0.01, q = 0.4 (mean burst 2.5 packets).
    let params = GilbertParams::new(0.01, 0.4).unwrap();
    let model: Box<dyn LossModel> =
        Box::new(fec_broadcast::channel::GilbertChannel::new(params, 0xC4A2));
    let mut link = LinkEmulator::new(model, 7);

    let mut feedback = FeedbackLoop::new(
        TSI,
        ControllerConfig {
            window: 5_000,
            min_observations: 250,
            confirm_after: 1,
            ..ControllerConfig::default()
        },
    );
    let mut stream = session.stream(0x5EED);
    let full_total = stream.full_total();
    let mut truncations = 0u64;
    let mut buf = [0u8; 65536];
    let mut linger_until: Option<Instant> = None;
    let deadline = Instant::now() + Duration::from_secs(30);

    while Instant::now() < deadline {
        let mut digest_applied = false;
        while let Ok((len, _)) = report_socket.recv_from(&mut buf) {
            use fec_broadcast::flute::ReportOutcome;
            if let Ok(ReportOutcome::Applied { completed, .. }) =
                feedback.ingest_datagram(&buf[..len])
            {
                digest_applied = true;
                // An object the receiver already decoded needs nothing
                // more: stop its emission where it stands.
                for toi in completed {
                    stream.stop_object(toi).unwrap();
                }
            }
        }
        if feedback.session_complete() {
            break;
        }
        // Re-plan whenever fresh channel knowledge arrived (plus on the
        // pacing tick below): coupling the re-plan to digest arrival keeps
        // the test independent of sender/receiver scheduling jitter.
        if digest_applied {
            if let Some(toi) = stream.current_toi() {
                let k = stream.source_count(toi).unwrap() as usize;
                let replan = feedback.replan(k);
                if let Ok(fec_broadcast::core::Amendment::Truncated { .. }) =
                    stream.amend_plan(toi, replan.plan.as_ref())
                {
                    truncations += 1;
                }
            }
        }
        match stream.next_datagram().unwrap() {
            Some(dg) => {
                linger_until = None;
                for delivered in link.transmit(&dg) {
                    data_socket.send_to(&delivered, data_dest).unwrap();
                }
                let offered = link.stats().offered;
                if offered.is_multiple_of(32) {
                    // Pacing: leave the receiver (same machine, debug
                    // builds included) room to decode and report back —
                    // the whole session still takes well under a second.
                    std::thread::sleep(Duration::from_millis(2));
                    if let Some(toi) = stream.current_toi() {
                        let k = stream.source_count(toi).unwrap() as usize;
                        let replan = feedback.replan(k);
                        if let Ok(fec_broadcast::core::Amendment::Truncated { .. }) =
                            stream.amend_plan(toi, replan.plan.as_ref())
                        {
                            truncations += 1;
                        }
                    }
                }
            }
            None => {
                // Give in-flight digests a moment; if the plan proves too
                // thin, revert to the full schedule rather than fail.
                match linger_until {
                    None => linger_until = Some(Instant::now() + Duration::from_millis(1200)),
                    Some(t) if Instant::now() >= t => {
                        feedback.record_failure();
                        for toi in 1..=OBJECTS as u32 {
                            if !feedback.is_complete(toi) {
                                stream.amend_plan(toi, None).unwrap();
                            }
                        }
                        linger_until = None;
                    }
                    Some(_) => {}
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let stats = link.stats();
    SenderOutcome {
        data_sent: stats.delivered,
        data_dropped: stats.dropped,
        full_total,
        truncations,
        digests_applied: feedback.stats().applied,
    }
}

/// The receive loop (the CLI's `recv --report-to` in library form).
fn run_receiver(data_socket: UdpSocket, report_dest: std::net::SocketAddr) -> FluteReceiver {
    let report_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    data_socket
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut session = FluteReceiver::new(TSI);
    session.enable_reports(ReportConfig {
        report_every: 48,
        ..ReportConfig::default()
    });
    let mut buf = [0u8; 65536];
    let mut last_data = Instant::now();
    loop {
        match data_socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                last_data = Instant::now();
                session.push_datagrams(&[&buf[..len]]).unwrap();
                if let Some(report) = session.poll_report() {
                    report_socket
                        .send_to(&report.to_bytes().unwrap(), report_dest)
                        .unwrap();
                }
            }
            Err(_) => {
                // Idle tick: flush pending observations so the sender's
                // estimator keeps breathing, and give up after 10 quiet
                // seconds.
                if let Some(report) = session.flush_report() {
                    report_socket
                        .send_to(&report.to_bytes().unwrap(), report_dest)
                        .unwrap();
                }
                if last_data.elapsed() > Duration::from_secs(10) {
                    break;
                }
            }
        }
        if session.all_complete() {
            // FIN digests, repeated — the return channel is lossy too.
            for _ in 0..3 {
                if let Some(report) = session.flush_report() {
                    report_socket
                        .send_to(&report.to_bytes().unwrap(), report_dest)
                        .unwrap();
                }
            }
            break;
        }
    }
    session
}

#[test]
fn live_adaptive_session_beats_the_static_worst_case_plan() {
    let session = build_session();

    let data_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    let data_addr = data_socket.local_addr().unwrap();
    let report_socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    let report_addr = report_socket.local_addr().unwrap();

    let receiver_thread = std::thread::spawn(move || run_receiver(data_socket, report_addr));
    // Give the receiver a head start on its socket.
    std::thread::sleep(Duration::from_millis(100));
    let outcome = run_sender(&session, data_addr, report_socket);
    let receiver = receiver_thread.join().unwrap();

    eprintln!(
        "adaptive sender: {} data+fdt datagrams on the wire ({} dropped by the channel), \
         static worst-case plan = {} data packets; {} truncating amendments, {} digests",
        outcome.data_sent,
        outcome.data_dropped,
        outcome.full_total,
        outcome.truncations,
        outcome.digests_applied
    );

    // (1) Reliability: every object decoded byte-exactly.
    assert!(receiver.all_complete(), "receiver missed objects");
    for toi in 1..=OBJECTS as u32 {
        assert_eq!(
            receiver.object(toi).expect("decoded"),
            &object_bytes(toi, 16_000)[..],
            "object {toi} corrupted"
        );
    }

    // (2) Economy: fewer packets than the static worst-case plan (which
    // ships the full schedule; `data_sent` even includes our FDT repeats
    // and the packets the channel ate, so this is conservative).
    assert!(
        outcome.data_sent + outcome.data_dropped < (outcome.full_total * 85) / 100,
        "adaptive loop sent {} of the static worst case {}",
        outcome.data_sent + outcome.data_dropped,
        outcome.full_total
    );

    // (3) The loop really ran: digests arrived and plans moved.
    assert!(outcome.digests_applied >= 3, "{}", outcome.digests_applied);
    assert!(outcome.truncations >= 1, "no plan truncation happened");
}
