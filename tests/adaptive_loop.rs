//! Acceptance test for the `fec-adapt` closed loop: on a regime-switching
//! Gilbert channel the adaptive controller must
//!
//! 1. achieve a lower penalized mean inefficiency than the **static worst
//!    case** (the fixed tuple an unlucky non-adaptive operator would have
//!    shipped), and
//! 2. stay within a documented **1.25× margin** of the static oracle (the
//!    best fixed tuple in hindsight), while
//! 3. actually *sending* fewer packets per object than a full static
//!    transmission at the oracle's own expansion ratio would.
//!
//! The margin in (2) is the price of learning: the controller spends its
//! first epochs on the conservative prior and a few more confirming each
//! regime switch, while the oracle is granted hindsight for free.

use fec_broadcast::adapt::{AdaptiveRunner, ControllerConfig, Scenario};

fn scenario() -> Scenario {
    // Three regimes — calm, congested-bursty, moderate — each spanning
    // several epochs at k = 400 (schedule length ≤ 1000 packets/epoch).
    Scenario::regime_switching(400, 36, 0x5EED_AD47)
}

fn config() -> ControllerConfig {
    ControllerConfig {
        // Small window so regime switches are tracked within ~2 epochs.
        window: 2_500,
        min_observations: 500,
        confirm_after: 1,
        ..ControllerConfig::default()
    }
}

#[test]
fn adaptive_beats_static_worst_case_and_tracks_oracle() {
    let comparison = AdaptiveRunner::new(scenario(), config()).compare();

    let adaptive = comparison.adaptive.penalized_mean_inefficiency();
    let oracle = comparison.oracle.penalized_mean_inefficiency();
    let worst = comparison.worst.penalized_mean_inefficiency();

    eprintln!(
        "adaptive {adaptive:.4} | oracle {:?} {oracle:.4} | worst {:?} {worst:.4} | switches {}",
        comparison.oracle_decision, comparison.worst_decision, comparison.adaptive.switches
    );
    for (d, r) in &comparison.statics {
        eprintln!(
            "  static {d:?}: penalized {:.4}, failures {}/{}",
            r.penalized_mean_inefficiency(),
            r.failures(),
            r.epochs.len()
        );
    }

    // (1) The reason to adapt at all.
    assert!(
        comparison.beats_worst_case(),
        "adaptive {adaptive:.4} must beat static worst case {worst:.4}"
    );
    // The gap must be material, not a rounding artifact: the worst static
    // tuple fails outright in the heavy regime.
    assert!(
        adaptive < worst * 0.9,
        "adaptive {adaptive:.4} should be well clear of worst {worst:.4}"
    );

    // (2) The documented oracle margin.
    assert!(
        comparison.oracle_gap() <= 1.25,
        "adaptive {adaptive:.4} within 1.25x of oracle {oracle:.4} (gap {:.3})",
        comparison.oracle_gap()
    );

    // (3) Planning saves sender bandwidth: fewer packets on the wire than
    // any full static send at ratio >= the oracle's.
    let adaptive_sent = comparison.adaptive.mean_sent_ratio();
    let oracle_sent = comparison.oracle.mean_sent_ratio();
    eprintln!("sent ratios: adaptive {adaptive_sent:.3} vs oracle (full) {oracle_sent:.3}");
    assert!(
        adaptive_sent < oracle_sent,
        "planned transmission {adaptive_sent:.3} must undercut the static full send {oracle_sent:.3}"
    );
}

#[test]
fn adaptive_controller_actually_adapts() {
    let report = AdaptiveRunner::new(scenario(), config()).run();
    // The regime schedule forces at least one decision change, and
    // hysteresis keeps churn far below one switch per epoch.
    assert!(report.switches >= 1, "no adaptation happened");
    assert!(
        report.switches <= report.epochs.len() as u64 / 3,
        "thrashing: {} switches in {} epochs",
        report.switches,
        report.epochs.len()
    );
    // Distinct tuples were actually deployed.
    let mut deployed: Vec<String> = report
        .epochs
        .iter()
        .map(|e| format!("{:?}", e.decision))
        .collect();
    deployed.sort();
    deployed.dedup();
    assert!(deployed.len() >= 2, "only ever used {deployed:?}");
    // And decode reliability stayed high despite the heavy regime.
    let failures = report.failures();
    assert!(
        failures <= report.epochs.len() as u32 / 6,
        "{failures} failures in {} epochs",
        report.epochs.len()
    );
}
