//! Bonding scenario suite: one FEC emission striped across
//! heterogeneous lossy paths, driven through the full in-process
//! control loop ([`BondedSession`]). Three scenarios, all
//! deterministic and seeded:
//!
//! 1. **Degrade** one path mid-flight → the controller re-allocates
//!    rate shares away from it within one re-plan interval.
//! 2. **Kill** one path mid-flight → the bond declares an outage,
//!    zeroes the dead path's share, amends the schedule (targeted
//!    repair / extension — never a restart), and still delivers every
//!    object byte-exactly.
//! 3. **Asymmetric three-link convergence** → on bursty links the
//!    bonded session finishes on fewer packets than the best single
//!    path: striping breaks each link's loss bursts into isolated
//!    erasures, the physical analogue of the paper's packet-scheduling
//!    whitening (and the reason Tx_model_1-style sequential schedules
//!    recover their footing under bonding).

use fec_broadcast::adapt::ControllerConfig;
use fec_broadcast::bond::{BondConfig, BondedSession};
use fec_broadcast::channel::{GilbertChannel, GilbertParams, LinkEmulator, LossModel};
use fec_broadcast::flute::{FluteSender, SenderConfig};
use fec_broadcast::prelude::*;

const TSI: u32 = 55;
const SYMBOL: usize = 64;
const OBJ_LEN: usize = 12_000;
const OBJECTS: u32 = 2;

fn object_bytes(toi: u32) -> Vec<u8> {
    (0..OBJ_LEN)
        .map(|i| ((i as u32).wrapping_mul(41).wrapping_add(toi * 23) % 251) as u8)
        .collect()
}

fn build_sender(tx: TxModel, ratio: ExpansionRatio) -> FluteSender {
    let mut config = SenderConfig::new(TSI);
    config.fdt_interval = 120;
    let mut sender = FluteSender::new(config);
    for toi in 1..=OBJECTS {
        sender
            .add_object(
                toi,
                format!("file:///obj-{toi}.bin"),
                &object_bytes(toi),
                fec_broadcast::codec::registry::resolve("ldgm-triangle").unwrap(),
                ratio,
                SYMBOL,
                0xD1CE + toi as u64,
                tx,
            )
            .unwrap();
    }
    sender
}

/// A Gilbert link with long-run loss `p_global` and mean burst length
/// `burst` packets.
fn bursty_link(p_global: f64, burst: f64, seed: u64) -> LinkEmulator {
    let q = 1.0 / burst;
    let p = p_global * q / (1.0 - p_global);
    let model: Box<dyn LossModel> =
        Box::new(GilbertChannel::new(GilbertParams::new(p, q).unwrap(), seed));
    LinkEmulator::new(model, seed ^ 0x10DE)
}

fn assert_byte_exact(bond: &BondedSession<'_>) {
    assert!(bond.is_complete(), "bond failed to deliver");
    for toi in 1..=OBJECTS {
        assert_eq!(
            bond.receiver().object(toi).expect("decoded"),
            &object_bytes(toi)[..],
            "object {toi} corrupted"
        );
    }
}

/// Scenario 1: degrading one path mid-flight shifts its rate share away
/// within one re-plan interval.
#[test]
fn degraded_path_loses_share_within_one_replan_interval() {
    let sender = build_sender(TxModel::Random, ExpansionRatio::R2_5);
    let config = BondConfig {
        total_rate: 1_000.0,
        replan_every: 64,
        outage_after: 100_000, // outage detection out of the picture here
        dead_band: 0.02,
        controller: ControllerConfig {
            // Small estimation window + high min_observations: path
            // estimates use the recent windowed loss rate, so a regime
            // change shows up in the very next digest fold.
            window: 128,
            min_observations: 100_000,
            ..ControllerConfig::default()
        },
    };
    let links = vec![bursty_link(0.02, 2.0, 71), bursty_link(0.02, 2.0, 72)];
    let mut bond = BondedSession::new(&sender, 0x5EED, links, config.clone());

    // Warm up past several control rounds, stopping exactly at a
    // re-plan boundary.
    let warmup = config.replan_every * 6;
    for _ in 0..warmup {
        bond.step().unwrap();
    }
    let share_before = bond.controller().shares()[1];
    let reallocs_before = bond.controller().reallocations();
    assert!(
        share_before > 400.0,
        "healthy path holds ~half: {share_before}"
    );

    // Path 1 falls off a cliff: 50% bursty loss.
    bond.degrade_path(1, GilbertParams::new(0.1, 0.1).unwrap(), 0xBAD);

    // Exactly one re-plan interval later the share must have moved.
    for _ in 0..config.replan_every {
        bond.step().unwrap();
    }
    let share_after = bond.controller().shares()[1];
    assert!(
        bond.controller().reallocations() > reallocs_before,
        "no re-allocation within one interval"
    );
    assert!(
        share_after < share_before - config.dead_band * config.total_rate,
        "degraded path kept its share: {share_before} -> {share_after}"
    );

    // And the transfer still completes byte-exactly.
    bond.run(200_000).unwrap();
    assert_byte_exact(&bond);
    eprintln!(
        "degrade: share {share_before:.0} -> {share_after:.0} within one interval, \
         {} total datagrams",
        bond.total_sent()
    );
}

/// Scenario 2: a path dying mid-flight is routed around — share zeroed,
/// schedule amended, delivery completes byte-exactly.
#[test]
fn killed_path_is_routed_around_and_delivery_completes() {
    let sender = build_sender(TxModel::Random, ExpansionRatio::R2_5);
    let config = BondConfig {
        total_rate: 900.0,
        replan_every: 64,
        outage_after: 48,
        dead_band: 0.02,
        controller: ControllerConfig {
            window: 5_000,
            min_observations: 250,
            ..ControllerConfig::default()
        },
    };
    let links = vec![
        bursty_link(0.02, 2.0, 81),
        bursty_link(0.03, 2.0, 82),
        bursty_link(0.04, 2.0, 83),
    ];
    let mut bond = BondedSession::new(&sender, 0x5EED, links, config);

    for _ in 0..200 {
        bond.step().unwrap();
    }
    let sent_at_kill = bond.sent_on(2);
    bond.kill_path(2);
    bond.run(400_000).unwrap();

    assert_byte_exact(&bond);
    assert!(bond.controller().is_dead(2), "outage never detected");
    assert!(bond.controller().outages() >= 1);
    assert_eq!(
        bond.controller().shares()[2],
        0.0,
        "dead path must hold zero share"
    );
    // Routing stopped: only the packets in flight before detection ever
    // hit the dead wire.
    let leaked = bond.sent_on(2) - sent_at_kill;
    assert!(
        leaked <= 2 * 48 + 64,
        "kept routing to a dead path: {leaked} packets after kill"
    );
    // The schedule was amended (repair queued / plan extended), not
    // restarted.
    let (truncations, extensions) = bond.amendments();
    assert!(
        bond.repairs_queued() > 0 || extensions > 0 || truncations > 0,
        "no schedule amendment despite a dead path"
    );
    eprintln!(
        "kill: {} post-kill leak, {} repairs, {truncations} truncations, \
         {extensions} extensions, {} total datagrams",
        leaked,
        bond.repairs_queued(),
        bond.total_sent()
    );
}

/// Scenario 3: on asymmetric bursty links, the bonded session finishes
/// on fewer packets than the best single path — cross-path striping
/// breaks loss bursts that a single link inflicts on consecutive
/// schedule packets.
#[test]
fn bonded_beats_best_single_path_on_asymmetric_bursty_links() {
    // Sequential schedule (the paper's Tx_model_1 shape): wire
    // adjacency equals symbol adjacency, so a burst on one link erases
    // consecutive symbols — worst case for the decoder, and exactly
    // what striping whitens.
    let tx = TxModel::SourceSeqParitySeq;
    let ratio = ExpansionRatio::R1_5;
    let mk_links = || {
        vec![
            bursty_link(0.10, 8.0, 911),
            bursty_link(0.12, 10.0, 922),
            bursty_link(0.14, 12.0, 933),
        ]
    };
    let config = BondConfig {
        total_rate: 900.0,
        replan_every: 64,
        outage_after: 100_000,
        dead_band: 0.02,
        controller: ControllerConfig {
            window: 20_000,
            min_observations: 500,
            ..ControllerConfig::default()
        },
    };

    let run = |links: Vec<LinkEmulator>| {
        let sender = build_sender(tx, ratio);
        let mut bond = BondedSession::new(&sender, 0x5EED, links, config.clone());
        bond.run(400_000).unwrap();
        assert_byte_exact(&bond);
        bond.total_sent()
    };

    let singles: Vec<u64> = (0..3).map(|i| run(vec![mk_links().remove(i)])).collect();
    let best_single = *singles.iter().min().unwrap();
    let bonded = run(mk_links());

    eprintln!("convergence: singles {singles:?}, bonded {bonded}");
    assert!(
        bonded < best_single,
        "bonded ({bonded}) must beat the best single path ({best_single}; all: {singles:?})"
    );
}
