//! Integration tests for the `fec-broadcast` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fec-broadcast"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("recommend"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn recommend_unknown_channel() {
    let (ok, stdout, _) = run(&["recommend"]);
    assert!(ok);
    assert!(stdout.contains("LDGM Triangle + tx_model_4"));
}

#[test]
fn recommend_known_low_loss_channel_matches_paper() {
    let (ok, stdout, _) = run(&["recommend", "--p", "0.0109", "--q", "0.7915"]);
    assert!(ok, "{stdout}");
    // §6.2.1's winner comes first.
    let first = stdout
        .lines()
        .find(|l| l.starts_with("1."))
        .expect("ranked output");
    assert!(first.contains("LDGM Staircase + tx_model_2"), "{first}");
}

#[test]
fn plan_reproduces_section_6_2_1() {
    let (ok, stdout, _) = run(&[
        "plan", "--k", "48829", "--ratio", "1.5", "--inef", "1.011", "--p", "0.0109", "--q",
        "0.7915",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("n = 73243"), "{stdout}");
    // n_sent ≈ 50041 (paper); our rounding gives 50046.
    assert!(stdout.contains("n_sent = 500"), "{stdout}");
    assert!(stdout.contains("sufficient"));
}

#[test]
fn plan_requires_its_arguments() {
    let (ok, _, stderr) = run(&["plan", "--k", "100"]);
    assert!(!ok);
    assert!(stderr.contains("required"));
}

#[test]
fn sweep_tiny_prints_paper_table() {
    let (ok, stdout, _) = run(&[
        "sweep", "--code", "rse", "--tx", "5", "--ratio", "2.5", "--k", "200", "--runs", "3",
        "--coarse",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("p \\ q"), "{stdout}");
    assert!(stdout.contains("grand mean"));
}

#[test]
fn sweep_rejects_bad_code() {
    let (ok, _, stderr) = run(&["sweep", "--code", "raptor", "--tx", "1", "--ratio", "1.5"]);
    assert!(!ok);
    assert!(stderr.contains("no registered codec matches"));
    assert!(
        stderr.contains("ldgm-staircase"),
        "lists what is registered"
    );
}

#[test]
fn codecs_lists_the_registry() {
    let (ok, stdout, _) = run(&["codecs"]);
    assert!(ok);
    for id in ["rse", "ldgm-staircase", "ldgm-triangle", "ldgm-plain"] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
    assert!(stdout.contains("129"), "FTI ids shown");
}

#[test]
fn code_arguments_accept_any_registered_spelling() {
    for spelling in ["triangle", "ldgm-triangle", "LdgmTriangle"] {
        let (ok, stdout, _) = run(&[
            "sweep", "--code", spelling, "--tx", "4", "--ratio", "2.5", "--k", "60", "--runs", "1",
            "--coarse",
        ]);
        assert!(ok, "--code {spelling} must resolve");
        assert!(stdout.contains("LDGM Triangle"));
    }
}

#[test]
fn map_draws_the_region() {
    let (ok, stdout, _) = run(&["map", "--ratio", "1.5"]);
    assert!(ok);
    assert!(stdout.contains('#'));
    assert!(stdout.contains("67% delivery"));
}

#[test]
fn adapt_runs_the_closed_loop() {
    let (ok, stdout, _) = run(&["adapt", "--k", "200", "--epochs", "8", "--window", "1500"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("closed loop: k = 200"), "{stdout}");
    assert!(stdout.contains("regimes (cycling):"));
    // Per-epoch table and the comparison summary are printed.
    assert!(stdout.contains("decision"));
    assert!(stdout.contains("adaptive    :"));
    assert!(stdout.contains("static best :"));
    assert!(stdout.contains("static worst:"));
    assert!(stdout.contains("oracle gap"));
}

#[test]
fn adapt_validates_arguments() {
    let (ok, _, stderr) = run(&["adapt", "--epochs", "0"]);
    assert!(!ok);
    assert!(stderr.contains("must be positive"));
    let (ok, _, stderr) = run(&["adapt", "--window", "1"]);
    assert!(!ok);
    assert!(stderr.contains("--window"));
}

#[test]
fn bad_number_is_reported() {
    let (ok, _, stderr) = run(&["map", "--ratio", "lots"]);
    assert!(!ok);
    assert!(stderr.contains("not a number"));
}

#[test]
fn duplicate_flag_is_reported() {
    let (ok, _, stderr) = run(&["map", "--ratio", "1.5", "--ratio", "2.5"]);
    assert!(!ok);
    assert!(stderr.contains("given twice"));
}

/// Full send/recv round trip over loopback UDP with injected loss: the
/// receiver is started first, the sender broadcasts a temp file at ratio
/// 2.5 through a 10% Gilbert channel, and the reconstructed file must be
/// byte-identical.
#[test]
fn send_recv_roundtrip_over_udp() {
    use std::net::UdpSocket;

    let dir = std::env::temp_dir().join(format!("fec-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("payload.bin");
    let out_path = dir.join("decoded.bin");
    let payload: Vec<u8> = (0..200_000usize).map(|i| (i * 37 % 251) as u8).collect();
    std::fs::write(&src_path, &payload).expect("write temp file");

    // Reserve a free UDP port, then release it for the receiver process.
    let port = {
        let probe = UdpSocket::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("addr").port()
    };
    let listen = format!("127.0.0.1:{port}");

    let receiver = Command::new(env!("CARGO_BIN_EXE_fec-broadcast"))
        .args([
            "recv",
            "--listen",
            &listen,
            "--tsi",
            "9",
            "--out",
            out_path.to_str().expect("utf8 path"),
            "--timeout",
            "30",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn receiver");
    // Give the receiver a moment to bind.
    std::thread::sleep(std::time::Duration::from_millis(300));

    let (ok, stdout, stderr) = run(&[
        "send",
        "--file",
        src_path.to_str().expect("utf8 path"),
        "--dest",
        &listen,
        "--tsi",
        "9",
        "--code",
        "triangle",
        "--tx",
        "4",
        "--ratio",
        "2.5",
        "--loss-p",
        "0.04",
        "--loss-q",
        "0.36",
    ]);
    assert!(ok, "send failed: {stdout}\n{stderr}");
    assert!(stdout.contains("datagrams transmitted"));

    let out = receiver.wait_with_output().expect("receiver exits");
    let rx_stdout = String::from_utf8_lossy(&out.stdout);
    let rx_stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "recv failed: {rx_stdout}\n{rx_stderr}"
    );
    let decoded = std::fs::read(&out_path).expect("decoded file exists");
    assert_eq!(decoded, payload, "byte-exact delivery");
    let _ = std::fs::remove_dir_all(&dir);
}
