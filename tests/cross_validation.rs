//! Cross-validation: the Monte-Carlo fast path (structural decoders in
//! `fec-sim`) must agree packet-for-packet with the real byte-moving
//! session layer (`fec-core`) on identical schedules and loss sequences.
//!
//! This is the load-bearing test of the whole reproduction: every number in
//! EXPERIMENTS.md is computed by the structural path, and this test is what
//! entitles those numbers to speak for the real codec.

use fec_broadcast::prelude::*;

fn object(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u32 * 31 + seed as u32) as u8)
        .collect()
}

/// Feeds the same survivor sequence to the payload receiver and a
/// structural decoder; returns (payload_done_at, structural_done_at) as
/// received-packet counts.
fn run_both(
    kind: CodeKind,
    k: usize,
    ratio: ExpansionRatio,
    tx: TxModel,
    channel: GilbertParams,
    seed: u64,
) -> (Option<u64>, Option<u64>) {
    let symbol = 8;
    let spec = CodeSpec::new(kind, k, ratio).with_matrix_seed(seed ^ 0xAB);
    let obj = object(k * symbol, seed as u8);
    let sender = Sender::new(spec.clone(), &obj, symbol).expect("sender");
    let mut receiver = Receiver::new(spec.clone(), obj.len(), symbol).expect("receiver");

    // The structural twin is spawned through the same codec trait the
    // Monte-Carlo runner uses, from the same structure seed the session
    // uses.
    let layout = sender.layout().clone();
    let factory = spec
        .code
        .structural_factory(k, ratio.as_f64(), &[spec.matrix_seed])
        .expect("structural factory");
    let mut structural = factory.session(0);

    let mut gilbert = GilbertChannel::new(channel, seed ^ 0x77);
    let mut received = 0u64;
    let mut payload_done = None;
    let mut structural_done = None;
    for r in tx.schedule(&layout, seed) {
        if gilbert.next_is_lost() {
            continue;
        }
        received += 1;
        let pkt = sender.packet(r).expect("valid");
        if receiver.push(&pkt).expect("ok").is_decoded() && payload_done.is_none() {
            payload_done = Some(received);
        }
        if structural.add(r) && structural_done.is_none() {
            structural_done = Some(received);
        }
        if payload_done.is_some() && structural_done.is_some() {
            break;
        }
    }
    if payload_done.is_some() {
        assert_eq!(
            receiver.into_object().expect("decoded"),
            obj,
            "byte mismatch"
        );
    }
    (payload_done, structural_done)
}

#[test]
fn ldgm_structural_matches_payload_across_schedules_and_channels() {
    for kind in [CodeKind::LdgmStaircase, CodeKind::LdgmTriangle] {
        for tx in TxModel::paper_models() {
            for (ci, channel) in [
                GilbertParams::perfect(),
                GilbertParams::bernoulli(0.15).unwrap(),
                GilbertParams::new(0.05, 0.4).unwrap(),
            ]
            .into_iter()
            .enumerate()
            {
                for seed in 0..3u64 {
                    let (p, s) = run_both(
                        kind,
                        150,
                        ExpansionRatio::R2_5,
                        tx,
                        channel,
                        seed * 17 + ci as u64,
                    );
                    assert_eq!(
                        p, s,
                        "{kind:?}/{tx:?}/channel{ci}/seed{seed}: payload vs structural"
                    );
                }
            }
        }
    }
}

#[test]
fn rse_structural_matches_payload_across_schedules_and_channels() {
    for tx in TxModel::paper_models() {
        for (ci, channel) in [
            GilbertParams::perfect(),
            GilbertParams::bernoulli(0.25).unwrap(),
            GilbertParams::new(0.1, 0.3).unwrap(),
        ]
        .into_iter()
        .enumerate()
        {
            for seed in 0..3u64 {
                let (p, s) = run_both(
                    CodeKind::Rse,
                    300, // multiple blocks at ratio 2.5
                    ExpansionRatio::R2_5,
                    tx,
                    channel,
                    seed * 23 + ci as u64,
                );
                assert_eq!(p, s, "RSE/{tx:?}/channel{ci}/seed{seed}");
            }
        }
    }
}

#[test]
fn ratio_1_5_also_agrees() {
    for kind in [
        CodeKind::Rse,
        CodeKind::LdgmStaircase,
        CodeKind::LdgmTriangle,
    ] {
        for seed in 0..4u64 {
            let (p, s) = run_both(
                kind,
                240,
                ExpansionRatio::R1_5,
                TxModel::Random,
                GilbertParams::bernoulli(0.1).unwrap(),
                seed,
            );
            assert_eq!(p, s, "{kind:?} ratio 1.5 seed {seed}");
        }
    }
}

/// The sim Runner's own results must be reproducible and consistent with
/// its reported metadata (n_sent = schedule length, received <= sent).
#[test]
fn runner_results_are_internally_consistent() {
    for kind in [
        CodeKind::Rse,
        CodeKind::LdgmStaircase,
        CodeKind::LdgmTriangle,
    ] {
        let exp = Experiment::new(kind, 200, ExpansionRatio::R2_5, TxModel::Random)
            .with_channel(GilbertParams::new(0.1, 0.5).unwrap());
        let runner = Runner::new(exp, 2).expect("runner");
        for run in 0..5 {
            let out = runner.run(99, run, true);
            assert!(out.n_received <= out.n_sent);
            if let Some(n) = out.n_necessary {
                assert!(n >= 200, "cannot decode below k");
                assert!(n <= out.n_received);
                assert!(out.decoded);
            } else {
                assert!(!out.decoded);
            }
        }
    }
}
