//! End-to-end session tests: sender → schedule → lossy channel → receiver,
//! asserting *byte-exact* object recovery across codes, schedules and
//! channels.

use fec_broadcast::prelude::*;

fn object(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(2654435761) + seed as u32) as u8)
        .collect()
}

/// Runs a full session; returns packets consumed until decode, or None.
fn session(
    spec: &CodeSpec,
    obj: &[u8],
    symbol: usize,
    tx: TxModel,
    channel: Option<GilbertParams>,
    seed: u64,
) -> Option<u64> {
    let sender = Sender::new(spec.clone(), obj, symbol).expect("sender");
    let mut rx = Receiver::new(spec.clone(), obj.len(), symbol).expect("receiver");
    let mut gilbert = channel.map(|c| GilbertChannel::new(c, seed ^ 0x11));
    for r in tx.schedule(sender.layout(), seed) {
        if let Some(ch) = gilbert.as_mut() {
            if ch.next_is_lost() {
                continue;
            }
        }
        let pkt = sender.packet(r).expect("valid ref");
        if rx.push(&pkt).expect("valid packet").is_decoded() {
            let n = rx.progress().received;
            assert_eq!(rx.into_object().expect("decoded"), obj, "byte mismatch");
            return Some(n);
        }
    }
    None
}

#[test]
fn all_codes_all_models_perfect_channel() {
    let symbol = 32;
    for kind in [
        CodeKind::Rse,
        CodeKind::LdgmStaircase,
        CodeKind::LdgmTriangle,
    ] {
        let k = 180;
        let spec = CodeSpec::new(kind, k, ExpansionRatio::R2_5).with_matrix_seed(5);
        let obj = object(k * symbol - 7, 1);
        for tx in TxModel::paper_models() {
            let n = session(&spec, &obj, symbol, tx, None, 42)
                .unwrap_or_else(|| panic!("{kind:?}/{tx:?} failed on a perfect channel"));
            assert!(n >= k as u64, "{kind:?}/{tx:?}: decoded with fewer than k");
        }
    }
}

#[test]
fn all_codes_survive_moderate_bursty_loss() {
    let symbol = 16;
    let channel = GilbertParams::new(0.05, 0.5).unwrap(); // ~9% loss, bursts of 2
    for kind in [
        CodeKind::Rse,
        CodeKind::LdgmStaircase,
        CodeKind::LdgmTriangle,
    ] {
        let k = 300;
        let spec = CodeSpec::new(kind, k, ExpansionRatio::R2_5).with_matrix_seed(9);
        let obj = object(k * symbol, 2);
        // Robust schedules only (Tx1 legitimately dies under bursts).
        let tx = if kind == CodeKind::Rse {
            TxModel::Interleaved
        } else {
            TxModel::Random
        };
        let mut ok = 0;
        for seed in 0..10u64 {
            if session(&spec, &obj, symbol, tx, Some(channel), seed).is_some() {
                ok += 1;
            }
        }
        assert!(ok >= 9, "{kind:?}: only {ok}/10 sessions decoded");
    }
}

#[test]
fn carousel_retransmission_recovers_catastrophic_receivers() {
    // A FLUTE-style carousel: the sender cycles its schedule; a receiver
    // that missed most of cycle 1 finishes during cycle 2.
    let symbol = 24;
    let k = 150;
    let spec = CodeSpec::ldgm_triangle(k, ExpansionRatio::R1_5).with_matrix_seed(3);
    let obj = object(k * symbol - 3, 3);
    let sender = Sender::new(spec.clone(), &obj, symbol).expect("sender");
    let mut rx = Receiver::new(spec, obj.len(), symbol).expect("receiver");
    // Terrible channel: long outage (q small).
    let mut channel = GilbertChannel::new(GilbertParams::new(0.02, 0.05).unwrap(), 7);
    let mut cycles = 0;
    'outer: loop {
        cycles += 1;
        assert!(cycles <= 20, "carousel should converge");
        for r in TxModel::Random.schedule(sender.layout(), cycles) {
            if channel.next_is_lost() {
                continue;
            }
            let pkt = sender.packet(r).expect("valid");
            if rx.push(&pkt).expect("ok").is_decoded() {
                break 'outer;
            }
        }
    }
    assert!(cycles >= 2, "the outage should have forced extra cycles");
    assert_eq!(rx.into_object().unwrap(), obj);
}

#[test]
fn wire_format_roundtrip_through_bytes() {
    let symbol = 48;
    let k = 64;
    let spec = CodeSpec::rse(k, ExpansionRatio::R1_5);
    let obj = object(k * symbol - 11, 4);
    let sender = Sender::new(spec.clone(), &obj, symbol).expect("sender");
    let mut rx = Receiver::new(spec, obj.len(), symbol).expect("receiver");
    // Serialise every packet to bytes and back, shuffled order, every third lost.
    let mut wires: Vec<Vec<u8>> = TxModel::Random
        .schedule(sender.layout(), 5)
        .into_iter()
        .map(|r| sender.packet(r).unwrap().to_bytes().to_vec())
        .collect();
    wires.retain({
        let mut i = 0;
        move |_| {
            i += 1;
            i % 3 != 0
        }
    });
    for wire in &wires {
        if rx.push_bytes(wire).expect("parse+push").is_decoded() {
            break;
        }
    }
    assert_eq!(rx.into_object().unwrap(), obj);
}

#[test]
fn one_byte_object() {
    let spec = CodeSpec::ldgm_staircase(1, ExpansionRatio::Custom(5.0));
    let obj = vec![0xA7u8];
    let sender = Sender::new(spec.clone(), &obj, 1).expect("sender");
    let mut rx = Receiver::new(spec, 1, 1).expect("receiver");
    // With k = 1 some check equations contain only the source and parity
    // packets (H1 row weight <= 1), so parity alone may already decode.
    // Feed parity first; fall back to the source packet if needed.
    for r in sender.layout().parity_sequential() {
        if rx.push(&sender.packet(r).unwrap()).unwrap().is_decoded() {
            break;
        }
    }
    if !rx.is_decoded() {
        let src = sender.packet(PacketRef { block: 0, esi: 0 }).unwrap();
        assert!(rx.push(&src).unwrap().is_decoded());
    }
    assert_eq!(rx.into_object().unwrap(), obj);
}

#[test]
fn different_symbol_sizes_same_object() {
    for symbol in [1usize, 3, 16, 100] {
        let len = 600usize;
        let k = len.div_ceil(symbol);
        let spec = CodeSpec::ldgm_staircase(k, ExpansionRatio::R2_5).with_matrix_seed(8);
        let obj = object(len, 5);
        let n = session(&spec, &obj, symbol, TxModel::Random, None, 9);
        assert!(n.is_some(), "symbol size {symbol} failed");
    }
}

#[test]
fn rse_multi_block_objects() {
    // Forces several RSE blocks (k = 700 at ratio 2.5 -> 7 blocks).
    let symbol = 8;
    let k = 700;
    let spec = CodeSpec::rse(k, ExpansionRatio::R2_5);
    let obj = object(k * symbol, 6);
    for tx in [
        TxModel::Interleaved,
        TxModel::SourceSeqParityRandom,
        TxModel::Random,
    ] {
        let n = session(
            &spec,
            &obj,
            symbol,
            tx,
            Some(GilbertParams::bernoulli(0.2).unwrap()),
            3,
        )
        .unwrap_or_else(|| panic!("multi-block RSE failed under {tx:?}"));
        assert!(n >= k as u64);
    }
}
