//! Fault injection: the receiver must survive anything the wire throws at
//! it — garbage, truncation, duplicates, wrong-session packets — with
//! errors, never panics, and must still decode afterwards.

use fec_broadcast::prelude::*;
use proptest::prelude::*;

fn fresh(k: usize, symbol: usize) -> (CodeSpec, Vec<u8>, Sender, Receiver) {
    let spec = CodeSpec::ldgm_staircase(k, ExpansionRatio::R2_5).with_matrix_seed(21);
    let obj: Vec<u8> = (0..k * symbol).map(|i| (i * 7 % 253) as u8).collect();
    let sender = Sender::new(spec.clone(), &obj, symbol).unwrap();
    let receiver = Receiver::new(spec.clone(), obj.len(), symbol).unwrap();
    (spec, obj, sender, receiver)
}

#[test]
fn decoding_succeeds_after_a_flood_of_bad_input() {
    let (_, obj, sender, mut rx) = fresh(60, 16);

    // 1. Garbage bytes.
    assert!(rx.push_bytes(b"not a packet at all").is_err());
    // 2. Truncated real packet.
    let good = sender.packet(PacketRef { block: 0, esi: 0 }).unwrap();
    let wire = good.to_bytes();
    assert!(rx.push_bytes(&wire[..wire.len() - 5]).is_err());
    // 3. Wrong-session packet (bad block).
    let alien = Packet::new(9, 0, good.payload.clone());
    assert!(rx.push(&alien).is_err());
    // 4. Payload of the wrong size.
    let stubby = Packet::new(0, 0, Bytes::from_static(b"short"));
    assert!(rx.push(&stubby).is_err());
    // 5. A duplicate storm of one legitimate packet.
    for _ in 0..100 {
        rx.push(&good).unwrap();
    }
    assert_eq!(rx.progress().decoded_source, 1);

    // After all that abuse, a normal transmission still decodes cleanly.
    for r in TxModel::Random.schedule(sender.layout(), 3) {
        if rx.push(&sender.packet(r).unwrap()).unwrap().is_decoded() {
            break;
        }
    }
    assert_eq!(rx.into_object().unwrap(), obj);
}

#[test]
fn errors_do_not_count_as_received() {
    let (_, _, sender, mut rx) = fresh(10, 8);
    let before = rx.progress().received;
    let _ = rx.push_bytes(b"junk");
    let alien = Packet::new(
        42,
        0,
        sender
            .packet(PacketRef { block: 0, esi: 0 })
            .unwrap()
            .payload,
    );
    let _ = rx.push(&alien);
    assert_eq!(
        rx.progress().received,
        before,
        "rejected packets must not consume the budget"
    );
}

#[test]
fn corrupted_payload_is_detected_by_length_only_by_design() {
    // The erasure-channel assumption (§1: packets arrive intact or not at
    // all) means payload *content* corruption is out of scope — transport
    // checksums handle that. Assert the documented behaviour: a wrong-size
    // payload errors, a right-size corrupted one is accepted (garbage in,
    // garbage out, like the real FLUTE stack without integrity checks).
    let (_, _, _, mut rx) = fresh(10, 8);
    let corrupted = Packet::new(0, 0, Bytes::from(vec![0xFF; 8]));
    assert!(rx.push(&corrupted).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No byte sequence may panic the wire parser or the receiver.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..80)) {
        let (_, _, _, mut rx) = fresh(10, 8);
        let _ = rx.push_bytes(&data);
    }

    /// Any packet with arbitrary (block, esi) is either accepted or
    /// rejected with an error — never a panic, never corrupted state.
    #[test]
    fn arbitrary_headers_never_panic(block in 0u32..20, esi in 0u32..2000) {
        let (_, _, _, mut rx) = fresh(10, 8);
        let pkt = Packet::new(block, esi, Bytes::from(vec![0u8; 8]));
        let _ = rx.push(&pkt);
        // The receiver is still usable.
        let p = rx.progress();
        prop_assert!(p.decoded_source <= p.total_source);
    }
}

#[test]
fn sender_refuses_inconsistent_configuration() {
    // Object too large for the spec's k.
    let spec = CodeSpec::ldgm_staircase(4, ExpansionRatio::R2_5);
    assert!(Sender::new(spec.clone(), &[0u8; 1000], 8).is_err());
    // Empty object.
    assert!(Sender::new(spec.clone(), &[], 8).is_err());
    // Zero symbol size.
    assert!(Sender::new(spec, &[0u8; 32], 0).is_err());
}

#[test]
fn receiver_refuses_inconsistent_configuration() {
    let spec = CodeSpec::ldgm_staircase(4, ExpansionRatio::R2_5);
    assert!(Receiver::new(spec.clone(), 1000, 8).is_err());
    assert!(Receiver::new(spec.clone(), 0, 8).is_err());
    assert!(Receiver::new(spec, 32, 0).is_err());
}

#[test]
fn ldgm_spec_with_no_checks_is_rejected_cleanly() {
    // ratio so close to 1 that there is no parity at all.
    let spec = CodeSpec::ldgm_staircase(10, ExpansionRatio::Custom(1.04));
    assert!(Sender::new(spec, &[0u8; 100], 10).is_err());
}
