//! Fault injection: the receiver must survive anything the wire throws at
//! it — garbage, truncation, duplicates, wrong-session packets — with
//! errors, never panics, and must still decode afterwards.

use fec_broadcast::prelude::*;
use proptest::prelude::*;

fn fresh(k: usize, symbol: usize) -> (CodeSpec, Vec<u8>, Sender, Receiver) {
    let spec = CodeSpec::ldgm_staircase(k, ExpansionRatio::R2_5).with_matrix_seed(21);
    let obj: Vec<u8> = (0..k * symbol).map(|i| (i * 7 % 253) as u8).collect();
    let sender = Sender::new(spec.clone(), &obj, symbol).unwrap();
    let receiver = Receiver::new(spec.clone(), obj.len(), symbol).unwrap();
    (spec, obj, sender, receiver)
}

#[test]
fn decoding_succeeds_after_a_flood_of_bad_input() {
    let (_, obj, sender, mut rx) = fresh(60, 16);

    // 1. Garbage bytes.
    assert!(rx.push_bytes(b"not a packet at all").is_err());
    // 2. Truncated real packet.
    let good = sender.packet(PacketRef { block: 0, esi: 0 }).unwrap();
    let wire = good.to_bytes();
    assert!(rx.push_bytes(&wire[..wire.len() - 5]).is_err());
    // 3. Wrong-session packet (bad block).
    let alien = Packet::new(9, 0, good.payload.clone());
    assert!(rx.push(&alien).is_err());
    // 4. Payload of the wrong size.
    let stubby = Packet::new(0, 0, Bytes::from_static(b"short"));
    assert!(rx.push(&stubby).is_err());
    // 5. A duplicate storm of one legitimate packet.
    for _ in 0..100 {
        rx.push(&good).unwrap();
    }
    assert_eq!(rx.progress().decoded_source, 1);

    // After all that abuse, a normal transmission still decodes cleanly.
    for r in TxModel::Random.schedule(sender.layout(), 3) {
        if rx.push(&sender.packet(r).unwrap()).unwrap().is_decoded() {
            break;
        }
    }
    assert_eq!(rx.into_object().unwrap(), obj);
}

#[test]
fn errors_do_not_count_as_received() {
    let (_, _, sender, mut rx) = fresh(10, 8);
    let before = rx.progress().received;
    let _ = rx.push_bytes(b"junk");
    let alien = Packet::new(
        42,
        0,
        sender
            .packet(PacketRef { block: 0, esi: 0 })
            .unwrap()
            .payload,
    );
    let _ = rx.push(&alien);
    assert_eq!(
        rx.progress().received,
        before,
        "rejected packets must not consume the budget"
    );
}

#[test]
fn corrupted_payload_is_detected_by_length_only_by_design() {
    // The erasure-channel assumption (§1: packets arrive intact or not at
    // all) means payload *content* corruption is out of scope — transport
    // checksums handle that. Assert the documented behaviour: a wrong-size
    // payload errors, a right-size corrupted one is accepted (garbage in,
    // garbage out, like the real FLUTE stack without integrity checks).
    let (_, _, _, mut rx) = fresh(10, 8);
    let corrupted = Packet::new(0, 0, Bytes::from(vec![0xFF; 8]));
    assert!(rx.push(&corrupted).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No byte sequence may panic the wire parser or the receiver.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..80)) {
        let (_, _, _, mut rx) = fresh(10, 8);
        let _ = rx.push_bytes(&data);
    }

    /// Any packet with arbitrary (block, esi) is either accepted or
    /// rejected with an error — never a panic, never corrupted state.
    #[test]
    fn arbitrary_headers_never_panic(block in 0u32..20, esi in 0u32..2000) {
        let (_, _, _, mut rx) = fresh(10, 8);
        let pkt = Packet::new(block, esi, Bytes::from(vec![0u8; 8]));
        let _ = rx.push(&pkt);
        // The receiver is still usable.
        let p = rx.progress();
        prop_assert!(p.decoded_source <= p.total_source);
    }
}

#[test]
fn sender_refuses_inconsistent_configuration() {
    // Object too large for the spec's k.
    let spec = CodeSpec::ldgm_staircase(4, ExpansionRatio::R2_5);
    assert!(Sender::new(spec.clone(), &[0u8; 1000], 8).is_err());
    // Empty object.
    assert!(Sender::new(spec.clone(), &[], 8).is_err());
    // Zero symbol size.
    assert!(Sender::new(spec, &[0u8; 32], 0).is_err());
}

#[test]
fn receiver_refuses_inconsistent_configuration() {
    let spec = CodeSpec::ldgm_staircase(4, ExpansionRatio::R2_5);
    assert!(Receiver::new(spec.clone(), 1000, 8).is_err());
    assert!(Receiver::new(spec.clone(), 0, 8).is_err());
    assert!(Receiver::new(spec, 32, 0).is_err());
}

#[test]
fn ldgm_spec_with_no_checks_is_rejected_cleanly() {
    // ratio so close to 1 that there is no parity at all.
    let spec = CodeSpec::ldgm_staircase(10, ExpansionRatio::Custom(1.04));
    assert!(Sender::new(spec, &[0u8; 100], 10).is_err());
}

/// Bonded fault injection: one member of a bonded path set turns
/// hostile — storming malformed datagrams and transient socket errors —
/// while its neighbours stay clean. The bond must complete byte-exactly
/// with every fault counted, none fatal.
mod bonded_faults {
    use fec_broadcast::bond::{BondConfig, BondedSession, Poison};
    use fec_broadcast::channel::{GilbertChannel, GilbertParams, LinkEmulator, LossModel};
    use fec_broadcast::flute::{FluteSender, SenderConfig};
    use fec_broadcast::prelude::{ExpansionRatio, TxModel};

    const TSI: u32 = 88;
    const SYMBOL: usize = 64;
    const OBJ_LEN: usize = 9_000;

    fn object_bytes(toi: u32) -> Vec<u8> {
        (0..OBJ_LEN)
            .map(|i| ((i as u32).wrapping_mul(31).wrapping_add(toi * 17) % 251) as u8)
            .collect()
    }

    fn quiet_link(seed: u64) -> LinkEmulator {
        let model: Box<dyn LossModel> = Box::new(GilbertChannel::new(
            GilbertParams::new(0.01, 0.5).unwrap(),
            seed,
        ));
        LinkEmulator::new(model, seed ^ 0xFA17)
    }

    /// One path storms malformed datagrams and transient socket errors;
    /// the other two stay clean. Delivery completes byte-exactly, the
    /// faults are counted, and nothing is fatal.
    #[test]
    fn hostile_path_storm_is_counted_not_fatal() {
        let mut config = SenderConfig::new(TSI);
        config.fdt_interval = 100;
        let mut sender = FluteSender::new(config);
        for toi in 1..=2u32 {
            sender
                .add_object(
                    toi,
                    format!("file:///hostile-{toi}.bin"),
                    &object_bytes(toi),
                    fec_broadcast::codec::registry::resolve("ldgm-triangle").unwrap(),
                    ExpansionRatio::R2_5,
                    SYMBOL,
                    0xF007 + toi as u64,
                    TxModel::Random,
                )
                .unwrap();
        }

        let links = vec![quiet_link(101), quiet_link(202), quiet_link(303)];
        let mut bond = BondedSession::new(&sender, 0x5EED, links, BondConfig::default());
        // Path 1 goes hostile for the whole transfer: every 2nd delivery
        // arrives with a corrupted header, every 5th send errors out.
        bond.poison_path(
            1,
            Poison {
                garble_every: 2,
                drop_every: 5,
            },
        );

        bond.run(200_000).unwrap();

        assert!(bond.is_complete(), "hostile path sank the bond");
        for toi in 1..=2u32 {
            assert_eq!(
                bond.receiver().object(toi).expect("decoded"),
                &object_bytes(toi)[..],
                "object {toi} corrupted by the hostile path"
            );
        }
        // The storm really happened, and every fault was accounted for.
        assert!(
            bond.rx_rejected() > 0,
            "malformed datagrams must surface as rejected events"
        );
        assert!(
            bond.io_errors() > 0,
            "transient socket errors must be counted"
        );
        // The clean paths carried real traffic throughout.
        for path in [0usize, 2] {
            assert!(bond.sent_on(path) > 0, "clean path {path} never used");
        }
        eprintln!(
            "hostile storm: {} rejected, {} io errors, {} total datagrams",
            bond.rx_rejected(),
            bond.io_errors(),
            bond.total_sent()
        );
    }
}

/// Wire-level fault injection: the live-session loops in
/// `fec_broadcast::live` must survive the three historical failure modes
/// — a drain thread killed by a stray `EINTR`/ICMP error, a receive
/// aborted because one digest failed to ship down the (lossy by design)
/// return channel, and one malformed datagram poisoning its whole decode
/// burst.
mod wire_faults {
    use std::io;
    use std::sync::mpsc;
    use std::time::Duration;

    use bytes::Bytes;
    use fec_broadcast::flute::feedback::ReportConfig;
    use fec_broadcast::flute::{AlcPacket, FecPayloadId, FluteReceiver, FluteSender, SenderConfig};
    use fec_broadcast::live::{self, BurstSource, DrainStats, ReceiveConfig};
    use fec_broadcast::prelude::{ExpansionRatio, TxModel};
    use fec_broadcast::wire::{BufferPool, PoolBuf};

    const TSI: u32 = 77;
    const SYMBOL: usize = 64;

    /// One scripted step for the fake burst source.
    enum Step {
        Burst(Vec<Vec<u8>>),
        Fail(io::ErrorKind),
    }

    /// A [`BurstSource`] that replays a script instead of a socket, so the
    /// drain loop's error discipline is testable without signals or ICMP.
    struct ScriptedSource {
        pool: BufferPool,
        steps: std::vec::IntoIter<Step>,
    }

    impl ScriptedSource {
        fn new(steps: Vec<Step>) -> ScriptedSource {
            ScriptedSource {
                pool: BufferPool::new(),
                steps: steps.into_iter(),
            }
        }
    }

    impl BurstSource for ScriptedSource {
        fn recv_burst(&mut self, _max: usize) -> io::Result<Vec<PoolBuf>> {
            match self.steps.next() {
                Some(Step::Burst(datagrams)) => {
                    Ok(datagrams.iter().map(|d| self.pool.buf_from(d)).collect())
                }
                Some(Step::Fail(kind)) => Err(io::Error::new(kind, "scripted fault")),
                // Script exhausted: behave like an idle read timeout.
                None => Err(io::Error::new(io::ErrorKind::TimedOut, "script over")),
            }
        }
    }

    /// Bugfix 1: the drain loop must retry `EINTR`, survive transient
    /// errors (an ICMP-reflected `ECONNREFUSED`), and end the session
    /// only on an idle read timeout — delivering every datagram that
    /// arrived around the faults.
    #[test]
    fn drain_survives_interrupts_and_transient_errors() {
        let mut source = ScriptedSource::new(vec![
            Step::Burst(vec![vec![1u8; 10]]),
            Step::Fail(io::ErrorKind::Interrupted),
            Step::Burst(vec![vec![2u8; 20], vec![3u8; 30]]),
            Step::Fail(io::ErrorKind::ConnectionRefused),
            Step::Fail(io::ErrorKind::Interrupted),
            Step::Burst(vec![vec![4u8; 40]]),
            Step::Fail(io::ErrorKind::TimedOut),
            // Never reached: the timeout above ends the session first.
            Step::Burst(vec![vec![5u8; 50]]),
        ]);
        let (tx, rx) = mpsc::channel();
        let stats = live::drain_loop(&mut source, &tx, 64);
        assert_eq!(
            stats,
            DrainStats {
                bursts: 3,
                datagrams: 4,
                retries: 2,
                transients: 1,
            }
        );
        let delivered: Vec<Vec<u8>> = rx.try_iter().map(|b| b.to_vec()).collect();
        assert_eq!(
            delivered,
            vec![vec![1u8; 10], vec![2u8; 20], vec![3u8; 30], vec![4u8; 40]],
            "every datagram that arrived around the faults must be forwarded"
        );
    }

    /// The drain loop must also end promptly when the decode side hangs
    /// up, instead of spinning against a dead channel.
    #[test]
    fn drain_stops_when_the_decoder_hangs_up() {
        let mut source = ScriptedSource::new(vec![
            Step::Burst(vec![vec![1u8; 8]]),
            Step::Burst(vec![vec![2u8; 8]]),
        ]);
        let (tx, rx) = mpsc::channel();
        drop(rx);
        let stats = live::drain_loop(&mut source, &tx, 64);
        assert_eq!(stats.bursts, 1, "first failed send must end the loop");
    }

    fn object_bytes(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 13 % 251) as u8).collect()
    }

    /// The full datagram schedule for one small object, in wire order.
    fn schedule(object: &[u8]) -> Vec<Vec<u8>> {
        let mut config = SenderConfig::new(TSI);
        config.fdt_interval = 1000;
        let mut sender = FluteSender::new(config);
        sender
            .add_object(
                1,
                "file:///wire-fault.bin",
                object,
                fec_broadcast::codec::registry::resolve("ldgm-staircase").unwrap(),
                ExpansionRatio::R2_5,
                SYMBOL,
                0xFA11,
                TxModel::Random,
            )
            .unwrap();
        let mut stream = sender.stream(0xFA11);
        let mut datagrams = Vec::new();
        while let Some(dg) = stream.next_datagram().unwrap() {
            datagrams.push(dg);
        }
        datagrams
    }

    fn feed(datagrams: Vec<Vec<u8>>) -> mpsc::Receiver<PoolBuf> {
        let pool = BufferPool::new();
        let (tx, rx) = mpsc::channel();
        for dg in &datagrams {
            tx.send(pool.buf_from(dg)).unwrap();
        }
        // Leak the sender so `receive_session` never sees a disconnect:
        // the object completes long before the channel drains dry.
        std::mem::forget(tx);
        rx
    }

    fn receive_config() -> ReceiveConfig {
        ReceiveConfig {
            flush_interval: Duration::from_millis(20),
            ..ReceiveConfig::default()
        }
    }

    /// Bugfix 2: a digest that fails to ship must be logged and counted,
    /// never abort the receive — the return channel is lossy by design.
    #[test]
    fn digest_ship_failure_does_not_abort_receive() {
        let object = object_bytes(4000);
        let rx = feed(schedule(&object));

        let mut session = FluteReceiver::new(TSI);
        session.enable_reports(ReportConfig {
            report_every: 16,
            ..ReportConfig::default()
        });
        let mut attempts = 0u64;
        let outcome = live::receive_session(
            &mut session,
            &rx,
            |_report| {
                attempts += 1;
                Err("return channel down".to_string())
            },
            &receive_config(),
        )
        .expect("a dead return channel must not abort the receive");

        assert_eq!(outcome.toi, 1);
        assert!(attempts > 0, "the session must have tried to ship digests");
        assert_eq!(
            outcome.ship_failures, attempts,
            "every failed ship must be counted"
        );
        assert_eq!(
            session.take_object(1).unwrap(),
            object,
            "the object must decode byte-exactly despite the dead return channel"
        );
    }

    /// Bugfix 3: garbage datagrams and a forged undecodable packet mixed
    /// into a burst must be rejected individually — the good neighbours
    /// in the same burst still decode the object byte-exactly.
    #[test]
    fn malformed_datagram_mid_burst_still_decodes() {
        let object = object_bytes(4000);
        let mut datagrams = schedule(&object);

        // Forge a syntactically valid ALC packet whose payload ID the
        // decoder must reject (ESI far beyond n). Borrow the codepoint
        // and a real symbol from a genuine data packet so the forgery
        // survives parsing and dies only at the decode stage — the case
        // that errors the *batched* push path.
        let template = datagrams
            .iter()
            .map(|dg| AlcPacket::from_bytes(dg).unwrap())
            .find(|pkt| pkt.payload_id.is_some())
            .expect("the schedule contains data packets");
        let forged = AlcPacket::data(
            TSI,
            1,
            template.header.codepoint,
            FecPayloadId { sbn: 0, esi: 9999 },
            Bytes::from(template.payload.to_vec()),
        )
        .to_bytes()
        .unwrap();

        // Plant the faults mid-schedule, after the FTI is known (so the
        // forgery reaches the decoder) but long before decode completes.
        datagrams.insert(5, b"not an alc packet".to_vec());
        datagrams.insert(9, forged);
        datagrams.insert(12, vec![0xFF; 3]);

        let rx = feed(datagrams);
        let mut session = FluteReceiver::new(TSI);
        let outcome = live::receive_session(&mut session, &rx, |_| Ok(()), &receive_config())
            .expect("malformed datagrams must not sink the session");

        assert_eq!(outcome.toi, 1);
        assert!(
            outcome.rejected >= 3,
            "the two garbage datagrams and the forged packet must all be \
             counted as rejected (got {})",
            outcome.rejected
        );
        assert_eq!(
            session.take_object(1).unwrap(),
            object,
            "the burst's good datagrams must still decode the object"
        );
    }
}
