//! End-to-end FLUTE delivery across the full stack: object → ALC datagrams
//! → lossy channel → wire parsing → FEC decode → byte-exact file.

use fec_broadcast::flute::{FluteReceiver, FluteSender, ObjectStatus, SenderConfig};
use fec_broadcast::prelude::*;

fn object_bytes(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| ((i * 131) as u8) ^ salt).collect()
}

fn deliver_with_loss(
    sender: &FluteSender,
    receiver: &mut FluteReceiver,
    schedule_seed: u64,
    channel: Option<(GilbertParams, u64)>,
) {
    let mut loss = channel.map(|(params, seed)| GilbertChannel::new(params, seed));
    for dg in sender.datagrams(schedule_seed).expect("datagrams") {
        if let Some(ch) = loss.as_mut() {
            if ch.next_is_lost() {
                continue;
            }
        }
        receiver.push_datagram(&dg).expect("well-formed datagram");
    }
}

/// Every paper code delivers a file byte-exactly through its recommended
/// schedule, with no losses.
#[test]
fn all_codes_lossless() {
    let cases = [
        (CodeKind::Rse, ExpansionRatio::R1_5, TxModel::Interleaved),
        (
            CodeKind::LdgmStaircase,
            ExpansionRatio::R2_5,
            TxModel::tx6_paper(),
        ),
        (
            CodeKind::LdgmTriangle,
            ExpansionRatio::R2_5,
            TxModel::Random,
        ),
    ];
    for (i, (kind, ratio, tx)) in cases.into_iter().enumerate() {
        let data = object_bytes(20_000 + i * 997, i as u8);
        let mut sender = FluteSender::new(SenderConfig::new(42));
        sender
            .add_object(1, "test.bin", &data, kind, ratio, 64, 7, tx)
            .expect("add object");
        let mut receiver = FluteReceiver::new(42);
        deliver_with_loss(&sender, &mut receiver, 3, None);
        assert_eq!(
            receiver.object(1).expect("decoded"),
            &data[..],
            "{kind} under {tx}"
        );
        assert!(receiver.all_complete());
    }
}

/// The paper's universal recommendation — LDGM Triangle + Tx_model_4 at
/// ratio 2.5 — survives a harsh bursty channel (20% loss, bursts of ~3).
#[test]
fn triangle_tx4_survives_bursty_channel() {
    let data = object_bytes(60_000, 9);
    let mut sender = FluteSender::new(SenderConfig::new(1));
    sender
        .add_object(
            5,
            "movie.ts",
            &data,
            CodeKind::LdgmTriangle,
            ExpansionRatio::R2_5,
            128,
            11,
            TxModel::Random,
        )
        .expect("add object");
    let params = GilbertParams::new(0.25 / 3.0, 1.0 / 3.0).expect("valid");
    for trial in 0..5u64 {
        let mut receiver = FluteReceiver::new(1);
        deliver_with_loss(&sender, &mut receiver, trial, Some((params, trial ^ 0xAB)));
        assert_eq!(
            receiver.object_status(5),
            Some(ObjectStatus::Complete),
            "trial {trial}"
        );
        assert_eq!(receiver.object(5).unwrap(), &data[..]);
    }
}

/// RSE + interleaving (the paper's mandatory pairing) through the same
/// bursty channel at ratio 2.5.
#[test]
fn rse_interleaved_survives_bursty_channel() {
    let data = object_bytes(40_000, 4);
    let mut sender = FluteSender::new(SenderConfig::new(2));
    sender
        .add_object(
            1,
            "fw.img",
            &data,
            CodeKind::Rse,
            ExpansionRatio::R2_5,
            100,
            0,
            TxModel::Interleaved,
        )
        .expect("add object");
    let params = GilbertParams::new(0.05, 0.45).expect("valid");
    let mut receiver = FluteReceiver::new(2);
    deliver_with_loss(&sender, &mut receiver, 1, Some((params, 77)));
    assert_eq!(receiver.object(1).unwrap(), &data[..]);
}

/// Losing *every* FDT datagram must not prevent decoding (EXT_FTI carries
/// the OTI), only session-completeness reporting.
#[test]
fn fdt_loss_is_survivable() {
    let data = object_bytes(10_000, 2);
    let mut sender = FluteSender::new(SenderConfig::new(6));
    sender
        .add_object(
            1,
            "a",
            &data,
            CodeKind::LdgmStaircase,
            ExpansionRatio::R2_5,
            32,
            3,
            TxModel::Random,
        )
        .expect("add object");
    let mut receiver = FluteReceiver::new(6);
    for dg in sender.datagrams(9).unwrap() {
        // An adversarial channel that eats exactly the FDT packets.
        let parsed = fec_broadcast::flute::AlcPacket::from_bytes(&dg).unwrap();
        if parsed.header.toi == fec_broadcast::flute::FDT_TOI {
            continue;
        }
        receiver.push_datagram(&dg).unwrap();
    }
    assert_eq!(receiver.object(1).unwrap(), &data[..]);
    assert!(receiver.fdt().is_none());
    assert!(
        !receiver.all_complete(),
        "no FDT -> completeness unknowable"
    );
}

/// A carousel-style rerun: when one pass leaves the object undecoded, a
/// second pass with a fresh schedule finishes it (the §1/§7 delivery loop).
#[test]
fn two_carousel_cycles_complete_under_heavy_loss() {
    let data = object_bytes(30_000, 8);
    let mut sender = FluteSender::new(SenderConfig::new(9));
    sender
        .add_object(
            1,
            "big.bin",
            &data,
            CodeKind::LdgmTriangle,
            ExpansionRatio::R1_5,
            64,
            2,
            TxModel::Random,
        )
        .expect("add object");
    // 35% loss with ratio 1.5: one pass cannot decode (nreceived < k).
    let params = GilbertParams::new(0.35, 0.65).expect("valid");
    let mut receiver = FluteReceiver::new(9);
    deliver_with_loss(&sender, &mut receiver, 1, Some((params, 5)));
    assert_ne!(receiver.object_status(1), Some(ObjectStatus::Complete));
    // Second cycle, different schedule seed and channel state.
    deliver_with_loss(&sender, &mut receiver, 2, Some((params, 6)));
    assert_eq!(receiver.object_status(1), Some(ObjectStatus::Complete));
    assert_eq!(receiver.object(1).unwrap(), &data[..]);
}

/// Two receivers behind *different* channels decode the same transmission
/// (the broadcast scenario: one parity packet repairs different losses at
/// different receivers).
#[test]
fn heterogeneous_receivers_share_one_transmission() {
    let data = object_bytes(25_000, 3);
    let mut sender = FluteSender::new(SenderConfig::new(4));
    sender
        .add_object(
            1,
            "shared.bin",
            &data,
            CodeKind::LdgmTriangle,
            ExpansionRatio::R2_5,
            64,
            13,
            TxModel::Random,
        )
        .expect("add object");
    let datagrams = sender.datagrams(10).unwrap();
    let channels = [
        GilbertParams::new(0.02, 0.9).unwrap(),  // light IID loss
        GilbertParams::new(0.08, 0.25).unwrap(), // heavy bursts
    ];
    for (i, params) in channels.into_iter().enumerate() {
        let mut receiver = FluteReceiver::new(4);
        let mut channel = GilbertChannel::new(params, i as u64 + 100);
        for dg in &datagrams {
            if channel.next_is_lost() {
                continue;
            }
            receiver.push_datagram(dg).unwrap();
        }
        assert_eq!(receiver.object(1).unwrap(), &data[..], "receiver {i}");
    }
}
