//! Kernel choice can never change science output.
//!
//! The SIMD kernel backends (`fec_gf256::kernels`) promise byte-identical
//! arithmetic; this test pins the system-level consequence: a fig08-style
//! Monte-Carlo sweep and a payload round-trip produce **identical**
//! results under `FEC_FORCE_KERNEL=scalar` and under the best
//! runtime-detected backend.
//!
//! The backend is selected once per process (`OnceLock`), so each forced
//! configuration runs in a child process: the test re-executes its own
//! test binary with `FEC_FORCE_KERNEL` set, filtered to the emitter test
//! below, and compares the emitted reports byte for byte.

use std::process::Command;

use fec_broadcast::codec::builtin;
use fec_broadcast::gf256::kernels;
use fec_broadcast::prelude::*;
use fec_broadcast::sim::{ExpansionRatio, Experiment, GridSweep, SweepConfig};

const EMIT_ENV: &str = "FEC_KERNEL_DETERMINISM_EMIT";
const BEGIN: &str = "KERNEL-DETERMINISM-BEGIN";
const END: &str = "KERNEL-DETERMINISM-END";

/// Tiny FNV-1a so the payload digest is independent of the kernels under
/// test.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fig08-style sweep (Tx_model_1 cells over a small `(p, q)` grid, both
/// paper code families) plus a lossy payload round-trip per codec.
fn science_report() -> String {
    let mut out = String::new();

    // Structural Monte-Carlo sweep, serialized in full.
    for code in [builtin::ldgm_staircase(), builtin::rse()] {
        let experiment = Experiment::new(
            code,
            150,
            ExpansionRatio::R2_5,
            TxModel::SourceSeqParityRandom,
        );
        let config = SweepConfig {
            runs: 3,
            grid_p: vec![0.0, 0.1, 0.3],
            grid_q: vec![0.2, 0.7],
            seed: 0xF1608,
            matrix_pool: 2,
            track_total: true,
            threads: Some(1),
        };
        let result = GridSweep::new(experiment, config)
            .expect("valid experiment")
            .execute();
        out.push_str(&serde_json::to_string(&result).expect("serializable"));
        out.push('\n');
    }

    // Payload path: batched reception through a deterministic loss
    // pattern; digest of every decoded byte.
    for code in [
        builtin::ldgm_staircase(),
        builtin::ldgm_triangle(),
        builtin::rse(),
    ] {
        let id = code.id().to_string();
        let spec = CodeSpec::new(code, 120, ExpansionRatio::R2_5).with_matrix_seed(9);
        let object: Vec<u8> = (0..120 * 64 - 11).map(|i| (i * 37 % 253) as u8).collect();
        let sender = Sender::new(spec.clone(), &object, 64).expect("sender");
        let mut rx = Receiver::new(spec, object.len(), 64).expect("receiver");
        let packets = sender.transmission(TxModel::Random, 5);
        let survivors: Vec<_> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 != 0)
            .map(|(_, p)| p.clone())
            .collect();
        for window in survivors.chunks(48) {
            if rx.push_batch(window).expect("push_batch").is_decoded() {
                break;
            }
        }
        let decoded = rx.into_object().expect("decodable with 6/7 delivery");
        assert_eq!(decoded, object, "{id}: round-trip bytes");
        out.push_str(&format!("{id} digest {:016x}\n", fnv1a(&decoded)));
    }
    out
}

/// Child-process emitter: runs only when re-invoked by
/// `sweep_results_identical_across_kernel_backends` with the env marker
/// set; prints the report between sentinels for the parent to capture.
#[test]
fn emit_science_report_for_forced_kernel() {
    if std::env::var(EMIT_ENV).is_err() {
        return;
    }
    println!("{BEGIN}");
    println!("active-backend: {}", kernels::active_name());
    print!("{}", science_report());
    println!("{END}");
}

fn run_child(backend: &str) -> (String, String) {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args([
            "--exact",
            "emit_science_report_for_forced_kernel",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(EMIT_ENV, "1")
        .env("FEC_FORCE_KERNEL", backend)
        .output()
        .expect("spawn test binary");
    assert!(
        out.status.success(),
        "child with FEC_FORCE_KERNEL={backend} failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 report");
    let begin = stdout.find(BEGIN).expect("begin sentinel") + BEGIN.len();
    let end = stdout.find(END).expect("end sentinel");
    let body = &stdout[begin..end];
    let (header, report) = body
        .trim_start()
        .split_once('\n')
        .expect("backend header line");
    (header.to_string(), report.to_string())
}

#[test]
fn sweep_results_identical_across_kernel_backends() {
    let best = kernels::backends()
        .last()
        .expect("scalar always present")
        .name();
    let (scalar_hdr, scalar_report) = run_child("scalar");
    assert_eq!(scalar_hdr, "active-backend: scalar");
    let (best_hdr, best_report) = run_child(best);
    assert_eq!(best_hdr, format!("active-backend: {best}"));
    assert!(
        !scalar_report.is_empty(),
        "emitter produced an empty report"
    );
    assert_eq!(
        scalar_report, best_report,
        "kernel backend changed science output (scalar vs {best})"
    );
}
