//! Scenario test for §6: trace → Gilbert fit → recommendation → `n_sent`
//! plan → validated delivery.
//!
//! This walks the paper's full operational loop end-to-end on synthetic
//! data, closing with an actual byte-level delivery under the planned,
//! truncated transmission.

use fec_broadcast::channel::{fit_gilbert, LossTrace};
use fec_broadcast::prelude::*;

#[test]
fn full_operational_loop_on_a_known_channel() {
    // 1. "Measure" the channel: record a trace from the true process.
    let truth = GilbertParams::new(0.02, 0.6).unwrap(); // ~3.2% loss, bursts ~1.7
    let mut probe = GilbertChannel::new(truth, 0xACE);
    let trace = LossTrace::record(&mut probe, 400_000);
    let fitted = fit_gilbert(&trace).expect("identifiable trace");
    assert!(
        (fitted.p() - truth.p()).abs() < 0.005,
        "p fit {}",
        fitted.p()
    );
    assert!(
        (fitted.q() - truth.q()).abs() < 0.05,
        "q fit {}",
        fitted.q()
    );

    // 2. Rule-based recommendation agrees this is the low-loss regime.
    let recs = recommend(ChannelKnowledge::Known(fitted));
    assert_eq!(recs[0].code, CodeKind::LdgmStaircase);
    assert_eq!(recs[0].tx, TxModel::SourceSeqParityRandom);

    // 3. Measured selection over the candidate tuples, with the paper's
    //    "some tolerance" ε set to 5% of k — a plan built from the *mean*
    //    inefficiency alone would miss on roughly half the runs.
    let mut selector = MeasuredSelector::new(1200, 6);
    selector.tolerance = (selector.k / 20) as u64;
    let choices = selector.select(fitted).expect("candidates run");
    let best = &choices[0];
    assert!(best.is_reliable());
    let plan = best.plan.as_ref().expect("reliable tuple has a plan");
    assert!(plan.is_sufficient());
    assert!(
        plan.n_sent < plan.n_total,
        "a low-loss channel must allow truncation"
    );

    // 4. Execute the plan for real: send only the first n_sent packets of
    //    the winning schedule and verify the object still arrives.
    let k = selector.k;
    let symbol = 8;
    let spec = CodeSpec::new(best.code.clone(), k, best.ratio).with_matrix_seed(77);
    let obj: Vec<u8> = (0..k * symbol).map(|i| (i % 251) as u8).collect();
    let sender = Sender::new(spec.clone(), &obj, symbol).expect("sender");
    let mut delivered = 0;
    let runs = 10;
    for seed in 0..runs {
        let mut rx = Receiver::new(spec.clone(), obj.len(), symbol).expect("receiver");
        let mut ch = GilbertChannel::new(truth, 0xBEE + seed);
        let schedule = best.tx.schedule(sender.layout(), seed);
        for r in schedule.into_iter().take(plan.n_sent as usize) {
            if ch.next_is_lost() {
                continue;
            }
            if rx.push(&sender.packet(r).unwrap()).unwrap().is_decoded() {
                assert_eq!(rx.into_object().unwrap(), obj);
                delivered += 1;
                break;
            }
        }
    }
    assert!(
        delivered >= runs - 1,
        "plan with 5% tolerance delivered only {delivered}/{runs}"
    );
}

#[test]
fn unknown_channel_recommendation_is_universal() {
    // §6.2.2: the Tx4+Triangle tuple must decode on wildly different
    // channels without re-tuning.
    let rec = &recommend(ChannelKnowledge::Unknown)[0];
    assert_eq!(rec.tx, TxModel::Random);
    let k = 800;
    for channel in [
        GilbertParams::perfect(),
        GilbertParams::bernoulli(0.15).unwrap(),
        GilbertParams::new(0.05, 0.3).unwrap(), // bursty
        GilbertParams::new(0.01, 0.9).unwrap(), // sparse
    ] {
        let exp = Experiment::new(rec.code.clone(), k, ExpansionRatio::R2_5, rec.tx)
            .with_channel(channel);
        let runner = Runner::new(exp, 2).expect("runner");
        for run in 0..5 {
            let out = runner.run(11, run, false);
            assert!(
                out.decoded,
                "universal scheme failed on channel {channel:?} run {run}"
            );
        }
    }
}

#[test]
fn planner_tolerance_improves_delivery() {
    // ε > 0 (the paper's "some tolerance") must not reduce the success rate.
    let channel = GilbertParams::bernoulli(0.1).unwrap();
    let k = 600;
    let experiment = Experiment::new(
        CodeKind::LdgmTriangle,
        k,
        ExpansionRatio::R2_5,
        TxModel::Random,
    )
    .with_channel(channel);
    let runner = Runner::new(experiment, 2).expect("runner");
    // Measure inefficiency.
    let runs = 8;
    let mut sum = 0.0;
    for run in 0..runs {
        sum += runner.run(5, run, false).inefficiency(k).expect("decodes");
    }
    let inef = sum / runs as f64;

    let deliver_rate = |tolerance: u64| {
        let plan =
            TransmissionPlan::new(k, runner.layout().total_packets(), inef, channel, tolerance);
        let mut ok = 0;
        for seed in 100..130u64 {
            // Count survivors of the truncated transmission against the
            // requirement `survivors >= inef * k` (equation 2).
            let schedule = TxModel::Random.schedule(runner.layout(), seed);
            let mut ch = GilbertChannel::new(channel, seed ^ 0x5A5A);
            let survivors = schedule
                .iter()
                .take(plan.n_sent as usize)
                .filter(|_| !ch.next_is_lost())
                .count() as f64;
            if survivors >= inef * k as f64 {
                ok += 1;
            }
        }
        ok
    };
    let bare = deliver_rate(0);
    let padded = deliver_rate((k / 20) as u64); // 5% ε
    assert!(padded >= bare, "tolerance must help: {padded} vs {bare}");
    assert!(
        padded >= 28,
        "5% tolerance should nearly always suffice, got {padded}/30"
    );
}
