//! Shape tests: the paper's qualitative findings, asserted at test-suite
//! scale (small k, few runs, coarse grids — seconds, not minutes; the
//! benches re-verify at higher fidelity).

use fec_broadcast::prelude::*;

/// Mean inefficiency at one (p, q) point; None if any run failed.
fn point(
    code: CodeKind,
    k: usize,
    ratio: ExpansionRatio,
    tx: TxModel,
    p: f64,
    q: f64,
    runs: u64,
) -> Option<f64> {
    let channel = GilbertParams::new(p, q).unwrap();
    let exp = Experiment::new(code, k, ratio, tx).with_channel(channel);
    let runner = Runner::new(exp, 2).expect("runner");
    let mut sum = 0.0;
    for run in 0..runs {
        sum += runner.run(0xFEC, run, false).inefficiency(k)?;
    }
    Some(sum / runs as f64)
}

#[test]
fn perfect_channel_is_free_for_systematic_schedules() {
    // §4.3/§4.4: Tx1 and Tx2 at p = 0 give exactly 1.0 for every code.
    for code in [
        CodeKind::Rse,
        CodeKind::LdgmStaircase,
        CodeKind::LdgmTriangle,
    ] {
        for tx in [TxModel::SourceSeqParitySeq, TxModel::SourceSeqParityRandom] {
            let m = point(code, 200, ExpansionRatio::R2_5, tx, 0.0, 0.5, 5).unwrap();
            assert_eq!(m, 1.0, "{code:?}/{tx:?}");
        }
    }
}

#[test]
fn tx2_beats_tx1_for_rse_under_bursts() {
    // §4.4: random parity order fixes RSE's tail-block problem.
    let (p, q) = (0.05, 0.3); // bursty
    let tx1 = point(
        CodeKind::Rse,
        400,
        ExpansionRatio::R2_5,
        TxModel::SourceSeqParitySeq,
        p,
        q,
        8,
    );
    let tx2 = point(
        CodeKind::Rse,
        400,
        ExpansionRatio::R2_5,
        TxModel::SourceSeqParityRandom,
        p,
        q,
        8,
    );
    match (tx1, tx2) {
        (Some(a), Some(b)) => assert!(b < a, "Tx2 ({b}) must beat Tx1 ({a}) for RSE"),
        (None, Some(_)) => {} // Tx1 failing outright is the paper's point, too
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn interleaving_rescues_rse_from_bursts() {
    // §4.7: under strong bursts, sequential RSE collapses while interleaved
    // RSE sails through.
    let (p, q) = (0.1, 0.2); // mean burst length 5
    let seq = point(
        CodeKind::Rse,
        400,
        ExpansionRatio::R2_5,
        TxModel::SourceSeqParitySeq,
        p,
        q,
        8,
    );
    let il = point(
        CodeKind::Rse,
        400,
        ExpansionRatio::R2_5,
        TxModel::Interleaved,
        p,
        q,
        8,
    );
    let il = il.expect("interleaved RSE must decode everywhere feasible");
    if let Some(seq) = seq {
        assert!(il < seq, "interleaving ({il}) must beat sequential ({seq})");
    }
}

#[test]
fn staircase_beats_triangle_at_low_loss_under_tx2() {
    // §6.1: "LDGM Staircase is more efficient with Tx_model_2 and a low p".
    let (p, q) = (0.01, 0.8);
    let sc = point(
        CodeKind::LdgmStaircase,
        2000,
        ExpansionRatio::R2_5,
        TxModel::SourceSeqParityRandom,
        p,
        q,
        6,
    )
    .unwrap();
    let tri = point(
        CodeKind::LdgmTriangle,
        2000,
        ExpansionRatio::R2_5,
        TxModel::SourceSeqParityRandom,
        p,
        q,
        6,
    )
    .unwrap();
    assert!(sc < tri, "staircase {sc} vs triangle {tri}");
}

#[test]
fn triangle_beats_staircase_under_tx4() {
    // §4.6 at moderate scale; the gap is small, so average over the grid
    // diagonal to stabilise.
    let mut sc_sum = 0.0;
    let mut tri_sum = 0.0;
    for (p, q) in [(0.0, 1.0), (0.1, 0.6), (0.2, 0.6), (0.3, 0.7)] {
        sc_sum += point(
            CodeKind::LdgmStaircase,
            4000,
            ExpansionRatio::R2_5,
            TxModel::Random,
            p,
            q,
            5,
        )
        .unwrap();
        tri_sum += point(
            CodeKind::LdgmTriangle,
            4000,
            ExpansionRatio::R2_5,
            TxModel::Random,
            p,
            q,
            5,
        )
        .unwrap();
    }
    assert!(
        tri_sum < sc_sum,
        "triangle ({tri_sum}) must beat staircase ({sc_sum}) under Tx4"
    );
}

#[test]
fn staircase_beats_triangle_under_tx6() {
    // §4.8: "the fact that LDGM Staircase performs better than Triangle is
    // rather unusual".
    let sc = point(
        CodeKind::LdgmStaircase,
        1500,
        ExpansionRatio::R2_5,
        TxModel::tx6_paper(),
        0.1,
        0.6,
        6,
    )
    .unwrap();
    let tri = point(
        CodeKind::LdgmTriangle,
        1500,
        ExpansionRatio::R2_5,
        TxModel::tx6_paper(),
        0.1,
        0.6,
        6,
    )
    .unwrap();
    assert!(sc < tri, "staircase {sc} vs triangle {tri} under Tx6");
}

#[test]
fn tx3_needs_all_parity_plus_one_source_at_ratio_2_5() {
    // §4.5's exact result for large-block codes on a perfect channel.
    let k = 1000;
    for code in [CodeKind::LdgmStaircase, CodeKind::LdgmTriangle] {
        let m = point(
            code,
            k,
            ExpansionRatio::R2_5,
            TxModel::ParitySeqSourceRandom,
            0.0,
            0.5,
            3,
        )
        .unwrap();
        let exact = (1.5 * k as f64 + 1.0) / k as f64;
        assert!((m - exact).abs() < 1e-9, "{code:?}: {m} vs {exact}");
    }
}

#[test]
fn no_fec_repetition_fails_with_loss() {
    // §4.2: with p > 0 the x2 repetition scheme loses some packet twice.
    let m = point(
        CodeKind::LdgmStaircase,
        2000,
        ExpansionRatio::R2_5,
        TxModel::RepeatSource { copies: 2 },
        0.1,
        0.5,
        8,
    );
    assert_eq!(m, None, "repetition must fail at 17% loss");
    // And at p = 0 it works but wastes ~2x.
    let perfect = point(
        CodeKind::LdgmStaircase,
        2000,
        ExpansionRatio::R2_5,
        TxModel::RepeatSource { copies: 2 },
        0.0,
        0.5,
        8,
    )
    .unwrap();
    assert!(
        perfect > 1.8,
        "coupon collection should eat ~2x, got {perfect}"
    );
}

#[test]
fn infeasible_region_always_fails() {
    // §3.2 Fig. 6: outside the fundamental limit no code can decode. Pick
    // clearly-infeasible points for ratio 2.5 (needs >= 40% delivery).
    for (p, q) in [(0.9, 0.1), (0.7, 0.2), (1.0, 0.3)] {
        for code in [CodeKind::Rse, CodeKind::LdgmStaircase] {
            let m = point(code, 300, ExpansionRatio::R2_5, TxModel::Random, p, q, 5);
            assert_eq!(m, None, "{code:?} at ({p},{q}) must fail");
        }
    }
}

#[test]
fn inefficiency_never_below_one() {
    // Fundamental: you cannot decode k packets from fewer than k.
    for code in [
        CodeKind::Rse,
        CodeKind::LdgmStaircase,
        CodeKind::LdgmTriangle,
    ] {
        for tx in TxModel::paper_models() {
            if let Some(m) = point(code, 150, ExpansionRatio::R2_5, tx, 0.05, 0.5, 4) {
                assert!(m >= 1.0, "{code:?}/{tx:?}: inefficiency {m} < 1");
            }
        }
    }
}

#[test]
fn rx1_sweet_spot_beats_extremes() {
    // §5.1 at reduced scale: a few percent of source packets up front beats
    // both one source packet and half the source packets.
    let k = 3000;
    let runner = Runner::new(
        Experiment::new(
            CodeKind::LdgmStaircase,
            k,
            ExpansionRatio::R2_5,
            TxModel::Random,
        ),
        2,
    )
    .expect("runner");
    let mean = |m: usize| {
        let runs = 6;
        let mut sum = 0.0;
        for run in 0..runs {
            sum += runner
                .run_reception(RxModel::SourceThenParityRandom { num_source: m }, 5, run)
                .inefficiency(k)
                .expect("reception decodes");
        }
        sum / runs as f64
    };
    let low = mean(1);
    let sweet = mean(k * 3 / 100); // 3% of k
    let high = mean(k / 2);
    assert!(
        sweet < low && sweet < high,
        "sweet spot {sweet} must beat extremes ({low}, {high})"
    );
}
