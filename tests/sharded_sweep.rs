//! End-to-end acceptance for the sharded sweep engine: the same plan run
//! single-process, via `--workers N` subprocesses, via `--shard i/n
//! --emit-partial` + `merge`, and via the raw `sweep-worker` protocol must
//! all produce byte-identical merged JSON.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use fec_broadcast::distrib::{self, PartialFile, SweepPlan};
use fec_broadcast::prelude::*;

const SWEEP_ARGS: &[&str] = &[
    "sweep", "--code", "rse", "--tx", "4", "--ratio", "2.5", "--k", "300", "--runs", "4",
    "--coarse", "--seed", "1234",
];

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fec-broadcast"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fec-sharded-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn run_to_file(extra: &[&str], out: &PathBuf) {
    let status = bin()
        .args(SWEEP_ARGS)
        .args(extra)
        .arg("--out")
        .arg(out)
        .stdout(Stdio::null())
        .status()
        .expect("binary runs");
    assert!(status.success(), "sweep {extra:?} failed");
}

/// The plan the CLI builds from `SWEEP_ARGS` (for the library-level leg).
fn cli_plan() -> SweepPlan {
    let code = fec_broadcast::codec::registry::resolve("rse").unwrap();
    let experiment = Experiment::new(code, 300, ExpansionRatio::R2_5, TxModel::Random);
    let grid = fec_broadcast::channel::grid::GridKind::Coarse.to_vec();
    let config = SweepConfig {
        runs: 4,
        grid_p: grid.clone(),
        grid_q: grid,
        seed: 1234,
        ..SweepConfig::default()
    };
    SweepPlan::new(experiment, config).unwrap()
}

#[test]
fn all_execution_strategies_are_byte_identical() {
    let dir = tmp_dir("strategies");
    let single = dir.join("single.json");
    let workers = dir.join("workers.json");
    let merged = dir.join("merged.json");

    // 1. Single process.
    run_to_file(&[], &single);
    let reference = std::fs::read(&single).expect("single result written");
    assert!(!reference.is_empty());

    // 2. Four coordinated worker subprocesses.
    run_to_file(&["--workers", "4"], &workers);
    assert_eq!(
        reference,
        std::fs::read(&workers).unwrap(),
        "--workers 4 must be byte-identical to the single-process run"
    );

    // 3. Multi-host recipe: four independent shard runs, partials shipped
    //    to `merge`.
    let mut partial_paths = Vec::new();
    for i in 0..4 {
        let path = dir.join(format!("p{i}.json"));
        run_to_file(&["--shard", &format!("{i}/4"), "--emit-partial"], &path);
        partial_paths.push(path);
    }
    let status = bin()
        .arg("merge")
        .args(&partial_paths)
        .arg("--out")
        .arg(&merged)
        .stdout(Stdio::null())
        .status()
        .expect("binary runs");
    assert!(status.success(), "merge failed");
    assert_eq!(
        reference,
        std::fs::read(&merged).unwrap(),
        "shard + merge must be byte-identical to the single-process run"
    );

    // 4. The raw worker protocol: plan JSON on stdin, partial JSONL on
    //    stdout, merged through the library.
    let plan = cli_plan();
    let doc = plan.to_json().unwrap();
    let mut partials = Vec::new();
    for i in 0..3u32 {
        let mut child = bin()
            .args([
                "sweep-worker",
                "--shard",
                &format!("{i}/3"),
                "--threads",
                "2",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("worker spawns");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(doc.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "worker {i} failed");
        for line in String::from_utf8(out.stdout).unwrap().lines() {
            partials.push(distrib::parse_partial_line(line).unwrap());
        }
    }
    let via_protocol = distrib::from_partials(&plan, &partials).unwrap();
    assert_eq!(
        String::from_utf8(reference.clone()).unwrap(),
        serde_json::to_string(&via_protocol).unwrap(),
        "raw sweep-worker protocol must reproduce the single-process run"
    );

    // The CLI plan is the library plan: a partial file from disk carries
    // the same fingerprint.
    let from_disk =
        PartialFile::from_text(&std::fs::read_to_string(&partial_paths[0]).unwrap()).unwrap();
    assert_eq!(from_disk.plan.fingerprint(), plan.fingerprint());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_incomplete_and_mismatched_sets() {
    let dir = tmp_dir("reject");
    let p0 = dir.join("p0.json");
    let p1 = dir.join("p1.json");
    run_to_file(&["--shard", "0/2", "--emit-partial"], &p0);
    run_to_file(&["--shard", "1/2", "--emit-partial"], &p1);

    // Missing half the units.
    let out = bin().arg("merge").arg(&p0).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("incomplete"),
        "stderr should name the problem"
    );

    // A partial from a different plan (other seed) does not merge.
    let foreign = dir.join("foreign.json");
    let status = bin()
        .args([
            "sweep",
            "--code",
            "rse",
            "--tx",
            "4",
            "--ratio",
            "2.5",
            "--k",
            "300",
            "--runs",
            "4",
            "--coarse",
            "--seed",
            "999",
            "--shard",
            "1/2",
            "--emit-partial",
        ])
        .arg("--out")
        .arg(&foreign)
        .stdout(Stdio::null())
        .status()
        .expect("binary runs");
    assert!(status.success());
    let out = bin()
        .arg("merge")
        .args([&p0, &foreign])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("different plan"));

    // --shard without --emit-partial is a user error, not a silent sweep.
    let out = bin()
        .args(SWEEP_ARGS)
        .args(["--shard", "0/2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--emit-partial"));

    std::fs::remove_dir_all(&dir).ok();
}

/// `sweep --workers` must actually distribute: with a plan of many units,
/// every worker subprocess contributes part of the result. (Speedup itself
/// is asserted by the CI job's timing, not here — CI runners' core counts
/// vary.)
#[test]
fn coordinator_uses_every_worker() {
    let plan = cli_plan();
    let coordinator = distrib::Coordinator::new(env!("CARGO_BIN_EXE_fec-broadcast"), 4);
    assert_eq!(coordinator.effective_workers(&plan), 4);
    let partials = coordinator.collect_partials(&plan).unwrap();
    assert_eq!(partials.len(), plan.unit_count(), "one partial per unit");
    let result = distrib::from_partials(&plan, &partials).unwrap();
    assert_eq!(result.cells.len(), 64);
}
