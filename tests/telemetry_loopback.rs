//! Acceptance test for the observability layer on a live session: the
//! full adaptive loop (sender stream → impaired link → receiver →
//! digests → feedback) instrumented into one registry, scraped over a
//! **real HTTP connection** mid-flight, with the structured event log
//! drained to JSONL and parsed back.

use std::io::{Read, Write};
use std::net::TcpStream;

use fec_broadcast::adapt::ControllerConfig;
use fec_broadcast::channel::{GilbertParams, LinkConfig, LinkEmulator, LossModel};
use fec_broadcast::flute::feedback::{FeedbackLoop, ReportConfig, ReportOutcome};
use fec_broadcast::flute::{FluteReceiver, FluteSender, SenderConfig};
use fec_broadcast::prelude::*;
use fec_broadcast::telemetry::EventRecord;

const TSI: u32 = 33;

/// One plain-text HTTP GET against the metrics endpoint; returns the body.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has header/body split");
    assert!(
        head.starts_with("HTTP/1.1 200 OK"),
        "unexpected status line: {head}"
    );
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "missing exposition content type: {head}"
    );
    body.to_string()
}

/// Extracts the value of an exact series line (`name value` or
/// `name{labels} value`).
fn series_value(body: &str, series: &str) -> f64 {
    body.lines()
        .find_map(|l| {
            l.strip_prefix(series)
                .and_then(|rest| rest.strip_prefix(' '))
        })
        .unwrap_or_else(|| panic!("series {series:?} not in scrape:\n{body}"))
        .parse()
        .expect("series value parses")
}

#[test]
fn live_session_exposes_metrics_and_events() {
    let registry = Registry::new();
    let server = MetricsServer::bind("127.0.0.1:0", registry.clone()).expect("bind metrics");
    let events = EventLog::bounded(1024);

    // A two-object session over a bursty link, closed-loop as in the CLI.
    let mut sender = FluteSender::new(SenderConfig::new(TSI));
    let objects: Vec<Vec<u8>> = (1..=2u32)
        .map(|toi| {
            (0..12_000)
                .map(|i| ((i as u32 * 37 + toi) % 251) as u8)
                .collect()
        })
        .collect();
    for (i, object) in objects.iter().enumerate() {
        sender
            .add_object(
                i as u32 + 1,
                format!("file:///obj-{}.bin", i + 1),
                object,
                fec_broadcast::codec::registry::resolve("ldgm-triangle").unwrap(),
                ExpansionRatio::R2_5,
                64,
                11 + i as u64,
                TxModel::Random,
            )
            .unwrap();
    }

    let params = GilbertParams::new(0.02, 0.5).unwrap();
    let model: Box<dyn LossModel> = Box::new(GilbertChannel::new(params, 77));
    let mut link = LinkEmulator::with_config(
        model,
        LinkConfig {
            duplicate_rate: 0.005,
            reorder_rate: 0.01,
            reorder_depth: 2,
        },
        13,
    );
    link.attach_telemetry(&registry);

    let mut receiver = FluteReceiver::new(TSI);
    receiver.enable_reports(ReportConfig {
        report_every: 64,
        ..ReportConfig::default()
    });
    receiver.attach_telemetry(&registry);
    let mut feedback = FeedbackLoop::new(
        TSI,
        ControllerConfig {
            window: 5_000,
            min_observations: 250,
            confirm_after: 1,
            ..ControllerConfig::default()
        },
    );
    feedback.attach_telemetry(&registry);
    let mut stream = sender.stream(0xFEED);
    stream.attach_telemetry(&registry);
    let full = stream.full_total();

    events.record(Event::SessionStart {
        tsi: TSI as u64,
        objects: objects.len() as u32,
        full_schedule: full,
    });

    let mut on_wire = 0u64;
    let mut scraped_mid_session = false;
    while let Some(datagram) = stream.next_datagram().unwrap() {
        on_wire += 1;
        for delivered in link.transmit(&datagram) {
            receiver.push_datagrams(&[&delivered]).unwrap();
        }
        if on_wire == full / 4 {
            // Mid-flight scrape: counters must already be moving.
            let body = scrape(server.local_addr());
            assert!(series_value(&body, "fec_session_datagrams_total{kind=\"data\"}") > 0.0);
            scraped_mid_session = true;
        }
        if let Some(report) = receiver.poll_report() {
            let wire = report.to_bytes().unwrap();
            if let ReportOutcome::Applied { completed, .. } =
                feedback.ingest_datagram(&wire).unwrap()
            {
                for toi in completed {
                    events.record(Event::ObjectComplete { toi });
                    stream.stop_object(toi).unwrap();
                }
            }
            if feedback.session_complete() {
                break;
            }
            if let Some(toi) = stream.current_toi() {
                let k = stream.source_count(toi).unwrap() as usize;
                let replan = feedback.replan(k);
                stream.amend_plan(toi, replan.plan.as_ref()).unwrap();
            }
        }
    }
    assert!(
        scraped_mid_session,
        "session ended before the mid-flight scrape"
    );
    for (i, object) in objects.iter().enumerate() {
        assert_eq!(receiver.object(i as u32 + 1).expect("decoded"), &object[..]);
    }
    receiver.finalize_telemetry();
    events.record(Event::SessionEnd {
        tsi: TSI as u64,
        datagrams: on_wire,
        planned: stream.planned_total(),
        completed: objects.len() as u32,
    });

    // Final scrape: every layer of the stack must have reported in.
    let body = scrape(server.local_addr());
    let data = series_value(&body, "fec_session_datagrams_total{kind=\"data\"}");
    assert!(
        data > 0.0 && data <= on_wire as f64,
        "sender counted {data} of {on_wire} emitted datagrams"
    );
    assert!(
        series_value(&body, "fec_replans_total") > 0.0,
        "feedback loop never re-planned"
    );
    assert!(
        series_value(&body, "fec_digests_total{outcome=\"applied\"}") > 0.0,
        "no digest reached the estimator"
    );
    // The estimator gauges exist even before convergence (value may be 0).
    series_value(&body, "fec_estimator_p");
    let offered = series_value(&body, "fec_link_datagrams_total{fate=\"offered\"}");
    let delivered = series_value(&body, "fec_link_datagrams_total{fate=\"delivered\"}");
    let link_dropped = series_value(&body, "fec_link_datagrams_total{fate=\"dropped\"}");
    let duplicated = series_value(&body, "fec_link_datagrams_total{fate=\"duplicated\"}");
    assert_eq!(
        offered + duplicated,
        delivered + link_dropped,
        "link conservation law broken in the scrape"
    );
    let rx = series_value(&body, "fec_rx_datagrams_total{result=\"data\"}");
    assert!(
        rx > 0.0 && rx <= delivered,
        "receiver saw {rx} of {delivered} delivered"
    );
    assert!(
        series_value(&body, "fec_loss_run_length_count") > 0.0,
        "no loss runs observed on a 2% channel"
    );
    // Both objects decoded, so every loss run was repaired: the residual
    // histogram stays empty and the repaired counter took them all.
    assert_eq!(
        series_value(&body, "fec_residual_loss_run_length_count"),
        0.0
    );
    assert!(series_value(&body, "fec_repaired_loss_runs_total") > 0.0);

    // Event log: JSONL-encode the drained records and parse them back.
    let records = events.drain();
    assert!(
        records.len() >= 4,
        "session start/end + 2 completions expected"
    );
    let jsonl: String = records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap() + "\n")
        .collect();
    let parsed: Vec<EventRecord> = jsonl
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(parsed, records);
    assert!(matches!(parsed[0].event, Event::SessionStart { tsi, .. } if tsi == TSI as u64));
    assert!(
        matches!(
            parsed.last().unwrap().event,
            Event::SessionEnd { completed: 2, .. }
        ),
        "last event must be the session end"
    );
}
